//! End-to-end selection on the perturbed (billion-scale-analogue)
//! dataset: the §6.3 workflow as an integration test.

use submod_select::prelude::*;

fn perturbed() -> (SimilarityGraph, Vec<f32>, PerturbedDataset) {
    let base =
        build_instance(&DatasetConfig::tiny().with_points_per_class(15).with_seed(63)).unwrap();
    let perturbed = PerturbedDataset::new(&base, 1_000, 0.02, 8).unwrap();
    let (graph, utilities) = perturbed.materialize(4).unwrap();
    (graph, utilities, perturbed)
}

#[test]
fn materialized_slice_supports_full_pipeline() {
    let (graph, utilities, virtual_set) = perturbed();
    assert_eq!(graph.num_nodes(), 300 * 4);
    assert_eq!(virtual_set.total_points(), 300 * 1_000);
    let objective = PairwiseObjective::from_alpha(0.9, utilities).unwrap();
    let k = graph.num_nodes() / 10;

    let config = PipelineConfig::with_bounding(
        BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 5).unwrap(),
        DistGreedyConfig::new(16, 2).unwrap().adaptive(true).seed(1),
    );
    let outcome = select_subset(&graph, &objective, k, &config).unwrap();
    assert_eq!(outcome.selection.len(), k);
    let bounding = outcome.bounding.unwrap();
    assert!(
        bounding.decision_fraction(graph.num_nodes()) > 0.3,
        "perturbed data is near-duplicate-heavy; bounding should decide a lot, got {:.2}",
        bounding.decision_fraction(graph.num_nodes())
    );
}

#[test]
fn rounds_improve_scores_on_perturbed_data() {
    // §6.3's observation, as a hard assertion on averages.
    let (graph, utilities, _) = perturbed();
    let objective = PairwiseObjective::from_alpha(0.9, utilities).unwrap();
    let ground: Vec<NodeId> = (0..graph.num_nodes()).map(NodeId::from_index).collect();
    let k = graph.num_nodes() / 10;
    let avg = |rounds: usize| -> f64 {
        (0..3)
            .map(|seed| {
                let config = DistGreedyConfig::new(16, rounds).unwrap().seed(seed).adaptive(false);
                distributed_greedy(&graph, &objective, &ground, k, &config)
                    .unwrap()
                    .selection
                    .objective_value()
            })
            .sum::<f64>()
            / 3.0
    };
    let one = avg(1);
    let eight = avg(8);
    assert!(eight >= one, "8 rounds ({eight}) must not lose to 1 round ({one})");
}

#[test]
fn virtual_and_materialized_utilities_agree() {
    // The materialized slice must be a faithful prefix of the virtual view.
    let base =
        build_instance(&DatasetConfig::tiny().with_points_per_class(10).with_seed(64)).unwrap();
    let full = PerturbedDataset::new(&base, 100, 0.02, 9).unwrap();
    let (_, utilities) = full.materialize(3).unwrap();
    let scaled = PerturbedDataset::new(&base, 3, 0.02, 9).unwrap();
    for i in (0..scaled.total_points()).step_by(37) {
        assert!(
            (utilities[i as usize] - scaled.utility(i)).abs() < 1e-6,
            "virtual/materialized mismatch at {i}"
        );
    }
}

#[test]
fn streaming_statistics_match_direct_iteration() {
    let (_, _, virtual_set) = perturbed();
    let pipeline = Pipeline::new(4).unwrap();
    let sample = 5_000u64;
    let v = virtual_set.clone();
    let streamed = pipeline.generate(sample, move |i| v.utility(i * 7) as f64).unwrap();
    let streamed_sum = streamed.sum().unwrap();
    let direct_sum: f64 = (0..sample).map(|i| virtual_set.utility(i * 7) as f64).sum();
    assert!((streamed_sum - direct_sum).abs() < 1e-6 * direct_sum.abs().max(1.0));
}
