//! The observability determinism contract: `SUBMOD_TRACE` must never
//! feed control flow. Selections — in-memory and dataflow drivers —
//! stay bitwise-identical across `off`/`spans`/`full` at 1, 2, and 8
//! worker threads.
//!
//! Mode flips are process-global, so this file holds a single test and
//! nothing else runs in its binary.

use submod_select::prelude::*;
use submod_select::submod_obs::{self, TraceMode};

/// Selected ids plus the objective value's exact bit pattern.
type Fingerprint = (Vec<NodeId>, u64, Vec<NodeId>, u64);

fn run_drivers(instance: &SelectionInstance) -> Fingerprint {
    let objective = instance.objective(0.9).expect("objective");
    let n = instance.len();
    let k = n / 10;
    let ground: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let config = DistGreedyConfig::new(4, 3).expect("config").seed(11).adaptive(true);

    let in_memory = distributed_greedy(&instance.graph, &objective, &ground, k, &config)
        .expect("in-memory greedy");
    let pipeline = Pipeline::new(4).expect("pipeline");
    let dataflow =
        distributed_greedy_dataflow(&pipeline, &instance.graph, &objective, &ground, k, &config)
            .expect("dataflow greedy");
    (
        in_memory.selection.selected().to_vec(),
        in_memory.selection.objective_value().to_bits(),
        dataflow.selection.selected().to_vec(),
        dataflow.selection.objective_value().to_bits(),
    )
}

#[test]
fn selections_are_bitwise_identical_across_trace_modes_and_threads() {
    let instance = build_instance(&DatasetConfig::tiny().with_points_per_class(30).with_seed(9))
        .expect("instance");

    let mut reference: Option<Fingerprint> = None;
    for threads in [1usize, 2, 8] {
        for mode in [TraceMode::Off, TraceMode::Spans, TraceMode::Full] {
            submod_obs::set_mode(mode);
            let fingerprint =
                submod_select::submod_exec::with_threads(threads, || run_drivers(&instance));
            match &reference {
                None => reference = Some(fingerprint),
                Some(expected) => assert_eq!(
                    expected, &fingerprint,
                    "selection changed under threads={threads} mode={mode:?}"
                ),
            }
        }
    }

    // Full mode actually recorded spans — the contract above is only
    // interesting if tracing was really on.
    submod_obs::set_mode(TraceMode::Off);
    let spans = submod_obs::take_spans();
    assert!(!spans.is_empty(), "full mode should have buffered spans");
    assert!(spans.iter().any(|s| s.parent != 0), "spans should nest");
}
