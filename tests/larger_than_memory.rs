//! The system's namesake claim: selection works when no worker may hold
//! the data, and the memory-constrained dataflow results are *identical*
//! to the unconstrained in-memory reference.

use submod_select::prelude::*;

fn instance() -> SelectionInstance {
    build_instance(&DatasetConfig::tiny().with_points_per_class(25).with_seed(77))
        .expect("instance")
}

#[test]
fn dataflow_bounding_matches_reference_under_memory_pressure() {
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.9).unwrap();
    let config = BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 9).unwrap();

    let reference = bound_in_memory(&instance.graph, &objective, k, &config).unwrap();

    // 1 KiB per worker: even the engine-resident bound table (32 bytes per
    // undecided point, no shuffle joins since PR 3) must spill its shards
    // on the ~500-point instance.
    let pipeline =
        Pipeline::builder().workers(4).memory_budget(MemoryBudget::bytes(1024)).build().unwrap();
    let constrained = bound_dataflow(&pipeline, &instance.graph, &objective, k, &config).unwrap();

    assert_eq!(reference, constrained, "memory pressure must not change the outcome");
    let metrics = pipeline.metrics();
    assert!(metrics.bytes_spilled > 0, "the budget must actually have forced spills");
    assert!(
        metrics.peak_worker_bytes <= 1024 + 4096,
        "worker buffers must respect the budget (peak {} bytes)",
        metrics.peak_worker_bytes
    );
}

/// The ISSUE 3 acceptance claim: `bound_dataflow` never materializes the
/// bound table on the driver. Per-pass driver allocations are
/// O(candidates), the persistent driver state is O(included + excluded +
/// undecided) bitset-and-id bookkeeping, and the in-memory driver — which
/// *does* build the table — pays strictly more per pass. Verified with
/// the peak-memory instrumentation at 1, 2, and 8 pool threads, with
/// bitwise-identical outcomes throughout.
#[test]
fn engine_resident_bounding_driver_memory_is_candidates_only() {
    let instance = instance();
    let n = instance.len();
    let k = n / 10;
    let objective = instance.objective(0.9).unwrap();
    let config = BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 9).unwrap();

    let (reference, mem_stats) =
        bound_in_memory_with_stats(&instance.graph, &objective, k, &config).unwrap();

    let mut fingerprints = Vec::new();
    for threads in [1usize, 2, 8] {
        let (outcome, stats) = submod_exec::with_threads(threads, || {
            let pipeline = Pipeline::new(4).unwrap();
            bound_dataflow_with_stats(&pipeline, &instance.graph, &objective, k, &config).unwrap()
        });
        assert_eq!(outcome, reference, "dataflow outcome diverged at {threads} threads");

        // Per-pass driver traffic is exactly the collected candidate
        // lists — 16 bytes per candidate, nothing proportional to the
        // undecided count. (A shrink pass may legitimately nominate most
        // of the ground set for exclusion; the claim is that the driver
        // pays for *candidates*, not for the bound table.)
        assert_eq!(stats.peak_pass_bytes, stats.peak_candidates as u64 * 16);
        assert!(stats.peak_candidates <= n, "candidates cannot exceed the ground set");
        // The in-memory driver materializes the full 56-byte-per-point
        // table (bounds + sample) per pass; the engine-resident driver
        // pays 16 bytes per candidate and must come in clearly under it.
        assert!(
            stats.peak_pass_bytes * 2 < mem_stats.peak_pass_bytes,
            "dataflow per-pass bytes {} not clearly below the in-memory table {}",
            stats.peak_pass_bytes,
            mem_stats.peak_pass_bytes
        );
        // Persistent driver state stays O(included + excluded + undecided):
        // two n-bit sets plus an 8-byte id per undecided point.
        let state_bound = 2 * (n as u64).div_ceil(64) * 8 + 8 * n as u64;
        assert!(
            stats.peak_state_bytes <= state_bound,
            "driver state {} exceeded the O(k + undecided) bound {state_bound}",
            stats.peak_state_bytes
        );
        fingerprints.push((outcome, stats));
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[0], fingerprints[2]);
}

/// The ISSUE 5 acceptance claim: the engine-resident multi-round greedy
/// driver never materializes a machine partition. Per-round driver
/// allocations are O(machines + candidates) — exactly the collected
/// per-step winner rows, 24 bytes each — while the in-memory driver keys
/// the whole pool into per-machine queues (O(pool) per round). Verified
/// with `GreedyStats` at 1, 2, and 8 pool threads, with bitwise-identical
/// selections throughout, including a tight-budget run that under the
/// pre-engine-resident driver would have materialized full partitions.
#[test]
fn engine_resident_greedy_driver_memory_is_winners_only() {
    let instance = instance();
    let n = instance.len();
    let k = n / 10;
    let objective = instance.objective(0.9).unwrap();
    let ground: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let machines = 4;
    let config = DistGreedyConfig::new(machines, 3).unwrap().seed(41).adaptive(true);

    let (reference, mem_stats) =
        distributed_greedy_with_stats(&instance.graph, &objective, &ground, k, &config).unwrap();

    let mut fingerprints = Vec::new();
    for threads in [1usize, 2, 8] {
        let (report, stats) = submod_exec::with_threads(threads, || {
            // 2 KiB per worker: far below a single keyed partition
            // (~n/machines × 24 B), so a driver that shipped partitions
            // around would have to hold what the budget forbids.
            let pipeline = Pipeline::builder()
                .workers(4)
                .memory_budget(MemoryBudget::bytes(2048))
                .build()
                .unwrap();
            distributed_greedy_dataflow_with_stats(
                &pipeline,
                &instance.graph,
                &objective,
                &ground,
                k,
                &config,
            )
            .unwrap()
        });
        assert_eq!(
            report.selection.selected(),
            reference.selection.selected(),
            "dataflow selection diverged at {threads} threads"
        );
        assert_eq!(
            report.selection.objective_value().to_bits(),
            reference.selection.objective_value().to_bits()
        );
        assert_eq!(report.rounds, reference.rounds);

        // Per-round driver traffic is exactly the collected winner rows:
        // 24 bytes per selected candidate, at most `machines` rows per
        // step — O(machines + candidates), never O(partition).
        let max_round_output = report.rounds.iter().map(|r| r.output_size).max().unwrap();
        assert_eq!(stats.peak_round_bytes, 24 * max_round_output as u64);
        assert!(stats.peak_step_winners <= machines);
        assert_eq!(stats.winners_collected, report.rounds.iter().map(|r| r.output_size).sum());
        // The in-memory driver keys the whole pool (24 B/point) every
        // round; the engine-resident driver must come in clearly under.
        assert!(
            stats.peak_round_bytes * 2 < mem_stats.peak_round_bytes,
            "dataflow per-round bytes {} not clearly below the in-memory pool {}",
            stats.peak_round_bytes,
            mem_stats.peak_round_bytes
        );
        // Persistent driver state is the round's winner bookkeeping:
        // an n-bit set plus an 8-byte id per winner (plus round stats).
        let state_bound = (n as u64).div_ceil(64) * 8 + 9 * max_round_output as u64 + 256;
        assert!(
            stats.peak_state_bytes <= state_bound,
            "driver state {} exceeded the O(candidates) bound {state_bound}",
            stats.peak_state_bytes
        );
        assert!(stats.bytes_broadcast > 0, "winners and survivors must ride as side-inputs");
        fingerprints.push((report.rounds.clone(), stats));
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[0], fingerprints[2]);
}

#[test]
fn dataflow_scoring_matches_reference_under_memory_pressure() {
    let instance = instance();
    let k = instance.len() / 4;
    let objective = instance.objective(0.5).unwrap();
    let subset = greedy_select(&instance.graph, &objective, k).unwrap();

    let reference = score_in_memory(&instance.graph, &objective, subset.selected());
    // 1 KiB per worker: with operator fusion the intermediate transforms
    // never materialize, so the pressure has to land on what still does —
    // shuffle runs and fused-stage outputs.
    let pipeline =
        Pipeline::builder().workers(3).memory_budget(MemoryBudget::bytes(1024)).build().unwrap();
    let scored = score_dataflow(&pipeline, &instance.graph, &objective, subset.selected()).unwrap();
    assert!(
        (reference - scored).abs() < 1e-9 * reference.abs().max(1.0),
        "{reference} vs {scored}"
    );
    assert!(pipeline.metrics().bytes_spilled > 0);
}

#[test]
fn virtual_dataset_streams_without_materialization() {
    let base = instance();
    let perturbed = PerturbedDataset::new(&base, 1000, 0.02, 5).unwrap();
    // Half a million virtual points from a 500-point base.
    assert_eq!(perturbed.total_points(), base.len() as u64 * 1000);

    let pipeline =
        Pipeline::builder().workers(4).memory_budget(MemoryBudget::mib(1)).build().unwrap();
    let sample = 100_000u64;
    let p = perturbed.clone();
    let utilities = pipeline.generate(sample, move |i| p.utility(i * 5) as f64).unwrap();
    assert_eq!(utilities.count().unwrap(), sample);
    let mean = utilities.sum().unwrap() / sample as f64;
    assert!(mean.is_finite() && mean >= 0.0);
    // The budget (1 MiB) is far below 100k × 8 bytes + overhead per worker
    // only if generation is streamed; peak must stay bounded.
    let metrics = pipeline.metrics();
    assert!(
        metrics.peak_worker_bytes <= 1024 * 1024 + 4096,
        "peak {} exceeded the budget",
        metrics.peak_worker_bytes
    );
}

#[test]
fn external_shuffle_handles_skewed_groups() {
    // A heavily skewed key distribution under a tiny budget exercises the
    // external sort-merge path end to end.
    let pipeline =
        Pipeline::builder().workers(2).memory_budget(MemoryBudget::bytes(2048)).build().unwrap();
    let records: Vec<(u64, u64)> = (0..20_000).map(|i| (i % 7, i)).collect();
    let grouped = pipeline.from_vec(records).group_by_key().unwrap();
    let mut sizes: Vec<(u64, usize)> =
        grouped.collect().unwrap().into_iter().map(|(k, v)| (k, v.len())).collect();
    sizes.sort_unstable();
    assert_eq!(sizes.len(), 7);
    for &(key, size) in &sizes {
        let expected = (0..20_000u64).filter(|i| i % 7 == key).count();
        assert_eq!(size, expected, "group {key}");
    }
    assert!(pipeline.metrics().external_merges > 0, "external merge path must trigger");
}

#[test]
fn graph_memory_estimate_tracks_the_papers_arithmetic() {
    // §3: 5 B keys/values + 10 neighbors ≈ 880 GB. At our scale the same
    // arithmetic should hold proportionally.
    let instance = instance();
    let bytes = instance.graph.memory_bytes();
    let n = instance.graph.num_nodes();
    let e = instance.graph.num_directed_edges();
    // CSR: 8 bytes per offset + 4 per dense u32 neighbor id + 4 per weight
    // (the store format halved the neighbor encoding relative to the
    // paper's 5 B-key arithmetic).
    let expected = (n + 1) * 8 + e * 4 + e * 4;
    assert_eq!(bytes, expected);
}
