//! Cross-strategy integration tests: every selection strategy in the
//! repository on one instance, with the quality ordering the paper's
//! arguments predict.

use submod_core::threshold_greedy_select;
use submod_select::prelude::*;

fn instance() -> SelectionInstance {
    build_instance(&DatasetConfig::tiny().with_points_per_class(30).with_seed(2024))
        .expect("instance")
}

#[test]
fn all_strategies_produce_valid_subsets() {
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.9).unwrap();
    let ground: Vec<NodeId> = (0..instance.len()).map(NodeId::from_index).collect();

    let central = greedy_select(&instance.graph, &objective, k).unwrap();
    let lazy = lazy_greedy_select(&instance.graph, &objective, k).unwrap();
    let stochastic = stochastic_greedy_select(&instance.graph, &objective, k, 0.1, 3).unwrap();
    let threshold = threshold_greedy_select(&instance.graph, &objective, k, 0.1).unwrap();
    let gd = greedi(&instance.graph, &objective, k, 4, PartitionStyle::Random, 1).unwrap();
    let multi = distributed_greedy(
        &instance.graph,
        &objective,
        &ground,
        k,
        &DistGreedyConfig::new(4, 4).unwrap().seed(1),
    )
    .unwrap();

    // Lazy greedy must match eager greedy exactly.
    assert_eq!(lazy.selected(), central.selected());

    // Every strategy returns a duplicate-free subset of the right size
    // (threshold greedy may stop early by design).
    for (name, sel) in [
        ("central", central.selected()),
        ("stochastic", stochastic.selected()),
        ("greedi", gd.selection.selected()),
        ("multiround", multi.selection.selected()),
    ] {
        assert_eq!(sel.len(), k, "{name} size");
        let mut ids: Vec<u64> = sel.iter().map(|n| n.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), k, "{name} duplicates");
    }
    assert!(threshold.len() <= k);

    // Quality ordering: every approximation stays within 15 % of central.
    let central_value = central.objective_value();
    for (name, value) in [
        ("stochastic", objective.evaluate(&instance.graph, stochastic.selected())),
        ("threshold", objective.evaluate(&instance.graph, threshold.selected())),
        ("greedi", gd.selection.objective_value()),
        ("multiround", multi.selection.objective_value()),
    ] {
        assert!(
            value > central_value * 0.85,
            "{name} quality {value} too far below centralized {central_value}"
        );
    }
}

#[test]
fn dataflow_greedy_matches_in_memory_bitwise() {
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.9).unwrap();
    let ground: Vec<NodeId> = (0..instance.len()).map(NodeId::from_index).collect();
    let config = DistGreedyConfig::new(4, 3).unwrap().seed(5);

    let mem = distributed_greedy(&instance.graph, &objective, &ground, k, &config).unwrap();
    let pipeline = Pipeline::new(4).unwrap();
    let df = submod_dist::distributed_greedy_dataflow(
        &pipeline,
        &instance.graph,
        &objective,
        &ground,
        k,
        &config,
    )
    .unwrap();
    assert_eq!(df.selection.len(), k);
    // Since PR 5 the drivers share keying and step arithmetic: the
    // dataflow selection is the in-memory selection, bit for bit.
    assert_eq!(df.selection.selected(), mem.selection.selected());
    assert_eq!(df.selection.objective_value().to_bits(), mem.selection.objective_value().to_bits());
    assert_eq!(df.rounds, mem.rounds);
}

#[test]
fn geometric_schedule_is_competitive() {
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.9).unwrap();
    let ground: Vec<NodeId> = (0..instance.len()).map(NodeId::from_index).collect();

    let linear = distributed_greedy(
        &instance.graph,
        &objective,
        &ground,
        k,
        &DistGreedyConfig::new(8, 4).unwrap().seed(9),
    )
    .unwrap();
    let geometric = distributed_greedy(
        &instance.graph,
        &objective,
        &ground,
        k,
        &DistGreedyConfig::new(8, 4).unwrap().schedule(DeltaSchedule::Geometric).seed(9),
    )
    .unwrap();
    assert_eq!(geometric.selection.len(), k);
    let ratio = geometric.selection.objective_value() / linear.selection.objective_value();
    assert!(ratio > 0.85, "geometric schedule quality ratio {ratio}");
    // Geometric shrinks harder in round 1.
    assert!(geometric.rounds[0].target <= linear.rounds[0].target);
}

#[test]
fn bounding_reduces_greedy_workload() {
    // The §6.2 systems payoff: after approximate bounding, the greedy
    // phase processes a much smaller ground set.
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.9).unwrap();
    let outcome = bound_in_memory(
        &instance.graph,
        &objective,
        k,
        &BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 4).unwrap(),
    )
    .unwrap();
    assert!(
        outcome.remaining.len() < instance.len() / 2,
        "bounding should at least halve the ground set ({} of {})",
        outcome.remaining.len(),
        instance.len()
    );
}
