//! End-to-end integration tests: the full §6 workflow on synthetic
//! instances, asserting the paper's qualitative claims.

use submod_select::prelude::*;

fn instance() -> SelectionInstance {
    build_instance(&DatasetConfig::tiny().with_seed(1234)).expect("instance")
}

#[test]
fn full_workflow_produces_high_quality_subsets() {
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.9).unwrap();
    let central = greedy_select(&instance.graph, &objective, k).unwrap();

    let config = PipelineConfig::with_bounding(
        BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 5).unwrap(),
        DistGreedyConfig::new(8, 8).unwrap().adaptive(true).seed(3),
    );
    let outcome = select_subset(&instance.graph, &objective, k, &config).unwrap();
    assert_eq!(outcome.selection.len(), k);
    let ratio = outcome.selection.objective_value() / central.objective_value();
    assert!(ratio > 0.9, "pipeline quality ratio {ratio} below 90 %");
}

#[test]
fn more_rounds_close_the_partition_gap() {
    // Fig. 3 shape: score(1 round) ≤ score(many rounds) ≤ centralized.
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.9).unwrap();
    let central = greedy_select(&instance.graph, &objective, k).unwrap().objective_value();

    let avg_score = |rounds: usize| -> f64 {
        (0..3)
            .map(|seed| {
                let cfg = PipelineConfig::greedy_only(
                    DistGreedyConfig::new(8, rounds).unwrap().seed(seed),
                );
                select_subset(&instance.graph, &objective, k, &cfg)
                    .unwrap()
                    .selection
                    .objective_value()
            })
            .sum::<f64>()
            / 3.0
    };
    let one = avg_score(1);
    let many = avg_score(8);
    assert!(many >= one, "8 rounds ({many}) must not lose to 1 round ({one})");
    assert!(many <= central * 1.001, "distributed cannot beat centralized by much");
    assert!(many / central > 0.95, "8 rounds should be near-centralized: {}", many / central);
}

#[test]
fn normalized_scores_match_paper_convention() {
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.5).unwrap();
    let central = greedy_select(&instance.graph, &objective, k).unwrap().objective_value();

    let mut observed = Vec::new();
    for (machines, rounds) in [(2usize, 1usize), (8, 1), (8, 4)] {
        let cfg =
            PipelineConfig::greedy_only(DistGreedyConfig::new(machines, rounds).unwrap().seed(1));
        observed.push(
            select_subset(&instance.graph, &objective, k, &cfg)
                .unwrap()
                .selection
                .objective_value(),
        );
    }
    let normalizer = ScoreNormalizer::new(central, &observed);
    for &score in &observed {
        let pct = normalizer.normalize(score);
        assert!((0.0..=115.0).contains(&pct), "normalized score {pct} out of range");
    }
    assert_eq!(normalizer.normalize(central), 100.0);
    assert_eq!(normalizer.normalize(normalizer.worst()), 0.0);
}

#[test]
fn greedi_union_grows_with_machines_while_multiround_stays_flat() {
    // The motivating systems claim (§2): GreeDi's merge machine must hold
    // m·k points, the multi-round algorithm never more than one partition.
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.9).unwrap();

    let small = greedi(&instance.graph, &objective, k, 2, PartitionStyle::Random, 1).unwrap();
    let large = greedi(&instance.graph, &objective, k, 16, PartitionStyle::Random, 1).unwrap();
    assert!(large.merge.union_size > small.merge.union_size);
    assert!(large.merge.union_size > k * 8, "16-machine union should approach 16·k");
}

#[test]
fn bounding_behaviour_depends_on_alpha() {
    // §6.2: bounding decides points for α = 0.9, nothing for α ∈ {0.1, 0.5}.
    let instance = instance();
    let k = instance.len() / 10;
    for (alpha, expect_decisions) in [(0.9, true), (0.5, false), (0.1, false)] {
        let objective = instance.objective(alpha).unwrap();
        let outcome =
            bound_in_memory(&instance.graph, &objective, k, &BoundingConfig::exact()).unwrap();
        let decided = outcome.included.len() + outcome.excluded_count;
        if expect_decisions {
            assert!(decided > 0, "alpha=0.9 exact bounding should decide something");
        } else {
            assert_eq!(decided, 0, "alpha={alpha} exact bounding should be indecisive");
        }
    }
}

#[test]
fn subset_members_come_from_the_ground_set_without_duplicates() {
    let instance = instance();
    let k = instance.len() / 5;
    let objective = instance.objective(0.9).unwrap();
    let config = PipelineConfig::with_bounding(
        BoundingConfig::approximate(0.7, SamplingStrategy::Weighted, 2).unwrap(),
        DistGreedyConfig::new(4, 2).unwrap().seed(1),
    );
    let outcome = select_subset(&instance.graph, &objective, k, &config).unwrap();
    let mut ids: Vec<u64> = outcome.selection.selected().iter().map(|n| n.raw()).collect();
    let len_before = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), len_before, "duplicates in final subset");
    assert!(ids.iter().all(|&id| (id as usize) < instance.len()));
}

#[test]
fn selection_value_matches_independent_scoring() {
    let instance = instance();
    let k = instance.len() / 10;
    let objective = instance.objective(0.9).unwrap();
    let config = PipelineConfig::greedy_only(DistGreedyConfig::new(4, 4).unwrap());
    let outcome = select_subset(&instance.graph, &objective, k, &config).unwrap();
    let rescored = score_in_memory(&instance.graph, &objective, outcome.selection.selected());
    assert!((outcome.selection.objective_value() - rescored).abs() < 1e-9);
}
