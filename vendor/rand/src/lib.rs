//! A minimal, dependency-free, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored crate provides exactly the surface the workspace uses:
//!
//! - [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen_range`] over half-open integer and float ranges
//! - [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`]
//!
//! The generator is xoshiro256**, seeded through splitmix64 — the same
//! construction `rand`'s `SmallRng` family uses. It is deterministic per
//! seed, which is all the experiments require; it makes no cryptographic
//! claims (neither does `StdRng` as the workspace uses it).

#![forbid(unsafe_code)]

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $ty
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                self.start + (self.end - self.start) * unit
            }
        }

        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> 11) as $ty / ((1u64 << 53) - 1) as $ty;
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience extension over [`RngCore`] mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64. Deterministic per seed across platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f64 = rng.gen_range(0.25f64..=0.5);
            assert!((0.25..=0.5).contains(&g));
        }
    }

    #[test]
    fn float_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let lo = (0..1000).map(|_| rng.gen_range(0.0f64..1.0)).fold(1.0f64, f64::min);
        let hi = (0..1000).map(|_| rng.gen_range(0.0f64..1.0)).fold(0.0f64, f64::max);
        assert!(lo < 0.05 && hi > 0.95);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    fn choose_returns_members() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [5u8, 6, 7];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
