//! A minimal, API-compatible subset of the `rayon` crate, executing on
//! the workspace's own work-stealing pool ([`submod_exec`]).
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored crate provides the `par_iter` / `into_par_iter` / `join` /
//! `scope` entry points the workspace uses. Until PR 2 the returned
//! iterators were ordinary sequential `std` iterators; they now delegate
//! to [`submod_exec`], so every call site runs genuinely parallel while
//! keeping `rayon`'s signatures.
//!
//! ## Determinism
//!
//! All adapters materialize results in **input order** (see
//! [`submod_exec::parallel_map`]), and [`prelude::ParChunks::fold`]
//! assigns chunks to a *fixed* number of splits independent of the
//! thread count, so outputs — including floating-point reductions — are
//! bitwise-identical at any `EXEC_NUM_THREADS`.

#![forbid(unsafe_code)]

pub use submod_exec::{current_num_threads, join, scope};

/// The `rayon::prelude` analogue: import to get `.par_iter()` and
/// `.into_par_iter()` on the standard collections.
pub mod prelude {
    use std::iter::Sum;

    /// Number of fold splits used by [`ParChunks::fold`]. A constant
    /// (rather than the thread count) so the grouping of partial
    /// accumulators — and therefore any floating-point reduction — does
    /// not depend on pool sizing.
    const FOLD_SPLITS: usize = 16;

    /// Conversion into a pool-executed parallel iterator, mirroring
    /// `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Send,
    {
        /// Returns a parallel iterator over owned items.
        fn into_par_iter(self) -> ParIter<Self::Item> {
            ParIter { items: self.into_iter().collect() }
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I where I::Item: Send {}

    /// Borrowing conversion, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed item type.
        type Item: Send;

        /// Returns a parallel iterator over `&T` items.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
        <&'a C as IntoIterator>::Item: Send,
    {
        type Item = <&'a C as IntoIterator>::Item;

        fn par_iter(&'a self) -> ParIter<Self::Item> {
            ParIter { items: self.into_iter().collect() }
        }
    }

    /// A materialized parallel iterator: adapters are lazy, terminal
    /// operations execute on the [`submod_exec`] pool.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Maps every item through `f`, mirroring
        /// `ParallelIterator::map`.
        pub fn map<R, F>(self, f: F) -> ParMap<T, F>
        where
            R: Send,
            F: Fn(T) -> R + Sync,
        {
            ParMap { items: self.items, f }
        }

        /// Number of items, mirroring `ParallelIterator::count`.
        pub fn count(self) -> usize {
            self.items.len()
        }

        /// Collects the items, mirroring `ParallelIterator::collect`.
        pub fn collect<C: FromParallelIterator<T>>(self) -> C {
            C::from_ordered(self.items)
        }

        /// Sums the items, mirroring `ParallelIterator::sum`.
        pub fn sum<S: Sum<T>>(self) -> S {
            self.items.into_iter().sum()
        }
    }

    impl<'a, T: Copy + Send + Sync + 'a> ParIter<&'a T> {
        /// Copies borrowed items, mirroring `ParallelIterator::copied`.
        pub fn copied(self) -> ParIter<T> {
            ParIter { items: self.items.into_iter().copied().collect() }
        }
    }

    /// A mapped parallel iterator; terminal operations run every closure
    /// call on the pool and preserve input order.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> ParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Executes the map on the pool and collects the results in
        /// input order.
        pub fn collect<C: FromParallelIterator<R>>(self) -> C {
            C::from_ordered(submod_exec::parallel_map(self.items, self.f))
        }

        /// Executes the map on the pool and sums the results in input
        /// order.
        pub fn sum<S: Sum<R>>(self) -> S {
            submod_exec::parallel_map(self.items, self.f).into_iter().sum()
        }
    }

    /// Order-preserving collection from a parallel iterator, mirroring
    /// `rayon::iter::FromParallelIterator`.
    pub trait FromParallelIterator<T>: Sized {
        /// Builds the collection from items in input order.
        fn from_ordered(items: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered(items: Vec<T>) -> Self {
            items
        }
    }

    /// Fallible collection: returns the first error in *input order*
    /// (deterministic at any thread count; every item is still
    /// attempted).
    impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
        fn from_ordered(items: Vec<Result<T, E>>) -> Self {
            items.into_iter().collect()
        }
    }

    /// Chunked slice access, mirroring `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T: Sync> {
        /// Returns a parallel iterator over `chunk_size`-sized chunks
        /// supporting rayon's `fold(identity, op).reduce(identity, op)`
        /// shape.
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            ParChunks { slice: self, chunk_size: chunk_size.max(1) }
        }
    }

    /// Pool-executed chunked parallel iterator over a slice.
    pub struct ParChunks<'a, T> {
        slice: &'a [T],
        chunk_size: usize,
    }

    impl<'a, T: Sync> ParChunks<'a, T> {
        /// Folds chunks into per-split accumulators in parallel,
        /// mirroring `ParallelIterator::fold`.
        ///
        /// Chunks are assigned contiguously to at most [`FOLD_SPLITS`]
        /// splits — a count independent of the pool size — and each
        /// split folds its chunks in order, so the accumulator grouping
        /// (and any floating-point total derived from it) is identical
        /// at any thread count.
        pub fn fold<Acc, Id, F>(self, identity: Id, fold_op: F) -> Folded<Acc>
        where
            Acc: Send,
            Id: Fn() -> Acc + Sync,
            F: Fn(Acc, &'a [T]) -> Acc + Sync,
        {
            let n_chunks = self.slice.len().div_ceil(self.chunk_size);
            let splits = n_chunks.clamp(1, FOLD_SPLITS);
            let chunks_per_split = n_chunks.div_ceil(splits).max(1);
            let ranges: Vec<(usize, usize)> = (0..splits)
                .map(|s| (s * chunks_per_split, ((s + 1) * chunks_per_split).min(n_chunks)))
                .filter(|(lo, hi)| lo < hi)
                .collect();
            let slice = self.slice;
            let chunk_size = self.chunk_size;
            let accs = submod_exec::parallel_map(ranges, |(lo, hi)| {
                let mut acc = identity();
                for c in lo..hi {
                    let start = c * chunk_size;
                    let end = (start + chunk_size).min(slice.len());
                    acc = fold_op(acc, &slice[start..end]);
                }
                acc
            });
            Folded { accs }
        }
    }

    /// Result of [`ParChunks::fold`]: the per-split accumulators
    /// awaiting a `reduce`.
    pub struct Folded<Acc> {
        accs: Vec<Acc>,
    }

    impl<Acc> Folded<Acc> {
        /// Merges the per-split accumulators in split order, mirroring
        /// `ParallelIterator::reduce`. `reduce_op` must be the usual
        /// monoid merge for parity with real rayon.
        pub fn reduce<Id, F>(self, identity: Id, reduce_op: F) -> Acc
        where
            Id: Fn() -> Acc,
            F: Fn(Acc, Acc) -> Acc,
        {
            self.accs.into_iter().fold(identity(), reduce_op)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use submod_exec::with_threads;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u64, 2, 3];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn into_par_iter_collects_results() {
        let v = vec![1u64, 2, 3];
        let ok: Result<Vec<u64>, ()> = v.into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn result_collect_reports_first_error_by_index() {
        let out: Result<Vec<u32>, u32> = with_threads(4, || {
            (0u32..64).into_par_iter().map(|x| if x % 20 == 9 { Err(x) } else { Ok(x) }).collect()
        });
        assert_eq!(out.unwrap_err(), 9);
    }

    #[test]
    fn slices_and_ranges_work() {
        let s = [1u8, 2, 3];
        assert_eq!(s.par_iter().copied().sum::<u8>(), 6);
        assert_eq!((0u32..5).into_par_iter().count(), 5);
    }

    #[test]
    fn mapped_sum_runs_on_the_pool() {
        let total: u64 = with_threads(4, || (0u64..1000).into_par_iter().map(|x| x * 2).sum());
        assert_eq!(total, 999_000);
    }

    #[test]
    fn par_chunks_fold_reduce_matches_sequential() {
        let data: Vec<f64> = (0..997).map(|i| (i as f64) * 0.25).collect();
        let sequential: f64 = data.chunks(10).map(|c| c.iter().sum::<f64>()).sum();
        let parallel = data
            .par_chunks(10)
            .fold(|| 0.0f64, |acc, chunk| acc + chunk.iter().sum::<f64>())
            .reduce(|| 0.0, |a, b| a + b);
        assert!((parallel - sequential).abs() < 1e-9);
    }

    #[test]
    fn par_chunks_fold_is_bitwise_stable_across_thread_counts() {
        let data: Vec<f64> = (0..4096).map(|i| ((i * 37) as f64).sin()).collect();
        let run = |threads: usize| {
            with_threads(threads, || {
                data.par_chunks(7)
                    .fold(|| 0.0f64, |acc, chunk| acc + chunk.iter().sum::<f64>())
                    .reduce(|| 0.0, |a, b| a + b)
                    .to_bits()
            })
        };
        let reference = run(1);
        for threads in [2, 8] {
            assert_eq!(run(threads), reference, "thread count {threads}");
        }
    }

    #[test]
    fn join_and_scope_are_exposed() {
        let (a, b) = crate::join(|| 2, || 3);
        assert_eq!(a * b, 6);
        let hits = std::sync::atomic::AtomicUsize::new(0);
        crate::scope(|s| {
            s.spawn(|_| {
                hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        });
        assert_eq!(hits.into_inner(), 1);
    }
}
