//! A minimal, dependency-free, API-compatible subset of the `rayon` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored crate provides the `par_iter` / `into_par_iter` entry points
//! the workspace uses. The returned iterators are the ordinary sequential
//! `std` iterators, so every adapter (`map`, `filter`, fallible
//! `collect`, …) keeps working unchanged.
//!
//! Rationale: the dataflow engine's "workers" are a *simulation* of a
//! cluster — its tests assert memory budgets, spill accounting, and result
//! equivalence, none of which depend on wall-clock parallelism. A
//! thread-pool drop-in can replace this shim without touching callers
//! (the signatures match `rayon`'s).

#![forbid(unsafe_code)]

/// The `rayon::prelude` analogue: import to get `.par_iter()` and
/// `.into_par_iter()` on the standard collections.
pub mod prelude {
    /// Conversion into a (sequentially executed) parallel iterator.
    ///
    /// Mirrors `rayon::iter::IntoParallelIterator`, backed by the type's
    /// ordinary `IntoIterator` implementation.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns an iterator over owned items.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}

    /// Borrowing conversion, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        /// The borrowed iterator type.
        type Iter: Iterator;

        /// Returns an iterator over `&T` items.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;

        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Chunked slice access, mirroring `rayon::slice::ParallelSlice`.
    pub trait ParallelSlice<T> {
        /// Returns an iterator over `chunk_size`-sized chunks supporting
        /// rayon's `fold(identity, op).reduce(identity, op)` shape.
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
            ParChunks { inner: self.chunks(chunk_size) }
        }
    }

    /// Sequential stand-in for rayon's chunked parallel iterator.
    pub struct ParChunks<'a, T> {
        inner: std::slice::Chunks<'a, T>,
    }

    impl<'a, T> ParChunks<'a, T> {
        /// Folds every chunk into per-split accumulators (a single split,
        /// sequentially), mirroring `ParallelIterator::fold`.
        pub fn fold<Acc, Id, F>(self, identity: Id, fold_op: F) -> Folded<Acc>
        where
            Id: Fn() -> Acc,
            F: Fn(Acc, &'a [T]) -> Acc,
        {
            Folded { acc: self.inner.fold(identity(), fold_op) }
        }
    }

    impl<'a, T> Iterator for ParChunks<'a, T> {
        type Item = &'a [T];

        fn next(&mut self) -> Option<Self::Item> {
            self.inner.next()
        }
    }

    /// Result of [`ParChunks::fold`]: the per-split accumulators awaiting
    /// a `reduce`.
    pub struct Folded<Acc> {
        acc: Acc,
    }

    impl<Acc> Folded<Acc> {
        /// Merges the per-split accumulators, mirroring
        /// `ParallelIterator::reduce`. With one sequential split the fold
        /// result is returned as-is; `reduce_op` must be the usual monoid
        /// merge for parity with real rayon.
        pub fn reduce<Id, F>(self, _identity: Id, _reduce_op: F) -> Acc
        where
            Id: Fn() -> Acc,
            F: Fn(Acc, Acc) -> Acc,
        {
            self.acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1u64, 2, 3];
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn into_par_iter_collects_results() {
        let v = vec![1u64, 2, 3];
        let ok: Result<Vec<u64>, ()> = v.into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn slices_and_ranges_work() {
        let s = [1u8, 2, 3];
        assert_eq!(s.par_iter().copied().sum::<u8>(), 6);
        assert_eq!((0u32..5).into_par_iter().count(), 5);
    }
}
