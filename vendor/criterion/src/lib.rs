//! A minimal, dependency-free, API-compatible subset of the `criterion`
//! benchmarking crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored crate implements the workspace's benchmark surface: groups,
//! `bench_function` / `bench_with_input`, `iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology (simplified but honest): every benchmark closure is warmed
//! up once, then timed over `sample_size` samples; the mean, minimum, and
//! maximum wall-clock per iteration are printed. There is no statistical
//! regression analysis — the workspace uses benches for relative
//! comparisons, which min/mean/max support.
//!
//! ## Machine-readable baselines
//!
//! When the `CRITERION_OUTPUT_JSON` environment variable names a file,
//! every result is *also* appended there as one JSON object per line
//! (`group`, `id`, `mean_ns`, `min_ns`, `max_ns`, `samples`). CI points
//! it at the current PR's baseline file (`BENCH_pr<N>.json`) and diffs
//! it against the committed previous one with `bench-diff`, so the
//! workspace accumulates a per-PR performance trajectory; appending
//! keeps the scheme safe across the several bench binaries
//! `cargo bench` launches.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// Renders the name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing driver handed to benchmark closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample, after one untimed warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut bencher);
        report(&self.name, &id.into_id(), &bencher.results);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        let mut bencher = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut bencher, input);
        report(&self.name, &id.into_id(), &bencher.results);
        self
    }

    /// Finishes the group (printing is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{group}/{id}: no samples collected");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().expect("non-empty");
    let max = results.iter().max().expect("non-empty");
    println!("{group}/{id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)", results.len());
    if let Ok(path) = std::env::var("CRITERION_OUTPUT_JSON") {
        if !path.is_empty() {
            if let Err(err) = append_json(&path, group, id, mean, *min, *max, results.len()) {
                eprintln!("warning: could not append bench record to {path}: {err}");
            }
        }
    }
}

/// Appends one JSON-lines record to the baseline file (see the crate
/// docs); best-effort, never fails the benchmark.
fn append_json(
    path: &str,
    group: &str,
    id: &str,
    mean: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(
        file,
        "{{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{}}}",
        json_escape(group),
        json_escape(id),
        mean.as_nanos(),
        min.as_nanos(),
        max.as_nanos(),
        samples
    )
}

/// Escapes the characters that can actually occur in benchmark names.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup { name, sample_size: 10, _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: 10, results: Vec::new() };
        f(&mut bencher);
        report("bench", id, &bencher.results);
        self
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut group = c.benchmark_group("smoke");
            group.sample_size(3);
            group.bench_function("count", |b| b.iter(|| calls += 1));
            group.finish();
        }
        // One warm-up call plus three samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).into_id(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }

    #[test]
    fn json_records_append_and_escape() {
        let dir = std::env::temp_dir().join(format!("criterion-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        let results = [Duration::from_nanos(100), Duration::from_nanos(300)];
        append_json(
            path.to_str().unwrap(),
            "group \"q\"",
            "bench/32",
            Duration::from_nanos(200),
            results[0],
            results[1],
            results.len(),
        )
        .unwrap();
        append_json(
            path.to_str().unwrap(),
            "g",
            "b",
            Duration::from_nanos(5),
            Duration::from_nanos(4),
            Duration::from_nanos(6),
            1,
        )
        .unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2, "records append, one per line");
        assert!(lines[0].contains("\\\"q\\\""), "quotes escaped: {}", lines[0]);
        assert!(lines[0].contains("\"mean_ns\":200"));
        assert!(lines[1].contains("\"samples\":1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
