//! A minimal, API-compatible subset of the `proptest` property-testing
//! crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored crate implements the surface the workspace's property suites
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`] /
//! [`collection::btree_set`], [`option::of`], [`arbitrary::any`], a
//! character-class string strategy, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its case number and seed;
//!   cases are deterministic per (test name, case index), so failures
//!   reproduce exactly on re-run.
//! - **No persistence files.**

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner plumbing: configuration, errors, and the per-case RNG.
pub mod test_runner {
    use super::*;

    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` — skipped, not failed.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// The deterministic per-case generator.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Derives the RNG for one case from the test name and case index.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(seed ^ (u64::from(case) << 32)))
        }
    }
}

use test_runner::TestRng;

/// Value-generation strategies.
pub mod strategy {
    use super::*;

    /// A recipe for generating values of one type, mirroring
    /// `proptest::strategy::Strategy` (without shrinking).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    rng.0.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    );

    /// String-pattern strategy over a restricted regex subset:
    /// concatenations of literal characters and character classes
    /// (`[a-zA-Z0-9 ]`), each optionally repeated `{min,max}`.
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"))
                    + i;
                let mut alphabet = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        alphabet.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        alphabet.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                alphabet
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated repeat in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = match body.split_once(',') {
                    Some((lo, hi)) => {
                        (lo.parse().expect("repeat min"), hi.parse().expect("repeat max"))
                    }
                    None => {
                        let n: usize = body.parse().expect("repeat count");
                        (n, n)
                    }
                };
                i = close + 1;
                (lo, hi)
            } else {
                (1, 1)
            };
            let count = rng.0.gen_range(lo..hi + 1);
            for _ in 0..count {
                out.push(alphabet[rng.0.gen_range(0..alphabet.len())]);
            }
        }
        out
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;
    use rand::RngCore;

    /// A full-type-range strategy marker; see [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Returns the canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(core::marker::PhantomData)
    }

    macro_rules! any_int {
        ($($ty:ty),*) => {$(
            impl Strategy for Any<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    rng.0.next_u64() as $ty
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.0.next_u64() & 1 == 1
        }
    }

    impl Strategy for Any<f32> {
        type Value = f32;

        fn new_value(&self, rng: &mut TestRng) -> f32 {
            // Finite values only (matching real proptest's default, which
            // excludes NaN and infinities).
            loop {
                let candidate = f32::from_bits(rng.0.next_u32());
                if candidate.is_finite() {
                    return candidate;
                }
            }
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            loop {
                let candidate = f64::from_bits(rng.0.next_u64());
                if candidate.is_finite() {
                    return candidate;
                }
            }
        }
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Accepted size specifications: an exact `usize` or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end.max(r.start + 1) }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: r.end() + 1 }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.lo..self.hi_exclusive)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element`, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates shrink the set.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets of values from `element`, mirroring
    /// `proptest::collection::btree_set`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Option strategies, mirroring `proptest::option`.
pub mod option {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy yielding `None` half the time, `Some(inner)` otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Mirrors `proptest::option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            use rand::RngCore;
            if rng.0.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a property, returning a
/// [`test_runner::TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects (skips) the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`
/// running `cases` deterministic random cases (no shrinking; the case
/// index reproduces a failure exactly).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::new_value(
                        &($strat),
                        &mut proptest_rng,
                    );
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, message
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -1.0f64..1.0, z in 2u64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!((2..=9).contains(&z));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(0u32..10, 1..6),
            pair in (0u8..4).prop_flat_map(|n| (Just(n), 0u8..4)),
            opt in crate::option::of(any::<bool>()),
            s in "[a-c]{2,5}",
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assume!(opt.is_some() || opt.is_none());
            prop_assert!((2..=5).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn mapped_strategies_apply(doubled in (1u64..50).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0 && doubled < 100);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::TestRng::for_case("t", 3);
        let b = crate::test_runner::TestRng::for_case("t", 3);
        let (mut a, mut b) = (a, b);
        let sa = (0u64..100).new_value(&mut a);
        let sb = (0u64..100).new_value(&mut b);
        assert_eq!(sa, sb);
    }
}
