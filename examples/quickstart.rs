//! Quickstart: centralized vs distributed selection on a synthetic
//! clustered dataset.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use submod_select::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small clustered dataset: 20 classes × 50 points, 16-d embeddings,
    // margin utilities from a simulated coarse classifier, 5-NN graph.
    let instance = build_instance(&DatasetConfig::tiny())?;
    let n = instance.len();
    let k = n / 10;
    let objective = instance.objective(0.9)?;
    println!("ground set: {n} points, target subset: {k} points (alpha = 0.9)");
    println!(
        "similarity graph: {} undirected edges, avg degree {:.1}\n",
        instance.graph.num_undirected_edges(),
        instance.graph.avg_degree()
    );

    // 1. Centralized greedy (paper Algorithm 2) — the quality reference.
    let central = greedy_select(&instance.graph, &objective, k)?;
    println!(
        "centralized greedy        f(S) = {:>10.4}  (100 % reference)",
        central.objective_value()
    );

    // 2. Naive distributed: 8 partitions, a single round.
    let one_round = PipelineConfig::greedy_only(DistGreedyConfig::new(8, 1)?);
    let outcome = select_subset(&instance.graph, &objective, k, &one_round)?;
    report("8 partitions, 1 round    ", &outcome, &central);

    // 3. Multi-round with adaptive partitioning (the paper's fix).
    let multi_round = PipelineConfig::greedy_only(DistGreedyConfig::new(8, 8)?.adaptive(true));
    let outcome = select_subset(&instance.graph, &objective, k, &multi_round)?;
    report("8 partitions, 8 rounds A ", &outcome, &central);

    // 4. Approximate bounding + distributed greedy (the full pipeline).
    let full = PipelineConfig::with_bounding(
        BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 7)?,
        DistGreedyConfig::new(8, 8)?.adaptive(true),
    );
    let outcome = select_subset(&instance.graph, &objective, k, &full)?;
    if let Some(bounding) = &outcome.bounding {
        println!(
            "bounding: included {} points, excluded {} points in {} grow / {} shrink rounds",
            bounding.included.len(),
            bounding.excluded_count,
            bounding.grow_rounds,
            bounding.shrink_rounds
        );
    }
    report("bounding + greedy        ", &outcome, &central);

    Ok(())
}

fn report(name: &str, outcome: &submod_dist::PipelineOutcome, central: &submod_core::Selection) {
    let pct = outcome.selection.objective_value() / central.objective_value() * 100.0;
    println!(
        "{name}  f(S) = {:>10.4}  ({pct:>6.2} % of centralized)",
        outcome.selection.objective_value()
    );
}
