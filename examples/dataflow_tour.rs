//! A tour of the Beam-style dataflow engine on its own: transforms,
//! shuffles, joins, memory budgets, and spill accounting.
//!
//! The paper's §5 pipelines are built from exactly these pieces; this
//! example exercises them on a toy co-occurrence workload so the engine's
//! behaviour is visible without the selection machinery on top.
//!
//! ```text
//! cargo run --release --example dataflow_tour
//! ```

use submod_select::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A pipeline of 4 simulated workers with a deliberately small 256 KiB
    // budget so the shuffle's spill path is observable.
    let pipeline =
        Pipeline::builder().workers(4).memory_budget(MemoryBudget::bytes(256 * 1024)).build()?;

    // Source: 200k synthetic "edge" records (node, neighbor).
    let edges = pipeline.generate(200_000, |i| (i % 5_000, (i * 7 + 1) % 5_000))?;
    println!("source: {} edge records across {} shards", edges.count()?, edges.num_shards());

    // Transform chain: filter self-loops, compute degrees per node.
    let degrees =
        edges.filter(|(a, b)| a != b)?.map(|(a, _)| (a, 1u64))?.reduce_per_key(|x, y| x + y)?;
    let max_degree = degrees.aggregate(0u64, |acc, (_, d)| acc.max(d), |a, b| a.max(b))?;
    println!("distinct nodes: {}, max degree: {max_degree}", degrees.count()?);

    // A three-way co-group, the §5 bounding join shape: edges × a
    // "solution" set × per-node utilities.
    let solution = pipeline.from_vec((0u64..500).map(|v| (v * 10, ())).collect::<Vec<_>>());
    let utilities = pipeline.generate(5_000, |v| (v, v as f64 / 5_000.0))?;
    let joined = degrees.co_group_3(&solution, &utilities)?;
    let in_solution =
        joined.filter(|(_, (deg, sol, _))| !deg.is_empty() && !sol.is_empty())?.count()?;
    println!("nodes with degree info that are in the solution: {in_solution}");

    // Broadcast side-input: the same membership question answered without
    // a shuffle — the solution set rides to every worker as a bitset.
    let members = pipeline.broadcast_set(5_000, (0u64..500).map(|v| v * 10));
    let via_broadcast = degrees.filter(move |(v, _)| members.contains(*v))?.count()?;
    println!("same count via a broadcast side-input join: {via_broadcast}");

    // Keyed combiner: degree histogram with map-side partial aggregation
    // (duplicated keys collapse before the shuffle).
    let histogram =
        degrees.map(|(_, d)| (d, 1u64))?.aggregate_per_key(0u64, |a, c| a + c, |a, b| a + b)?;
    println!("distinct degree values: {}", histogram.count()?);

    // Deterministic seeded sampling: identical at any shard/thread count.
    let bernoulli = degrees.sample_bernoulli(42, |(v, _)| *v, |_| 0.01)?;
    let reservoir = degrees.sample_reservoir(42, |(v, _)| *v, 25)?;
    println!(
        "samples: Bernoulli(p = 1 %) drew {}, reservoir drew {}",
        bernoulli.count()?,
        reservoir.count()?
    );

    // Distributed order statistics without materializing the data.
    let utility_values = utilities.map(|(_, u)| u)?;
    let median = utility_values.kth_largest(2_500)?;
    let p99 = utility_values.kth_largest(50)?;
    println!("median utility: {median:.4}, p99: {p99:.4}");

    // The engine's resource story.
    let m = pipeline.metrics();
    println!("\npipeline metrics:");
    println!("  records processed : {}", m.records_processed);
    println!("  records shuffled  : {}", m.records_shuffled);
    println!("  spill files       : {}", m.spill_files);
    println!("  bytes spilled     : {} KiB", m.bytes_spilled / 1024);
    println!("  peak worker bytes : {} KiB (budget: 256 KiB)", m.peak_worker_bytes / 1024);
    println!("  external merges   : {}", m.external_merges);
    println!("  combiner flushes  : {}", m.combiner_flushes);
    println!("  bytes broadcast   : {}", m.bytes_broadcast);
    Ok(())
}
