//! Reproduces the paper's **Figure 1**: a walkthrough of distributed
//! bounding finding a 50 % subset of 6 data points.
//!
//! Prints the minimum/maximum utilities of every point and the grow /
//! shrink decisions, pass by pass.
//!
//! ```text
//! cargo run --release --example bounding_trace
//! ```

use submod_select::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six points: two similar pairs (0,1) and (2,3) plus two loners (4,5),
    // echoing Figure 1's layout.
    let mut builder = GraphBuilder::new(6);
    builder.add_undirected(0, 1, 0.8)?;
    builder.add_undirected(2, 3, 0.7)?;
    builder.add_undirected(1, 2, 0.3)?;
    let graph = builder.build();
    let utilities = vec![0.9, 0.6, 0.8, 0.5, 0.75, 0.1];
    let objective = PairwiseObjective::from_alpha(0.7, utilities.clone())?;
    let k = 3;

    println!("ground set: 6 points, target: 50 % subset (k = {k}), alpha = 0.7\n");
    println!("initial bounds (U_min considers all neighbors, U_max only selected ones):");
    println!("{:>6} {:>9} {:>9} {:>9}", "point", "utility", "U_min", "U_max");
    for v in 0..6u64 {
        let vid = NodeId::new(v);
        let umin = objective.utility(vid) - objective.ratio() * graph.weighted_degree(vid);
        let umax = objective.utility(vid);
        println!("{v:>6} {:>9.3} {umin:>9.3} {umax:>9.3}", objective.utility(vid));
    }

    let (outcome, mem_stats) =
        bound_in_memory_with_stats(&graph, &objective, k, &BoundingConfig::exact())?;
    println!("\nexact bounding result:");
    println!("  grow passes:   {}", outcome.grow_rounds);
    println!("  shrink passes: {}", outcome.shrink_rounds);
    println!("  included: {:?}", outcome.included.iter().map(|n| n.raw()).collect::<Vec<_>>());
    println!("  remaining: {:?}", outcome.remaining.iter().map(|n| n.raw()).collect::<Vec<_>>());
    println!("  excluded: {} point(s)", outcome.excluded_count);

    // The same run on the dataflow engine keeps the bound table
    // engine-resident: the driver only ever sees the candidate lists.
    let pipeline = Pipeline::new(2)?;
    let (df_outcome, df_stats) =
        bound_dataflow_with_stats(&pipeline, &graph, &objective, k, &BoundingConfig::exact())?;
    assert_eq!(outcome, df_outcome, "drivers must agree bit for bit");
    println!("\ndriver-side memory (per-pass peak):");
    println!("  in-memory driver : {} bytes (full bound table)", mem_stats.peak_pass_bytes);
    println!("  dataflow driver  : {} bytes (candidates only)", df_stats.peak_pass_bytes);

    if !outcome.is_complete() {
        println!("\nbounding left {} point(s) undecided;", outcome.k_remaining);
        println!("completing with the distributed greedy algorithm:");
        let config =
            PipelineConfig::with_bounding(BoundingConfig::exact(), DistGreedyConfig::new(2, 2)?);
        let full = select_subset(&graph, &objective, k, &config)?;
        println!(
            "  final subset: {:?}  f(S) = {:.4}",
            full.selection.selected().iter().map(|n| n.raw()).collect::<Vec<_>>(),
            full.selection.objective_value()
        );
    }

    // Compare against the centralized reference.
    let central = greedy_select(&graph, &objective, k)?;
    println!(
        "\ncentralized greedy picks {:?} with f(S) = {:.4}",
        central.selected().iter().map(|n| n.raw()).collect::<Vec<_>>(),
        central.objective_value()
    );
    Ok(())
}
