//! Selection-pinning harness for perf work on the hot paths.
//!
//! Prints a one-shot timing of the 10 k × 64-d exact graph build plus
//! FNV hashes of deterministic end-to-end outputs (centralized greedy,
//! bounding + multi-round pipeline, k-means assignments) on exact and
//! IVF graphs. Run it **before** touching a kernel or scheduler, save
//! the lines, run it after at several thread counts and under
//! `SUBMOD_KERNELS=scalar` — every hash must be unchanged. PR 4 used
//! exactly this to prove the SIMD rewrite left selections
//! bitwise-identical.
//!
//! ```text
//! for t in 1 2 8; do EXEC_NUM_THREADS=$t \
//!   cargo run --release --example pin_selections; done
//! SKIP_TIMING=1 SUBMOD_KERNELS=scalar cargo run --release --example pin_selections
//! ```

use std::time::Instant;
use submod_core::{greedy_select, PairwiseObjective};
use submod_dist::{
    select_subset, BoundingConfig, DistGreedyConfig, PipelineConfig, SamplingStrategy,
};
use submod_knn::{build_knn_graph, kmeans, Embeddings, KnnBackend};

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f32 {
    (splitmix(state) >> 40) as f32 / (1u64 << 24) as f32
}

fn embeddings(n: usize, dim: usize, seed: u64) -> Embeddings {
    let mut s = seed;
    let flat: Vec<f32> = (0..n * dim).map(|_| unit(&mut s) * 2.0 - 1.0).collect();
    Embeddings::from_flat(dim, flat).unwrap()
}

fn fnv(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn main() {
    let threads: usize =
        std::env::var("EXEC_NUM_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    submod_exec::set_num_threads(threads);

    // Headline timing: 10k x 64d exact graph build.
    if std::env::var("SKIP_TIMING").is_err() {
        let data = embeddings(10_000, 64, 7);
        let t0 = Instant::now();
        let g = build_knn_graph(&data, 10, &KnnBackend::Exact, 0).unwrap();
        let dt = t0.elapsed();
        println!(
            "build_10k_64d_exact_ms {:.1} edges {}",
            dt.as_secs_f64() * 1e3,
            g.num_undirected_edges()
        );
    }

    // Deterministic selections: exact and IVF graphs -> greedy + distributed.
    for (tag, n, backend) in [
        ("exact", 1_500usize, KnnBackend::Exact),
        ("ivf", 3_000, KnnBackend::Ivf { nlist: 55, nprobe: 4 }),
    ] {
        let data = embeddings(n, 16, 42);
        let graph = build_knn_graph(&data, 10, &backend, 3).unwrap();
        let utilities: Vec<f32> = {
            let mut s = 9u64;
            (0..n).map(|_| unit(&mut s)).collect()
        };
        let objective = PairwiseObjective::new(0.9, 0.1, utilities).unwrap();
        let k = n / 10;
        let central = greedy_select(&graph, &objective, k).unwrap();
        let sel_hash =
            fnv(central.selected().iter().flat_map(|id| format!("{id:?},").into_bytes()));
        let config = PipelineConfig::with_bounding(
            BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 1).unwrap(),
            DistGreedyConfig::new(4, 4).unwrap().adaptive(true),
        );
        let outcome = select_subset(&graph, &objective, k, &config).unwrap();
        let dist_hash =
            fnv(outcome.selection.selected().iter().flat_map(|id| format!("{id:?},").into_bytes()));
        // k-means assignments hash (IVF quantizer determinism).
        let km = kmeans(&data, 32, 25, 3).unwrap();
        let km_hash = fnv(km.assignments().iter().flat_map(|a| a.to_le_bytes()));
        println!(
            "threads {threads} {tag} central {sel_hash:016x} dist {dist_hash:016x} kmeans {km_hash:016x}"
        );
    }
}
