//! End-to-end CIFAR-100-like selection: the paper's §6.1/§6.2 workflow at
//! configurable scale.
//!
//! Builds a 100-class clustered dataset, a 10-NN cosine graph, and margin
//! utilities; then compares centralized greedy, GreeDi, single-round and
//! multi-round distributed greedy, and the bounding pipeline.
//!
//! ```text
//! cargo run --release --example cifar_selection           # 5 k points
//! cargo run --release --example cifar_selection -- full   # 50 k points
//! ```

use std::time::Instant;
use submod_select::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "full");
    let config = if full {
        DatasetConfig::cifar100_like()
    } else {
        DatasetConfig::cifar100_like().scaled(0.1)
    };
    println!(
        "building {} ({} points, {} classes, {}-d embeddings, 10-NN graph)...",
        config.name(),
        config.total_points(),
        config.num_classes(),
        config.dim()
    );
    let t0 = Instant::now();
    let instance = build_instance(&config)?;
    println!("built in {:.1?} (cached for reruns)\n", t0.elapsed());

    let k = instance.len() / 10;
    let objective = instance.objective(0.9)?;

    let t = Instant::now();
    let central = greedy_select(&instance.graph, &objective, k)?;
    println!(
        "{:<34} f(S) = {:>12.2}  [100.00 %]  {:?}",
        "centralized greedy",
        central.objective_value(),
        t.elapsed()
    );
    let reference = central.objective_value();
    let pct = |v: f64| v / reference * 100.0;

    // GreeDi baseline: needs a machine holding the union of all partitions.
    let t = Instant::now();
    let gd = greedi(&instance.graph, &objective, k, 8, PartitionStyle::Random, 1)?;
    println!(
        "{:<34} f(S) = {:>12.2}  [{:>6.2} %]  {:?}  (merge holds {} points ≈ {} KiB)",
        "GreeDi (8 machines)",
        gd.selection.objective_value(),
        pct(gd.selection.objective_value()),
        t.elapsed(),
        gd.merge.union_size,
        gd.merge.merge_memory_bytes / 1024
    );

    for (name, machines, rounds, adaptive) in [
        ("distributed 8p / 1 round", 8, 1, false),
        ("distributed 8p / 8 rounds", 8, 8, false),
        ("distributed 8p / 8 rounds adaptive", 8, 8, true),
    ] {
        let t = Instant::now();
        let cfg = PipelineConfig::greedy_only(
            DistGreedyConfig::new(machines, rounds)?.adaptive(adaptive).seed(2),
        );
        let outcome = select_subset(&instance.graph, &objective, k, &cfg)?;
        println!(
            "{:<34} f(S) = {:>12.2}  [{:>6.2} %]  {:?}",
            name,
            outcome.selection.objective_value(),
            pct(outcome.selection.objective_value()),
            t.elapsed()
        );
    }

    // The full pipeline with approximate bounding.
    let t = Instant::now();
    let cfg = PipelineConfig::with_bounding(
        BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 3)?,
        DistGreedyConfig::new(8, 8)?.adaptive(true).seed(2),
    );
    let outcome = select_subset(&instance.graph, &objective, k, &cfg)?;
    let bounding = outcome.bounding.as_ref().expect("bounding ran");
    println!(
        "{:<34} f(S) = {:>12.2}  [{:>6.2} %]  {:?}",
        "bounding(0.3) + distributed",
        outcome.selection.objective_value(),
        pct(outcome.selection.objective_value()),
        t.elapsed()
    );
    println!(
        "  bounding decided {:.1} % of the ground set up front ({} included / {} excluded, {} grow / {} shrink passes)",
        bounding.decision_fraction(instance.len()) * 100.0,
        bounding.included.len(),
        bounding.excluded_count,
        bounding.grow_rounds,
        bounding.shrink_rounds
    );

    Ok(())
}
