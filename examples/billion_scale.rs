//! The §6.3 scalability story: a *virtual* perturbed dataset in the
//! billions, streamed through the dataflow engine under a strict
//! per-worker memory budget, plus a scaled-down materialized selection.
//!
//! ```text
//! cargo run --release --example billion_scale
//! ```

use std::time::Instant;
use submod_select::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Base instance: an ImageNet-like dataset at small scale.
    let base = build_instance(&DatasetConfig::imagenet_like().with_points_per_class(10))?;
    println!("base dataset: {} points", base.len());

    // Virtual blowup: 10_000 copies per point = the paper's factor. The
    // dataset below *is* a 100 M-point dataset; nothing is materialized.
    let virtual_factor = 10_000;
    let perturbed = PerturbedDataset::new(&base, virtual_factor, 0.02, 42)?;
    println!(
        "virtual perturbed dataset: {} points ({}x blowup) — never materialized",
        perturbed.total_points(),
        virtual_factor
    );

    // Streaming pass over a slice of the virtual dataset with a strict
    // 4 MiB per-worker budget: compute utility statistics via dataflow.
    let pipeline = Pipeline::builder().workers(8).memory_budget(MemoryBudget::mib(4)).build()?;
    let sample: u64 = 2_000_000.min(perturbed.total_points());
    let stride = (perturbed.total_points() / sample).max(1);
    println!("\nstreaming {sample} virtual points (stride {stride}) through 8 workers @ 4 MiB...");
    let t = Instant::now();
    let p = perturbed.clone();
    let utilities = pipeline.generate(sample, move |i| p.utility(i * stride) as f64)?;
    let mean = utilities.sum()? / sample as f64;
    let max = utilities.max()?.unwrap_or(0.0);
    let metrics = pipeline.metrics();
    println!(
        "utility mean {mean:.4}, max {max:.4} in {:.1?}; peak worker buffer {} KiB, {} spill files",
        t.elapsed(),
        metrics.peak_worker_bytes / 1024,
        metrics.spill_files
    );

    // Materialize a scaled slice (factor 5 → 5x base) and run the full
    // selection pipeline on it.
    let factor_limit = 5;
    let t = Instant::now();
    let (graph, utilities) = perturbed.materialize(factor_limit)?;
    println!(
        "\nmaterialized factor-{factor_limit} slice: {} points, {} edges in {:.1?}",
        graph.num_nodes(),
        graph.num_undirected_edges(),
        t.elapsed()
    );
    let objective = PairwiseObjective::from_alpha(0.9, utilities)?;
    let k = graph.num_nodes() / 10;

    for rounds in [1usize, 2, 8] {
        let t = Instant::now();
        let cfg =
            PipelineConfig::greedy_only(DistGreedyConfig::new(16, rounds)?.adaptive(true).seed(1));
        let outcome = select_subset(&graph, &objective, k, &cfg)?;
        println!(
            "16 partitions, {rounds} round(s): f(S) = {:>12.2} in {:.1?}",
            outcome.selection.objective_value(),
            t.elapsed()
        );
    }

    // Bounding at scale: how much of the ground set gets decided up front.
    let t = Instant::now();
    let outcome = bound_in_memory(
        &graph,
        &objective,
        k,
        &BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 9)?,
    )?;
    println!(
        "\napproximate bounding (30 % uniform): included {:.3} %, excluded {:.1} % in {:.1?}",
        outcome.included.len() as f64 / graph.num_nodes() as f64 * 100.0,
        outcome.excluded_count as f64 / graph.num_nodes() as f64 * 100.0,
        t.elapsed()
    );

    Ok(())
}
