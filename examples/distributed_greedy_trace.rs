//! Reproduces the paper's **Figure 2**: the distributed greedy algorithm
//! finding a subset of size 3 out of 10 points using 2 rounds with 3
//! partitions.
//!
//! ```text
//! cargo run --release --example distributed_greedy_trace
//! ```

use submod_select::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ten points on a ring with decaying utilities.
    let mut builder = GraphBuilder::new(10);
    for v in 0..10u64 {
        builder.add_undirected(v, (v + 1) % 10, 0.6)?;
    }
    let graph = builder.build();
    let utilities: Vec<f32> = (0..10).map(|i| 1.0 - i as f32 * 0.07).collect();
    let objective = PairwiseObjective::from_alpha(0.8, utilities)?;

    println!("10 points, k = 3, 3 partitions, 2 rounds (paper Figure 2)\n");

    let config = DistGreedyConfig::new(3, 2)?.seed(1);
    let report = distributed_greedy(
        &graph,
        &objective,
        &(0..10).map(NodeId::new).collect::<Vec<_>>(),
        3,
        &config,
    )?;

    for stats in &report.rounds {
        println!(
            "round {}: {:>2} points in, Δ target {:>2}, {} partitions, {:>2} points out",
            stats.round, stats.input_size, stats.target, stats.partitions, stats.output_size
        );
    }
    println!(
        "\nfinal subset: {:?}",
        report.selection.selected().iter().map(|n| n.raw()).collect::<Vec<_>>()
    );
    println!("objective f(S) = {:.4}", report.selection.objective_value());

    let central = greedy_select(&graph, &objective, 3)?;
    println!(
        "centralized greedy: {:?} with f(S) = {:.4}",
        central.selected().iter().map(|n| n.raw()).collect::<Vec<_>>(),
        central.objective_value()
    );
    Ok(())
}
