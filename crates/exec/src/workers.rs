//! The process-lifetime worker set.
//!
//! Entering a parallel region used to spawn its helper OS threads with
//! `std::thread::scope` and join them at region exit — microseconds of
//! `clone`/`join` per entry, which dominates microsecond-scale
//! transforms. Workers now live for the life of the process: a region
//! *publishes* itself here, idle workers *attach* (claiming a worker
//! index), service it exactly as before, and *detach* back to the set's
//! condvar when the region drains. At steady state a region entry spawns
//! zero OS threads ([`crate::region_entry_spawn_count`] lets tests pin
//! that); the set only grows when a region wants more helpers than are
//! currently idle.
//!
//! ## Why the one `unsafe impl` is sound
//!
//! Persistent threads cannot borrow a region's stack through safe APIs,
//! so the published [`RegionJob`] carries a type-erased pointer to the
//! caller's `Scope` plus two erased entry points. The lifetime argument
//! is the classic scoped-pool one:
//!
//! 1. workers attach **under the set's mutex**, bumping the scope's
//!    attached count before the job can be observed as claimed;
//! 2. at region exit the owner calls [`retire`] (same mutex), after
//!    which no worker can ever see the job again;
//! 3. the owner then blocks until the attached count returns to zero,
//!    so the `Scope` — and everything the region's tasks borrow —
//!    strictly outlives every worker access.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// A published parallel region: an erased `&Scope` plus the entry
/// points workers drive it with, and how many helper slots remain.
pub(crate) struct RegionJob {
    /// Type-erased `*const Scope<'_>`; valid until the owner's `run`
    /// returns (see module docs).
    pub(crate) scope: *const (),
    /// Bumps the scope's attached count. Called under the set mutex.
    pub(crate) attach: unsafe fn(*const ()),
    /// Runs one worker (`work(index)` + detach) against the scope.
    pub(crate) run: unsafe fn(*const (), usize),
    /// Helper slots not yet claimed; the job leaves the queue at zero.
    pub(crate) slots: usize,
    /// Worker index the next attacher receives (the owner is always 0).
    pub(crate) next_index: usize,
}

// SAFETY: the scope pointer is only dereferenced by workers that
// attached under the set mutex, and the publishing thread keeps the
// Scope alive until every attached worker detached (module docs).
unsafe impl Send for RegionJob {}

struct State {
    /// Published regions with unclaimed helper slots, FIFO.
    queue: VecDeque<RegionJob>,
    /// Persistent workers ever spawned (only grows, under the mutex).
    total: usize,
}

struct WorkerSet {
    state: Mutex<State>,
    /// Parks idle persistent workers; notified on every publish.
    available: Condvar,
    /// Workers currently attached to a region. Decremented at *detach*
    /// (before the region owner is woken), not when the worker re-parks
    /// — so by the time an owner can enter its next region, the workers
    /// it just released already count as available and back-to-back
    /// regions never re-spawn.
    busy: AtomicUsize,
}

static SET: OnceLock<WorkerSet> = OnceLock::new();

fn set() -> &'static WorkerSet {
    SET.get_or_init(|| WorkerSet {
        state: Mutex::new(State { queue: VecDeque::new(), total: 0 }),
        available: Condvar::new(),
        busy: AtomicUsize::new(0),
    })
}

/// Publishes a region for `job.slots` helpers and wakes idle workers,
/// spawning new persistent threads only for the shortfall between the
/// request and the workers not currently serving a region. Returns how
/// many threads were spawned (zero at steady state).
pub(crate) fn dispatch(job: RegionJob) -> usize {
    let s = set();
    let missing = {
        let mut state = s.state.lock().expect("worker-set state");
        let available = state.total.saturating_sub(s.busy.load(Ordering::SeqCst));
        let missing = job.slots.saturating_sub(available);
        state.queue.push_back(job);
        // Count the new workers in before spawning so a concurrent
        // dispatch doesn't double-spawn; corrected below on failure.
        state.total += missing;
        missing
    };
    // Spawn outside the lock, and degrade instead of panicking: a
    // transient OS thread-limit failure must cost this region some
    // parallelism, not poison the set's mutex and brick every future
    // region (the owner always completes the region itself, and
    // `retire` withdraws whatever slots go unclaimed).
    let mut spawned = 0;
    for _ in 0..missing {
        let worker = std::thread::Builder::new().name("submod-exec-worker".into());
        if worker.spawn(worker_loop).is_err() {
            break;
        }
        spawned += 1;
    }
    if spawned < missing {
        s.state.lock().expect("worker-set state").total -= missing - spawned;
    }
    s.available.notify_all();
    spawned
}

/// Marks one attached worker as done with its region. Called by the
/// erased worker body right before it signals the region owner, so the
/// availability accounting is correct by the time the owner's `run`
/// returns (the release of the owner's parking mutex orders this
/// decrement before anything the owner does next).
pub(crate) fn mark_available() {
    set().busy.fetch_sub(1, Ordering::SeqCst);
}

/// Withdraws any unclaimed helper slots of `scope` (region exit). A
/// worker holding the mutex either already attached — the owner's
/// attached-count wait covers it — or can no longer see the job.
pub(crate) fn retire(scope: *const ()) {
    let s = set();
    s.state.lock().expect("worker-set state").queue.retain(|j| j.scope != scope);
}

/// A persistent worker: claim a helper slot (attaching under the set
/// mutex), service the region to completion, return to the condvar.
fn worker_loop() {
    let s = set();
    loop {
        let (scope, run, index) = {
            let mut state = s.state.lock().expect("worker-set state");
            loop {
                if let Some(front) = state.queue.front_mut() {
                    let (scope, attach, run) = (front.scope, front.attach, front.run);
                    let index = front.next_index;
                    front.next_index += 1;
                    front.slots -= 1;
                    if front.slots == 0 {
                        state.queue.pop_front();
                    }
                    s.busy.fetch_add(1, Ordering::SeqCst);
                    // SAFETY: attaching under the set mutex, before
                    // `retire` could have removed the job, so the owner
                    // is still alive and will wait for our detach.
                    unsafe { attach(scope) };
                    break (scope, run, index);
                }
                state = s.available.wait(state).expect("worker-set condvar");
            }
        };
        // SAFETY: attached above; the owner keeps the Scope (and all
        // region borrows) alive until our detach inside `run`.
        unsafe { run(scope, index) };
    }
}
