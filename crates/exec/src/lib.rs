//! # submod_exec — the workspace's parallel runtime
//!
//! A dependency-free work-stealing thread pool built on `std::thread`,
//! powering every "worker" in the reproduction: the dataflow engine's
//! shard transforms and shuffles, the k-NN graph build, and the
//! per-machine rounds of the distributed greedy algorithms. The vendored
//! `rayon` shim delegates its `par_iter` / `join` / `scope` surface here,
//! so crates written against the rayon API run on this pool unchanged.
//!
//! ## Execution model
//!
//! Parallel regions are *scoped*: tasks handed to [`scope`] (and the
//! [`parallel_map`] / [`join`] conveniences built on it) may borrow from
//! the enclosing stack frame — no `'static` bounds. Helper workers are
//! **persistent**: region entry publishes the region to a
//! process-lifetime worker set and wakes parked threads instead of
//! spawning OS threads, so at steady state entering a region costs a
//! mutex hop and a condvar signal ([`region_entry_nanos`] /
//! [`region_entry_spawn_count`] meter this; the owner blocks until every
//! attached helper detaches, which is what keeps borrowed state sound —
//! the one lifetime-erasing `unsafe impl` and its argument live in
//! `src/workers.rs`). Inside a region:
//!
//! - every worker owns a local deque seeded round-robin at spawn time;
//! - tasks spawned *from inside a task* land in a shared global injector;
//! - an idle worker pops its own deque first, then the injector, then
//!   steals from the back of a sibling's deque;
//! - a worker that finds nothing runnable **parks on a condition
//!   variable** (after a handful of yields for low-latency pickup):
//!   spawns unpark one worker, the final completion unparks everyone.
//!   Idle workers burn zero CPU — there is no spin loop and no
//!   sleep-polling, which [`idle_poll_count`] lets tests assert;
//! - a panicking task poisons the region: queued tasks are drained and
//!   dropped, and the first captured payload is re-raised on the caller's
//!   thread once every worker has finished
//!   ([`std::panic::resume_unwind`]).
//!
//! Nested regions (a task that itself calls [`parallel_map`] or [`join`])
//! execute inline on the calling worker, so nesting composes without
//! thread explosion and without deadlock.
//!
//! ## Determinism
//!
//! All combinators preserve *submission order* when materializing
//! results: [`parallel_map`] writes each chunk's output into a dedicated
//! slot and concatenates the slots in index order, regardless of which
//! worker executed what and when. Floating-point reductions built on the
//! pool therefore produce **bitwise-identical** results at any thread
//! count — the property the distributed-vs-centralized equivalence tests
//! assert at 1, 2, and 8 threads.
//!
//! ## Sizing the pool
//!
//! The per-region worker count resolves, in order:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by
//!    tests so they can pin a count without racing each other);
//! 2. the process-wide count from [`set_num_threads`] (the `experiments`
//!    binary's `--threads N` flag lands here);
//! 3. the `EXEC_NUM_THREADS` environment variable;
//! 4. [`std::thread::available_parallelism`].

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod threads;
mod workers;

pub use pool::{
    idle_poll_count, join, parallel_map, parallel_map_result, park_count, region_entry_count,
    region_entry_nanos, region_entry_spawn_count, scope, steal_count, Scope,
};
pub use threads::{current_num_threads, in_worker, set_num_threads, with_threads};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = with_threads(4, || parallel_map((0..1000u64).collect(), |x| x * 2));
        assert_eq!(out, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = with_threads(2, || join(|| 1 + 1, || "two"));
        assert_eq!((a, b), (2, "two"));
    }
}
