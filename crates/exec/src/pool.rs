//! The work-stealing region runner: [`scope`], [`join`], and
//! [`parallel_map`].
//!
//! A *region* is a fixed family of tasks serviced by the caller's
//! thread (always worker 0) plus up to `t − 1` helpers *attached from
//! the process-lifetime worker set* (`crate::workers`) — region entry
//! publishes the region and wakes parked persistent workers instead of
//! spawning OS threads, so at steady state entering a region costs a
//! mutex hop and a condvar signal ([`region_entry_nanos`] meters it,
//! [`region_entry_spawn_count`] pins that spawning stops). A region
//! entered with one thread (or from inside another region) runs inline
//! with zero dispatch.

use crate::threads::{current_num_threads, enter_worker, in_worker};
use crate::workers;
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Tasks per worker that [`parallel_map`] aims for: small enough that an
/// uneven workload leaves chunks to steal, large enough that queue
/// traffic stays negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// Cumulative count of successful steals across all regions in this
/// process (a task taken from *another* worker's deque, not from the
/// global injector). Exposed for the pool's own tests and for ad-hoc
/// diagnostics; never used for control flow.
static STEALS: AtomicU64 = AtomicU64::new(0);

/// See [`STEALS`].
pub fn steal_count() -> u64 {
    STEALS.load(Ordering::Relaxed)
}

/// Cumulative count of condvar parks across all regions: a worker found
/// no runnable task and went to sleep on the region's condition variable
/// (instead of spinning or sleep-polling). Exposed for the pool's tests.
static PARKS: AtomicU64 = AtomicU64::new(0);

/// See [`PARKS`].
pub fn park_count() -> u64 {
    PARKS.load(Ordering::Relaxed)
}

/// Cumulative count of empty idle polls (a worker scanned every queue and
/// found nothing). With condvar parking this stays bounded by
/// O(workers) per region — the pool's no-busy-wait regression tests
/// assert it does not grow with how *long* workers sit idle.
static IDLE_POLLS: AtomicU64 = AtomicU64::new(0);

/// See [`IDLE_POLLS`].
pub fn idle_poll_count() -> u64 {
    IDLE_POLLS.load(Ordering::Relaxed)
}

/// Cumulative count of non-inline region entries (a [`scope`] that
/// dispatched helpers from the persistent worker set).
static REGION_ENTRIES: AtomicU64 = AtomicU64::new(0);

/// See [`REGION_ENTRIES`].
pub fn region_entry_count() -> u64 {
    REGION_ENTRIES.load(Ordering::Relaxed)
}

/// Cumulative count of OS threads spawned *at region entry* because the
/// persistent worker set had fewer idle workers than the region wanted.
/// At steady state this stops growing — the regression tests assert
/// that repeated region entries add zero.
static REGION_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// See [`REGION_SPAWNS`].
pub fn region_entry_spawn_count() -> u64 {
    REGION_SPAWNS.load(Ordering::Relaxed)
}

/// Cumulative nanoseconds spent *entering* regions (publishing to the
/// worker set, spawning any missing workers, waking parked ones) —
/// the latency the persistent set exists to shrink. Task execution time
/// is not included.
static REGION_ENTRY_NANOS: AtomicU64 = AtomicU64::new(0);

/// See [`REGION_ENTRY_NANOS`].
pub fn region_entry_nanos() -> u64 {
    REGION_ENTRY_NANOS.load(Ordering::Relaxed)
}

/// A queued task: boxed so heterogeneous closures share one deque. The
/// task receives the scope so it can spawn follow-up work (which lands in
/// the global injector).
type Job<'scope> = Box<dyn for<'a> FnOnce(&'a Scope<'scope>) + Send + 'scope>;

/// A parallel region accepting scoped task spawns — the pool analogue of
/// `rayon::Scope`.
///
/// Tasks spawned before the region starts (from the `scope` closure) are
/// seeded round-robin across per-worker deques; tasks spawned *by tasks*
/// go to the shared injector. Execution begins when the `scope` closure
/// returns and [`scope`] only returns once every task (including
/// recursively spawned ones) has finished.
pub struct Scope<'scope> {
    threads: usize,
    /// Inline regions (one thread, or nested inside a worker) execute
    /// tasks immediately on `spawn`.
    inline: bool,
    injector: Mutex<VecDeque<Job<'scope>>>,
    locals: Vec<Mutex<VecDeque<Job<'scope>>>>,
    /// Tasks spawned but not yet completed (or dropped by poisoning).
    outstanding: AtomicUsize,
    /// Tasks queued but not yet popped — the conservative "is there
    /// anything to run?" signal the parking protocol checks.
    queued: AtomicUsize,
    /// Round-robin cursor for seeding pre-region spawns.
    seed_cursor: AtomicUsize,
    /// Set when a task panicked: queued tasks are drained and dropped.
    poisoned: AtomicBool,
    /// First captured panic payload, re-raised after the region parks.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Parking lot for idle workers: a worker that finds no runnable task
    /// waits on this condvar; [`Scope::spawn`] unparks one worker per new
    /// task and the last completion wakes everyone so the region can
    /// exit. No idle worker ever spins or sleep-polls. The region owner
    /// also waits here for every attached helper to detach before
    /// returning.
    parking: Mutex<()>,
    wakeup: Condvar,
    /// Helpers from the persistent worker set currently servicing this
    /// region; incremented under the worker-set mutex at attach, drained
    /// to zero before [`Scope::run`] returns.
    attached: AtomicUsize,
}

impl<'scope> Scope<'scope> {
    fn new(threads: usize, inline: bool) -> Self {
        Scope {
            threads,
            inline,
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            outstanding: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            seed_cursor: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
            parking: Mutex::new(()),
            wakeup: Condvar::new(),
            attached: AtomicUsize::new(0),
        }
    }

    /// Queues `f` for execution in this region. The closure receives the
    /// scope again so it can spawn follow-up tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope>) + Send + 'scope,
    {
        if self.inline {
            f(self);
            return;
        }
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        // `queued` rises *before* the push: a racing worker that pops the
        // job immediately must never decrement the counter below zero. A
        // parker glimpsing the transient over-count merely re-polls once.
        let depth = self.queued.fetch_add(1, Ordering::SeqCst) + 1;
        submod_obs::gauge!("exec.queue_depth_peak").fetch_max(depth as u64);
        // Capture the spawner's open span so spans opened inside the task
        // nest under it no matter which worker ends up running the job.
        let parent = submod_obs::current_span();
        let job: Job<'scope> = Box::new(move |s| submod_obs::with_parent(parent, || f(s)));
        if in_worker() {
            // Spawned from inside a task: every worker may pick it up.
            self.injector.lock().expect("injector").push_back(job);
        } else {
            let w = self.seed_cursor.fetch_add(1, Ordering::Relaxed) % self.threads;
            self.locals[w].lock().expect("local deque").push_back(job);
        }
        // Unpark one idle worker. Taking the parking lock first makes the
        // wakeup race-free: a worker checks `queued` under this lock
        // before waiting, so it either sees the new task or receives the
        // notification.
        let _guard = self.parking.lock().expect("parking mutex");
        self.wakeup.notify_one();
    }

    /// Runs the region to completion: the calling thread becomes worker 0
    /// and up to `threads − 1` helpers attach from the persistent worker
    /// set — never more than the queued tasks could occupy (a two-task
    /// `join` on an 8-thread pool requests one helper, not 7), and none
    /// at all for a single-worker region.
    fn run(&self) {
        let queued = self.outstanding.load(Ordering::SeqCst);
        if queued == 0 {
            return;
        }
        let helpers = self.threads.min(queued) - 1;
        if helpers > 0 {
            let entry = Instant::now();
            let spawned = workers::dispatch(workers::RegionJob {
                scope: (self as *const Self).cast(),
                attach: attach_erased,
                run: run_erased,
                slots: helpers,
                next_index: 1,
            });
            REGION_ENTRIES.fetch_add(1, Ordering::Relaxed);
            REGION_SPAWNS.fetch_add(spawned as u64, Ordering::Relaxed);
            REGION_ENTRY_NANOS.fetch_add(entry.elapsed().as_nanos() as u64, Ordering::Relaxed);
            submod_obs::counter!("exec.region_entries").incr();
            submod_obs::counter!("exec.region_spawns").add(spawned as u64);
            submod_obs::counter!("exec.region_entry_nanos").add(entry.elapsed().as_nanos() as u64);
        }
        // Close the region even if `work` unwinds: the guard retires the
        // published job and waits out every attached helper, so no
        // persistent worker can ever touch `self` after `run` leaves —
        // by return *or* by panic. (The old `std::thread::scope` version
        // got this from the scope join.)
        let _close = RegionCloseGuard { scope: if helpers > 0 { Some(self) } else { None } };
        self.work(0);
    }

    /// Re-raises the first captured task panic, if any.
    fn rethrow(&self) {
        if let Some(payload) = self.panic.lock().expect("panic slot").take() {
            panic::resume_unwind(payload);
        }
    }

    /// One worker's service loop: own deque first, then the injector,
    /// then steal from a sibling; exit once nothing is outstanding.
    fn work(&self, me: usize) {
        let _guard = enter_worker();
        // Consecutive empty polls; drives the idle parking below.
        let mut idle_polls = 0u32;
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                self.drain();
            }
            if self.outstanding.load(Ordering::SeqCst) == 0 {
                return;
            }
            match self.next_job(me) {
                Some(job) => {
                    idle_polls = 0;
                    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| job(self))) {
                        self.panic.lock().expect("panic slot").get_or_insert(payload);
                        self.poisoned.store(true, Ordering::SeqCst);
                        self.wake_all();
                    }
                    if self.outstanding.fetch_sub(1, Ordering::SeqCst) == 1 {
                        // Last task done: wake every parked worker so the
                        // region can exit.
                        self.wake_all();
                    }
                }
                None => {
                    // Another worker still runs a task that may spawn
                    // follow-ups, so this worker cannot exit yet. Yield
                    // a few times for low-latency pickup, then park on
                    // the condvar: zero CPU until a spawn, the final
                    // completion, or a poisoning unparks us.
                    IDLE_POLLS.fetch_add(1, Ordering::Relaxed);
                    idle_polls += 1;
                    if idle_polls < 16 {
                        std::thread::yield_now();
                    } else {
                        self.park();
                    }
                }
            }
        }
    }

    /// Blocks until something changes: a task is queued or the region has
    /// nothing left outstanding. The `queued` check under the parking
    /// lock pairs with the lock acquisition in [`Scope::spawn`], so a
    /// wakeup can never be lost. Parking is deliberately allowed in a
    /// *poisoned* region too — the queues were drained before we got
    /// here, and the straggler whose completion zeroes `outstanding`
    /// performs a `wake_all`; refusing to wait would leave every idle
    /// worker hot-spinning on the queue locks for the straggler's whole
    /// runtime.
    fn park(&self) {
        let guard = self.parking.lock().expect("parking mutex");
        if self.queued.load(Ordering::SeqCst) == 0 && self.outstanding.load(Ordering::SeqCst) != 0 {
            PARKS.fetch_add(1, Ordering::Relaxed);
            submod_obs::counter!("exec.parks").incr();
            drop(self.wakeup.wait(guard).expect("parking condvar"));
        }
    }

    /// Wakes every parked worker (region exit or poisoning).
    fn wake_all(&self) {
        let _guard = self.parking.lock().expect("parking mutex");
        self.wakeup.notify_all();
    }

    fn next_job(&self, me: usize) -> Option<Job<'scope>> {
        if let Some(job) = self.locals[me].lock().expect("local deque").pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        if let Some(job) = self.injector.lock().expect("injector").pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for offset in 1..self.threads {
            let victim = (me + offset) % self.threads;
            if let Some(job) = self.locals[victim].lock().expect("victim deque").pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                STEALS.fetch_add(1, Ordering::Relaxed);
                submod_obs::counter!("exec.steals").incr();
                return Some(job);
            }
        }
        None
    }

    /// Drops every queued task after a poisoning panic.
    fn drain(&self) {
        let mut dropped = 0usize;
        for queue in self.locals.iter().chain(std::iter::once(&self.injector)) {
            let mut queue = queue.lock().expect("drain queue");
            dropped += queue.len();
            queue.clear();
        }
        if dropped > 0 {
            self.queued.fetch_sub(dropped, Ordering::SeqCst);
            if self.outstanding.fetch_sub(dropped, Ordering::SeqCst) == dropped {
                self.wake_all();
            }
        }
    }
}

/// Closes a published region on scope exit, unwinding included:
/// withdraws unclaimed helper slots from the worker set, then blocks
/// until every attached helper has detached. Dropping this is the
/// soundness linchpin of the persistent-worker design — only after it
/// runs may the `Scope` (and the borrows its tasks hold) die.
struct RegionCloseGuard<'a, 'scope> {
    scope: Option<&'a Scope<'scope>>,
}

impl Drop for RegionCloseGuard<'_, '_> {
    fn drop(&mut self) {
        let Some(scope) = self.scope else { return };
        workers::retire((scope as *const Scope<'_>).cast());
        let mut guard = scope.parking.lock().expect("parking mutex");
        while scope.attached.load(Ordering::SeqCst) > 0 {
            guard = scope.wakeup.wait(guard).expect("parking condvar");
        }
    }
}

/// Erased attach hook for the persistent worker set: bumps the region's
/// attached count. Invoked under the worker-set mutex, before
/// `workers::retire` could have withdrawn the job.
#[allow(unsafe_code)]
unsafe fn attach_erased(scope: *const ()) {
    // SAFETY: `scope` was published by `Scope::run`, which is still
    // blocked inside the region (it retires the job and waits for
    // attached == 0 before returning), so the reference is live. The
    // lifetime parameter is erased to 'static, which is sound because
    // no access outlives that wait; layout is lifetime-independent.
    let scope = unsafe { &*scope.cast::<Scope<'static>>() };
    scope.attached.fetch_add(1, Ordering::SeqCst);
}

/// Erased worker body for the persistent worker set: service the region
/// like a scoped thread used to, then detach. Any panic escaping the
/// service loop itself (task panics are already caught inside
/// [`Scope::work`]) is captured and re-raised on the region owner's
/// thread, and the detach still happens so the owner never deadlocks.
#[allow(unsafe_code)]
unsafe fn run_erased(scope: *const (), index: usize) {
    // SAFETY: as in `attach_erased`; additionally this worker attached,
    // so the owner's exit wait covers the whole body of this function.
    let scope = unsafe { &*scope.cast::<Scope<'static>>() };
    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| scope.work(index))) {
        scope.panic.lock().expect("panic slot").get_or_insert(payload);
        scope.poisoned.store(true, Ordering::SeqCst);
    }
    // Detach: return to the worker set's availability count *first*
    // (so a back-to-back region sees this worker as free), then
    // decrement under the parking lock and wake the owner (and anyone
    // parked). After the unlock the worker never touches `scope`.
    workers::mark_available();
    let _guard = scope.parking.lock().expect("parking mutex");
    scope.attached.fetch_sub(1, Ordering::SeqCst);
    scope.wakeup.notify_all();
}

/// Creates a parallel region, hands it to `f` for task spawning, runs
/// every spawned task to completion, and returns `f`'s result.
///
/// Tasks may borrow from the caller's stack — the region is serviced by
/// the caller plus helpers attached from the process-lifetime worker
/// set, and this function does not return until every attached helper
/// has detached — and may spawn further tasks through the scope
/// reference they receive. If any task panics, remaining queued tasks
/// are dropped and the first panic payload is re-raised here.
///
/// ```
/// let counter = std::sync::atomic::AtomicUsize::new(0);
/// submod_exec::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|_| {
///             counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
///         });
///     }
/// });
/// assert_eq!(counter.into_inner(), 4);
/// ```
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let threads = current_num_threads().max(1);
    let inline = threads == 1 || in_worker();
    let sc = Scope::new(threads, inline);
    let out = f(&sc);
    if !inline {
        sc.run();
        sc.rethrow();
    }
    out
}

/// Runs `a` and `b`, potentially in parallel, and returns both results —
/// the pool analogue of `rayon::join`. Inside a worker (nested use) both
/// closures run inline on the current thread, in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || in_worker() {
        return (a(), b());
    }
    let slot_a: Mutex<Option<RA>> = Mutex::new(None);
    let slot_b: Mutex<Option<RB>> = Mutex::new(None);
    scope(|s| {
        s.spawn(|_| *slot_a.lock().expect("join slot a") = Some(a()));
        s.spawn(|_| *slot_b.lock().expect("join slot b") = Some(b()));
    });
    (
        slot_a.into_inner().expect("join slot a").expect("join task a completed"),
        slot_b.into_inner().expect("join slot b").expect("join task b completed"),
    )
}

/// Applies `f` to every item on the pool and returns the results **in
/// input order**, regardless of scheduling — the deterministic-reduction
/// primitive everything else builds on.
///
/// Items are split into at most `threads × 4` contiguous chunks; each
/// chunk writes its output into a dedicated slot and the slots are
/// concatenated in chunk order, so the output (including any
/// floating-point reduction applied to it afterwards) is bitwise
/// independent of the thread count.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    // Fault-plan hook: `SUBMOD_FAULTS=panic` fires its one seeded panic
    // here, at region entry, where the pool's unwind plumbing must carry
    // it back to the caller intact on every thread count.
    submod_obs::faults::inject_panic(submod_obs::faults::FaultSite::ExecRegion);
    let threads = current_num_threads().max(1);
    if threads == 1 || in_worker() || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk_count = (threads * CHUNKS_PER_WORKER).min(n).max(1);
    let chunk_size = n.div_ceil(chunk_count);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(chunk_count);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    let f = &f;
    scope(|s| {
        for (slot, chunk) in slots.iter().zip(chunks) {
            s.spawn(move |_| {
                let out: Vec<R> = chunk.into_iter().map(f).collect();
                *slot.lock().expect("result slot") = Some(out);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(slot.into_inner().expect("slot mutex").expect("chunk completed"));
    }
    out
}

/// [`parallel_map`] for fallible work: every item is attempted, then the
/// first error **in input order** is returned (deterministic at any
/// thread count, unlike a first-to-fail race).
///
/// # Errors
///
/// Returns the error of the lowest-indexed item whose closure failed.
pub fn parallel_map_result<T, R, E, F>(items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    parallel_map(items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;

    #[test]
    fn inline_region_runs_on_spawn() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        with_threads(1, || {
            let hits = AtomicUsize::new(0);
            scope(|s| {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
                // Inline spawns execute immediately, in order.
                assert_eq!(hits.load(Ordering::SeqCst), 1);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
            assert_eq!(hits.into_inner(), 2);
        });
    }

    #[test]
    fn empty_scope_is_a_no_op() {
        with_threads(8, || scope(|_| {}));
    }

    #[test]
    fn parallel_map_result_returns_first_error_by_index() {
        let out: Result<Vec<u32>, String> = with_threads(4, || {
            parallel_map_result((0u32..100).collect(), |x| {
                if x % 30 == 7 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
        });
        assert_eq!(out.unwrap_err(), "bad 7");
    }
}
