//! The work-stealing region runner: [`scope`], [`join`], and
//! [`parallel_map`].
//!
//! A *region* is one `std::thread::scope` worth of workers servicing a
//! fixed family of tasks. The caller's thread always participates as
//! worker 0, so a region with `t` threads spawns only `t − 1` OS
//! threads, and a region entered with one thread (or from inside another
//! region) runs inline with zero spawns.

use crate::threads::{current_num_threads, enter_worker, in_worker};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tasks per worker that [`parallel_map`] aims for: small enough that an
/// uneven workload leaves chunks to steal, large enough that queue
/// traffic stays negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// Cumulative count of successful steals across all regions in this
/// process (a task taken from *another* worker's deque, not from the
/// global injector). Exposed for the pool's own tests and for ad-hoc
/// diagnostics; never used for control flow.
static STEALS: AtomicU64 = AtomicU64::new(0);

/// See [`STEALS`].
pub fn steal_count() -> u64 {
    STEALS.load(Ordering::Relaxed)
}

/// A queued task: boxed so heterogeneous closures share one deque. The
/// task receives the scope so it can spawn follow-up work (which lands in
/// the global injector).
type Job<'scope> = Box<dyn for<'a> FnOnce(&'a Scope<'scope>) + Send + 'scope>;

/// A parallel region accepting scoped task spawns — the pool analogue of
/// `rayon::Scope`.
///
/// Tasks spawned before the region starts (from the `scope` closure) are
/// seeded round-robin across per-worker deques; tasks spawned *by tasks*
/// go to the shared injector. Execution begins when the `scope` closure
/// returns and [`scope`] only returns once every task (including
/// recursively spawned ones) has finished.
pub struct Scope<'scope> {
    threads: usize,
    /// Inline regions (one thread, or nested inside a worker) execute
    /// tasks immediately on `spawn`.
    inline: bool,
    injector: Mutex<VecDeque<Job<'scope>>>,
    locals: Vec<Mutex<VecDeque<Job<'scope>>>>,
    /// Tasks spawned but not yet completed (or dropped by poisoning).
    outstanding: AtomicUsize,
    /// Round-robin cursor for seeding pre-region spawns.
    seed_cursor: AtomicUsize,
    /// Set when a task panicked: queued tasks are drained and dropped.
    poisoned: AtomicBool,
    /// First captured panic payload, re-raised after the region parks.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl<'scope> Scope<'scope> {
    fn new(threads: usize, inline: bool) -> Self {
        Scope {
            threads,
            inline,
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            outstanding: AtomicUsize::new(0),
            seed_cursor: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }

    /// Queues `f` for execution in this region. The closure receives the
    /// scope again so it can spawn follow-up tasks.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope>) + Send + 'scope,
    {
        if self.inline {
            f(self);
            return;
        }
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let job: Job<'scope> = Box::new(f);
        if in_worker() {
            // Spawned from inside a task: every worker may pick it up.
            self.injector.lock().expect("injector").push_back(job);
        } else {
            let w = self.seed_cursor.fetch_add(1, Ordering::Relaxed) % self.threads;
            self.locals[w].lock().expect("local deque").push_back(job);
        }
    }

    /// Runs the region to completion: the calling thread becomes worker 0
    /// and scoped OS threads are spawned alongside it — at most
    /// `threads − 1`, and never more than the queued tasks could occupy
    /// (a two-task `join` on an 8-thread pool spawns one thread, not 7).
    fn run(&self) {
        let queued = self.outstanding.load(Ordering::SeqCst);
        if queued == 0 {
            return;
        }
        let workers = self.threads.min(queued);
        std::thread::scope(|ts| {
            for w in 1..workers {
                ts.spawn(move || self.work(w));
            }
            self.work(0);
        });
    }

    /// Re-raises the first captured task panic, if any.
    fn rethrow(&self) {
        if let Some(payload) = self.panic.lock().expect("panic slot").take() {
            panic::resume_unwind(payload);
        }
    }

    /// One worker's service loop: own deque first, then the injector,
    /// then steal from a sibling; exit once nothing is outstanding.
    fn work(&self, me: usize) {
        let _guard = enter_worker();
        // Consecutive empty polls; drives the idle backoff below.
        let mut idle_polls = 0u32;
        loop {
            if self.poisoned.load(Ordering::SeqCst) {
                self.drain();
            }
            if self.outstanding.load(Ordering::SeqCst) == 0 {
                return;
            }
            match self.next_job(me) {
                Some(job) => {
                    idle_polls = 0;
                    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| job(self))) {
                        self.panic.lock().expect("panic slot").get_or_insert(payload);
                        self.poisoned.store(true, Ordering::SeqCst);
                    }
                    self.outstanding.fetch_sub(1, Ordering::SeqCst);
                }
                None => {
                    // Another worker still runs a task that may spawn
                    // follow-ups, so this worker cannot exit yet. Yield
                    // a few times for low-latency pickup, then back off
                    // to short sleeps so a long-tail task does not pin
                    // every idle worker at 100 % CPU.
                    idle_polls += 1;
                    if idle_polls < 16 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                }
            }
        }
    }

    fn next_job(&self, me: usize) -> Option<Job<'scope>> {
        if let Some(job) = self.locals[me].lock().expect("local deque").pop_front() {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().expect("injector").pop_front() {
            return Some(job);
        }
        for offset in 1..self.threads {
            let victim = (me + offset) % self.threads;
            if let Some(job) = self.locals[victim].lock().expect("victim deque").pop_back() {
                STEALS.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Drops every queued task after a poisoning panic.
    fn drain(&self) {
        let mut dropped = 0usize;
        for queue in self.locals.iter().chain(std::iter::once(&self.injector)) {
            let mut queue = queue.lock().expect("drain queue");
            dropped += queue.len();
            queue.clear();
        }
        if dropped > 0 {
            self.outstanding.fetch_sub(dropped, Ordering::SeqCst);
        }
    }
}

/// Creates a parallel region, hands it to `f` for task spawning, runs
/// every spawned task to completion, and returns `f`'s result.
///
/// Tasks may borrow from the caller's stack (the region is serviced with
/// `std::thread::scope`) and may spawn further tasks through the scope
/// reference they receive. If any task panics, remaining queued tasks are
/// dropped and the first panic payload is re-raised here.
///
/// ```
/// let counter = std::sync::atomic::AtomicUsize::new(0);
/// submod_exec::scope(|s| {
///     for _ in 0..4 {
///         s.spawn(|_| {
///             counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
///         });
///     }
/// });
/// assert_eq!(counter.into_inner(), 4);
/// ```
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let threads = current_num_threads().max(1);
    let inline = threads == 1 || in_worker();
    let sc = Scope::new(threads, inline);
    let out = f(&sc);
    if !inline {
        sc.run();
        sc.rethrow();
    }
    out
}

/// Runs `a` and `b`, potentially in parallel, and returns both results —
/// the pool analogue of `rayon::join`. Inside a worker (nested use) both
/// closures run inline on the current thread, in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 || in_worker() {
        return (a(), b());
    }
    let slot_a: Mutex<Option<RA>> = Mutex::new(None);
    let slot_b: Mutex<Option<RB>> = Mutex::new(None);
    scope(|s| {
        s.spawn(|_| *slot_a.lock().expect("join slot a") = Some(a()));
        s.spawn(|_| *slot_b.lock().expect("join slot b") = Some(b()));
    });
    (
        slot_a.into_inner().expect("join slot a").expect("join task a completed"),
        slot_b.into_inner().expect("join slot b").expect("join task b completed"),
    )
}

/// Applies `f` to every item on the pool and returns the results **in
/// input order**, regardless of scheduling — the deterministic-reduction
/// primitive everything else builds on.
///
/// Items are split into at most `threads × 4` contiguous chunks; each
/// chunk writes its output into a dedicated slot and the slots are
/// concatenated in chunk order, so the output (including any
/// floating-point reduction applied to it afterwards) is bitwise
/// independent of the thread count.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads().max(1);
    if threads == 1 || in_worker() || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let chunk_count = (threads * CHUNKS_PER_WORKER).min(n).max(1);
    let chunk_size = n.div_ceil(chunk_count);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(chunk_count);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let slots: Vec<Mutex<Option<Vec<R>>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    let f = &f;
    scope(|s| {
        for (slot, chunk) in slots.iter().zip(chunks) {
            s.spawn(move |_| {
                let out: Vec<R> = chunk.into_iter().map(f).collect();
                *slot.lock().expect("result slot") = Some(out);
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(slot.into_inner().expect("slot mutex").expect("chunk completed"));
    }
    out
}

/// [`parallel_map`] for fallible work: every item is attempted, then the
/// first error **in input order** is returned (deterministic at any
/// thread count, unlike a first-to-fail race).
///
/// # Errors
///
/// Returns the error of the lowest-indexed item whose closure failed.
pub fn parallel_map_result<T, R, E, F>(items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    parallel_map(items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;

    #[test]
    fn inline_region_runs_on_spawn() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        with_threads(1, || {
            let hits = AtomicUsize::new(0);
            scope(|s| {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
                // Inline spawns execute immediately, in order.
                assert_eq!(hits.load(Ordering::SeqCst), 1);
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
            assert_eq!(hits.into_inner(), 2);
        });
    }

    #[test]
    fn empty_scope_is_a_no_op() {
        with_threads(8, || scope(|_| {}));
    }

    #[test]
    fn parallel_map_result_returns_first_error_by_index() {
        let out: Result<Vec<u32>, String> = with_threads(4, || {
            parallel_map_result((0u32..100).collect(), |x| {
                if x % 30 == 7 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
        });
        assert_eq!(out.unwrap_err(), "bad 7");
    }
}
