//! Thread-count resolution and worker-context tracking.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Process-wide worker count; `0` means "not set, fall back to the
/// environment".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// `EXEC_NUM_THREADS`, parsed once.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    /// Per-thread override installed by [`with_threads`]; `0` = unset.
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Whether the current thread is executing inside a pool region.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("EXEC_NUM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
    })
}

/// Detected hardware parallelism, probed once. `available_parallelism`
/// re-reads the cgroup quota files on every call on Linux — microseconds
/// of file I/O that used to land on every region entry of every engine
/// pass.
static DETECTED_THREADS: OnceLock<usize> = OnceLock::new();

fn detected_threads() -> usize {
    *DETECTED_THREADS
        .get_or_init(|| std::thread::available_parallelism().map(usize::from).unwrap_or(1))
}

/// The worker count the *next* parallel region entered from this thread
/// will use. See the crate docs for the resolution order.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(Cell::get);
    if local > 0 {
        return local;
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    env_threads().unwrap_or_else(detected_threads)
}

/// Sets the process-wide worker count (`0` resets to the
/// `EXEC_NUM_THREADS` / auto-detection fallback). This is what the
/// `experiments` binary's `--threads N` flag calls.
pub fn set_num_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// Runs `f` with the worker count pinned to `threads` on this thread
/// only. Scoped and re-entrant, so concurrently running tests can each
/// pin their own count without racing on process state.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let previous = LOCAL_THREADS.with(|c| c.replace(threads.max(1)));
    let _restore = Restore(previous);
    f()
}

/// Whether the current thread is executing a pool task. Parallel
/// combinators invoked from inside a task run inline (sequentially) so
/// nesting cannot deadlock or oversubscribe the machine.
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Marks the current thread as a pool worker for the guard's lifetime.
pub(crate) fn enter_worker() -> WorkerGuard {
    let previous = IN_WORKER.with(|c| c.replace(true));
    WorkerGuard { previous }
}

/// Restores the previous worker flag on drop.
pub(crate) struct WorkerGuard {
    previous: bool,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        IN_WORKER.with(|c| c.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_overrides_and_restores() {
        let baseline = current_num_threads();
        let inside = with_threads(7, current_num_threads);
        assert_eq!(inside, 7);
        assert_eq!(current_num_threads(), baseline);
    }

    #[test]
    fn with_threads_nests() {
        with_threads(4, || {
            assert_eq!(current_num_threads(), 4);
            with_threads(2, || assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 4);
        });
    }

    #[test]
    fn with_threads_clamps_zero_to_one() {
        assert_eq!(with_threads(0, current_num_threads), 1);
    }

    #[test]
    fn worker_guard_restores_flag() {
        assert!(!in_worker());
        {
            let _guard = enter_worker();
            assert!(in_worker());
        }
        assert!(!in_worker());
    }
}
