//! Persistent-worker regression gate. This file intentionally holds one
//! test: it asserts about the process-wide worker set's spawn counter,
//! so nothing else may enter regions concurrently (integration test
//! files run as their own process, and a single `#[test]` cannot race
//! itself).

use submod_exec::{
    parallel_map, region_entry_count, region_entry_nanos, region_entry_spawn_count, with_threads,
};

/// The headline property: once the worker set has grown to a region
/// width, further region entries at that width spawn **zero** OS
/// threads — `scope` no longer pays thread creation per entry. Widening
/// past the high-water mark spawns only the shortfall, exactly once.
#[test]
fn steady_state_region_entries_spawn_no_threads() {
    with_threads(4, || {
        // Warm-up: the first wide region may spawn up to 3 helpers.
        let out = parallel_map((0..64u32).collect(), |x| x * 2);
        assert_eq!(out.len(), 64);
        let spawns_at_steady_state = region_entry_spawn_count();
        let entries_before = region_entry_count();
        let nanos_before = region_entry_nanos();
        for round in 0..100 {
            let out = parallel_map((0..64u32).collect(), |x| x + round);
            assert_eq!(out[0], round);
        }
        assert!(region_entry_count() >= entries_before + 100, "region entries were not counted");
        assert_eq!(
            region_entry_spawn_count(),
            spawns_at_steady_state,
            "steady-state region entries spawned OS threads"
        );
        // The latency counter meters every entry (it can only grow, and
        // it must have grown over 100 dispatches).
        assert!(region_entry_nanos() > nanos_before, "entry latency went unmetered");
    });

    // Widening a region beyond anything seen before spawns only the
    // shortfall — and re-entering at the new width is free again.
    let before = region_entry_spawn_count();
    with_threads(6, || {
        parallel_map((0..32u32).collect(), |x| x);
        let grown = region_entry_spawn_count();
        assert!(grown <= before + 5, "spawned more than the 5-helper shortfall");
        parallel_map((0..32u32).collect(), |x| x);
        assert_eq!(region_entry_spawn_count(), grown, "re-entry at known width spawned");
    });
}
