//! Pool behavior tests: work stealing, panic propagation, nested
//! regions, and determinism across thread counts.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};
use submod_exec::{
    idle_poll_count, join, parallel_map, park_count, scope, steal_count, with_threads,
};

/// Spins until `predicate` holds, failing the test after 30 s — long
/// enough for any scheduler hiccup, short enough to catch a lost-task
/// deadlock without hanging CI.
fn wait_until(what: &str, predicate: impl Fn() -> bool) {
    let start = Instant::now();
    while !predicate() {
        assert!(start.elapsed() < Duration::from_secs(30), "timed out waiting for {what}");
        thread::yield_now();
    }
}

#[test]
fn work_is_stolen_from_a_blocked_workers_deque() {
    with_threads(2, || {
        // Eight single-item chunks seed round-robin onto two workers.
        // Chunk 0 (worker 0) blocks until every other chunk has run, so
        // worker 0's remaining chunks (2, 4, 6) can only complete if
        // worker 1 steals them — otherwise this test times out.
        let done = AtomicUsize::new(0);
        let steals_before = steal_count();
        let out = parallel_map((0..8usize).collect(), |i| {
            if i == 0 {
                wait_until("the other 7 tasks (work stealing)", || {
                    done.load(Ordering::SeqCst) == 7
                });
            } else {
                done.fetch_add(1, Ordering::SeqCst);
            }
            i * 10
        });
        assert_eq!(out, (0..8).map(|i| i * 10).collect::<Vec<_>>());
        assert!(steal_count() > steals_before, "completion required at least one steal");
    });
}

#[test]
fn two_workers_really_run_concurrently() {
    with_threads(2, || {
        // A two-way rendezvous: each task waits for the other's arrival.
        // Sequential execution of either order would time out.
        let arrived = AtomicUsize::new(0);
        parallel_map(vec![0, 1], |_| {
            arrived.fetch_add(1, Ordering::SeqCst);
            wait_until("both tasks to arrive", || arrived.load(Ordering::SeqCst) == 2);
        });
    });
}

#[test]
fn panic_propagates_with_payload() {
    let result = std::panic::catch_unwind(|| {
        with_threads(4, || {
            parallel_map((0..64u32).collect(), |x| {
                assert!(x != 23, "injected failure at {x}");
                x
            })
        })
    });
    let payload = result.expect_err("panic must cross the pool boundary");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("string payload");
    assert!(message.contains("injected failure at 23"), "unexpected payload: {message}");
}

#[test]
fn panics_inside_nested_regions_propagate() {
    let result = std::panic::catch_unwind(|| {
        with_threads(4, || {
            parallel_map(vec![1, 2], |x| {
                // Nested map runs inline on the worker; its panic must
                // still surface at the outer call site.
                parallel_map(vec![x], |y| assert!(y != 2, "nested boom"));
            })
        })
    });
    assert!(result.is_err(), "nested panic swallowed");
}

#[test]
fn nested_joins_compute_all_leaves() {
    let out = with_threads(4, || join(|| join(|| 1, || 2), || join(|| 3, || join(|| 4, || 5))));
    assert_eq!(out, ((1, 2), (3, (4, 5))));
}

#[test]
fn tasks_can_spawn_follow_up_tasks() {
    with_threads(2, || {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                hits.fetch_add(1, Ordering::SeqCst);
                // Lands in the global injector; the scope must not park
                // before it runs.
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(hits.into_inner(), 2);
    });
}

#[test]
fn multiple_os_threads_participate() {
    let ids = Mutex::new(HashSet::new());
    with_threads(4, || {
        parallel_map((0..64usize).collect(), |i| {
            // A tiny stall so no single worker can drain the queue alone.
            thread::sleep(Duration::from_millis(1));
            ids.lock().unwrap().insert(thread::current().id());
            i
        })
    });
    assert!(ids.into_inner().unwrap().len() > 1, "all chunks ran on one thread");
}

#[test]
fn results_are_identical_across_thread_counts() {
    // Element-wise float work whose order of *combination* downstream
    // must not depend on the thread count.
    let input: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 1e-3 + i as f64).collect();
    let reference: Vec<u64> =
        with_threads(1, || parallel_map(input.clone(), |x| (x.sqrt() * 1e6).to_bits()));
    for threads in [2, 3, 8] {
        let got =
            with_threads(threads, || parallel_map(input.clone(), |x| (x.sqrt() * 1e6).to_bits()));
        assert_eq!(got, reference, "thread count {threads} changed results");
    }
}

#[test]
fn idle_workers_park_on_the_condvar() {
    with_threads(4, || {
        let parks_before = park_count();
        // One straggler holds the region open while the other three
        // workers run dry: they must end up parked, not polling.
        parallel_map((0..4usize).collect(), |i| {
            if i == 0 {
                thread::sleep(Duration::from_millis(200));
            }
            i
        });
        assert!(park_count() > parks_before, "idle workers never parked");
    });
}

/// The no-busy-wait regression gate: while a straggler keeps a region
/// open, idle workers must be *asleep on the condvar*, not polling the
/// queues. The old 100 µs sleep backoff would re-scan the queues ~10 000
/// times per second per idle worker (≈ 9 000 polls during this test);
/// parked workers poll O(1) times per idle episode regardless of how
/// long it lasts.
#[test]
fn idle_workers_do_not_poll_while_parked() {
    with_threads(4, || {
        let polls_before = idle_poll_count();
        parallel_map((0..4usize).collect(), |i| {
            if i == 0 {
                thread::sleep(Duration::from_millis(300));
            }
            i
        });
        let polls = idle_poll_count() - polls_before;
        // 3 idle workers × (16 yields + a few park/wake cycles), plus
        // slack for concurrently running tests that share the global
        // counter. Sleep-polling at 100 µs would alone contribute ~9 000.
        assert!(polls < 2_000, "idle workers polled {polls} times — busy-wait regression");
    });
}

#[test]
fn parked_workers_wake_for_late_spawned_tasks() {
    with_threads(4, || {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                // By the time this follow-up is spawned the other three
                // workers have long parked; the spawn must unpark one or
                // the region deadlocks (the 30 s harness catches that).
                thread::sleep(Duration::from_millis(150));
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.into_inner(), 2);
    });
}

#[test]
fn borrowed_state_is_usable_from_tasks() {
    // The whole point of scoped spawning: tasks borrow the caller's
    // stack without `Arc` or `'static`.
    let data: Vec<u64> = (0..1000).collect();
    let total: u64 = with_threads(4, || {
        parallel_map((0..10usize).collect(), |c| data[c * 100..(c + 1) * 100].iter().sum::<u64>())
    })
    .into_iter()
    .sum();
    assert_eq!(total, 1000 * 999 / 2);
}
