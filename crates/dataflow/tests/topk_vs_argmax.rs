//! Pins the kernel `TopK` pop order to the dataflow argmax contract.
//!
//! `submod_kernels::TopK` and [`submod_dataflow::argmax_prefers`] are two
//! implementations of one documented order — higher score first, score
//! ties (including `-0.0` vs `+0.0`, which compare *equal*) toward the
//! smaller id, NaN excluded at the boundary. The k-NN search paths rank
//! with the heap while the distributed drivers rank with the argmax, so
//! any divergence (a NaN swallowed as a tie, or a `total_cmp` that ranks
//! `-0.0` below `+0.0`) silently breaks the cross-driver determinism
//! contract. The proptest feeds both sides adversarial scores — signed
//! zeros, exact duplicates, extremes — and demands identical output.

use proptest::prelude::*;
use submod_dataflow::argmax_prefers;
use submod_kernels::TopK;

/// Reference top-k: repeated argmax over the remaining offers using
/// `argmax_prefers` verbatim (`f32` scores widen to `f64` losslessly, so
/// `>` / `==` behave identically in both widths).
fn argmax_topk(offers: &[(u32, f32)], k: usize) -> Vec<(u32, f32)> {
    let mut remaining: Vec<(u64, f64, usize)> = offers
        .iter()
        .enumerate()
        .map(|(pos, &(id, score))| (u64::from(id), f64::from(score), pos))
        .collect();
    let mut result = Vec::new();
    while result.len() < k && !remaining.is_empty() {
        let mut best = 0;
        for i in 1..remaining.len() {
            let (bid, bscore, _) = remaining[best];
            let (cid, cscore, _) = remaining[i];
            if argmax_prefers((bid, bscore), (cid, cscore)) {
                best = i;
            }
        }
        let (_, _, pos) = remaining.swap_remove(best);
        result.push(offers[pos]);
    }
    result
}

/// Scores chosen to stress every edge of the order: both signed zeros,
/// exact duplicates from a tiny set, subnormals, and extremes (a picker
/// index maps onto the fixed palette; the last arm draws a fresh float).
fn adversarial_score() -> impl Strategy<Value = f32> {
    ((0u8..10), -1.0f32..1.0f32).prop_map(|(pick, fresh)| match pick {
        0 => 0.0,
        1 => -0.0,
        2 => 1.0,
        3 => -1.0,
        4 => 0.5,
        5 => f32::MAX,
        6 => f32::MIN_POSITIVE,
        7 => -f32::MIN_POSITIVE,
        8 => f32::MIN,
        _ => fresh,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The heap's drained order equals repeated `argmax_prefers`
    /// selection, value bits included, on duplicate-heavy inputs with a
    /// tiny id range (maximal tie pressure).
    #[test]
    fn topk_matches_argmax_reference(
        offers in proptest::collection::vec((0u32..16, adversarial_score()), 0..48),
        k in 0usize..12,
    ) {
        let mut top = TopK::new(k);
        for &(id, score) in &offers {
            top.offer(id, score);
        }
        let heap_order = top.into_sorted();
        let reference = argmax_topk(&offers, k);
        prop_assert_eq!(heap_order.len(), reference.len());
        for (h, r) in heap_order.iter().zip(reference.iter()) {
            prop_assert_eq!(h.0, r.0, "ids diverge: heap {:?} vs argmax {:?}", heap_order, reference);
            // Contract equality on the score: `==`, under which -0.0 and
            // +0.0 are the same value. Two offers with equal id AND equal
            // score are interchangeable under the contract, so the zero
            // sign bit may legitimately differ between implementations;
            // every other f32 value has a unique bit pattern, so this is
            // bit-exact everywhere the contract distinguishes entries.
            prop_assert_eq!(
                h.1, r.1,
                "scores diverge: heap {:?} vs argmax {:?}", heap_order, reference
            );
        }
    }
}

#[test]
fn signed_zeros_tie_toward_the_smaller_id() {
    // -0.0 == +0.0 under the contract: the id decides, not the sign bit.
    let mut top = TopK::new(1);
    top.offer(7, 0.0);
    top.offer(3, -0.0);
    let kept = top.into_sorted();
    assert_eq!(kept.len(), 1);
    assert_eq!(kept[0].0, 3, "smaller id must win the ±0.0 tie");

    let mut both = TopK::new(2);
    both.offer(7, 0.0);
    both.offer(3, -0.0);
    let ids: Vec<u32> = both.into_sorted().iter().map(|&(id, _)| id).collect();
    assert_eq!(ids, vec![3, 7], "±0.0 entries must sort by id");

    assert!(argmax_prefers((7, 0.0), (3, -0.0)));
    assert!(!argmax_prefers((3, -0.0), (7, 0.0)));
}

#[test]
#[should_panic(expected = "must not be NaN")]
fn nan_offers_are_rejected_at_the_boundary() {
    let mut top = TopK::new(4);
    top.offer(0, f32::NAN);
}
