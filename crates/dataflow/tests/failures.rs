//! Failure injection: the engine must surface I/O and codec corruption as
//! errors instead of silently corrupting results.

use std::fs;
use submod_dataflow::{DataflowError, MemoryBudget, Pipeline};

/// Creates a pipeline whose spill files live in a directory we control.
///
/// Fusion is disabled so transforms materialize (and spill) eagerly —
/// these tests inject corruption between a transform and its read-back,
/// which requires the spill files to exist up front. The fused read path
/// is covered by `fused_chain_surfaces_spill_errors` below.
fn pipeline_with_spill_dir(tag: &str) -> (Pipeline, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("submod-failure-{}-{tag}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let pipeline = Pipeline::builder()
        .workers(2)
        .memory_budget(MemoryBudget::bytes(256))
        .spill_dir(&dir)
        .fusion(false)
        .build()
        .unwrap();
    (pipeline, dir)
}

/// Finds every spill file under the pipeline's unique spill directory.
fn spill_files(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir).unwrap().flatten() {
        if entry.path().is_dir() {
            out.extend(spill_files(&entry.path()));
        } else if entry.path().extension().is_some_and(|e| e == "bin") {
            out.push(entry.path());
        }
    }
    out
}

#[test]
fn truncated_spill_file_is_reported() {
    let (pipeline, dir) = pipeline_with_spill_dir("truncate");
    let pc = pipeline.from_vec((0u64..2000).collect()).map(|x| x).unwrap();
    let files = spill_files(&dir);
    assert!(!files.is_empty(), "tiny budget must have spilled");
    // Chop every spill file in half: reads must fail, not fabricate data.
    for f in &files {
        let data = fs::read(f).unwrap();
        fs::write(f, &data[..data.len() / 2]).unwrap();
    }
    let err = pc.collect().unwrap_err();
    assert!(matches!(err, DataflowError::Io { .. } | DataflowError::Codec { .. }), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn garbage_spill_content_is_reported() {
    let (pipeline, dir) = pipeline_with_spill_dir("garbage");
    let pc = pipeline
        .from_vec((0u64..2000).map(|i| (i, format!("value-{i}"))).collect::<Vec<_>>())
        .map(|x| x)
        .unwrap();
    let files = spill_files(&dir);
    assert!(!files.is_empty());
    for f in &files {
        let len = fs::metadata(f).unwrap().len() as usize;
        // Keep the length, destroy the contents: framing reads a bogus
        // record length or the string codec hits invalid UTF-8.
        fs::write(f, vec![0xFFu8; len]).unwrap();
    }
    let err = pc.collect().unwrap_err();
    assert!(matches!(err, DataflowError::Io { .. } | DataflowError::Codec { .. }), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn deleted_spill_file_is_reported() {
    let (pipeline, dir) = pipeline_with_spill_dir("delete");
    let pc = pipeline.from_vec((0u64..2000).collect()).map(|x| x + 1).unwrap();
    for f in spill_files(&dir) {
        fs::remove_file(f).unwrap();
    }
    let err = pc.collect().unwrap_err();
    assert!(matches!(err, DataflowError::Io { .. }), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn errors_propagate_through_downstream_transforms() {
    let (pipeline, dir) = pipeline_with_spill_dir("downstream");
    let pc = pipeline.from_vec((0u64..2000).collect()).map(|x| x).unwrap();
    for f in spill_files(&dir) {
        fs::remove_file(f).unwrap();
    }
    // A transform over the broken collection fails too (not just collect).
    assert!(pc.filter(|_| true).is_err());
    assert!(pc.map(|x| x).is_err());
    let grouped = pc.map(|x| (x % 10, x)).and_then(|kv| kv.group_by_key());
    assert!(grouped.is_err());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fused_chain_surfaces_spill_errors() {
    // With fusion on, a deferred chain streams source shards at the
    // barrier — corruption of a spilled *source* must still surface as an
    // error from the barrier, not from the (deferred) transform calls.
    let dir = std::env::temp_dir().join(format!("submod-failure-{}-fused", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let pipeline = Pipeline::builder()
        .workers(2)
        .memory_budget(MemoryBudget::bytes(256))
        .spill_dir(&dir)
        .fusion(true)
        .build()
        .unwrap();
    let source = pipeline.generate(2000u64, |i| i).unwrap();
    let files = spill_files(&dir);
    assert!(!files.is_empty(), "tiny budget must have spilled the source");
    for f in &files {
        let data = fs::read(f).unwrap();
        fs::write(f, &data[..data.len() / 2]).unwrap();
    }
    // Deferred transforms succeed (nothing executes yet)...
    let chained = source.map(|x| x + 1).unwrap().filter(|&x| x > 0).unwrap();
    // ...but the barrier reads the truncated files and reports it.
    let err = chained.collect().unwrap_err();
    assert!(matches!(err, DataflowError::Io { .. } | DataflowError::Codec { .. }), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unaffected_pipelines_keep_working() {
    // Sanity: corruption of one pipeline's spill dir must not leak into an
    // independent pipeline.
    let (broken, dir) = pipeline_with_spill_dir("isolated");
    let broken_pc = broken.from_vec((0u64..2000).collect()).map(|x| x).unwrap();
    for f in spill_files(&dir) {
        fs::remove_file(f).unwrap();
    }
    assert!(broken_pc.collect().is_err());

    let healthy = Pipeline::new(2).unwrap();
    let out = healthy.from_vec(vec![1u64, 2, 3]).map(|x| x * 2).unwrap().collect().unwrap();
    assert_eq!(out.len(), 3);
    let _ = fs::remove_dir_all(&dir);
}
