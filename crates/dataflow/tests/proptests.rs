//! Property-based tests for the dataflow engine: codec roundtrips and
//! transform correctness against in-memory references, with and without
//! memory pressure.

use proptest::prelude::*;
use std::collections::HashMap;
use submod_dataflow::{Either2, Either3, MemoryBudget, PCollection, Pipeline, Record};

/// Applies a random operator chain (maps, filters, flat_maps — all
/// deferrable) to a collection; the same chain must produce bitwise
/// identical results whether the stages fuse or run eagerly.
fn apply_chain(source: &PCollection<u64>, ops: &[u32]) -> PCollection<u64> {
    let mut current = source.clone();
    for (i, &op) in ops.iter().enumerate() {
        let salt = i as u64;
        current = match op % 4 {
            0 => current.map(move |x| x.wrapping_mul(0x9E37_79B9).rotate_left(7) ^ salt).unwrap(),
            1 => current.filter(move |&x| x % 3 != salt % 3).unwrap(),
            2 => current
                .flat_map(move |x| if x % 5 == 0 { vec![x, x ^ 0xABCD] } else { vec![x] })
                .unwrap(),
            _ => current.map(move |x| x ^ (0x5A5A + salt)).unwrap(),
        };
    }
    current
}

fn roundtrip<T: Record + PartialEq + std::fmt::Debug>(value: &T) -> Result<(), TestCaseError> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    let mut slice = buf.as_slice();
    let decoded = T::decode(&mut slice).expect("decode");
    prop_assert_eq!(&decoded, value);
    prop_assert!(slice.is_empty(), "left {} bytes", slice.len());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn codec_roundtrips_primitives(
        a in any::<u64>(), b in any::<i64>(), c in any::<f32>(), d in any::<bool>(),
    ) {
        prop_assume!(!c.is_nan());
        roundtrip(&a)?;
        roundtrip(&b)?;
        roundtrip(&c)?;
        roundtrip(&d)?;
        roundtrip(&(a, b, c, d))?;
    }

    #[test]
    fn codec_roundtrips_containers(
        v in proptest::collection::vec((any::<u64>(), 0.0f32..1.0), 0..50),
        s in "[a-zA-Z0-9 ]{0,40}",
        o in proptest::option::of(any::<u32>()),
    ) {
        roundtrip(&v)?;
        roundtrip(&s)?;
        roundtrip(&o)?;
        roundtrip(&(s.clone(), v.clone()))?;
    }

    #[test]
    fn codec_roundtrips_eithers(x in any::<u64>(), y in 0.0f64..1.0) {
        roundtrip(&Either2::<u64, f64>::Left(x))?;
        roundtrip(&Either2::<u64, f64>::Right(y))?;
        roundtrip(&Either3::<u64, f64, bool>::First(x))?;
        roundtrip(&Either3::<u64, f64, bool>::Second(y))?;
        roundtrip(&Either3::<u64, f64, bool>::Third(true))?;
    }

    /// Concatenated encodings decode back record by record — the framing
    /// the shuffle relies on.
    #[test]
    fn codec_sequences_decode_in_order(records in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..40)) {
        let mut buf = Vec::new();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut slice = buf.as_slice();
        for r in &records {
            let decoded = <(u64, u32)>::decode(&mut slice).expect("decode");
            prop_assert_eq!(&decoded, r);
        }
        prop_assert!(slice.is_empty());
    }

    /// map/filter/count agree with the iterator reference for any input
    /// and any worker count.
    #[test]
    fn transforms_match_iterator_reference(
        data in proptest::collection::vec(any::<u64>(), 0..500),
        workers in 1usize..8,
    ) {
        let pipeline = Pipeline::new(workers).unwrap();
        let pc = pipeline.from_vec(data.clone());
        let mapped: Vec<u64> = {
            let mut v = pc.map(|x| x ^ 0xFF).unwrap().collect().unwrap();
            v.sort_unstable();
            v
        };
        let mut expected: Vec<u64> = data.iter().map(|x| x ^ 0xFF).collect();
        expected.sort_unstable();
        prop_assert_eq!(mapped, expected);

        let kept = pc.filter(|x| x % 3 == 0).unwrap().count().unwrap();
        prop_assert_eq!(kept, data.iter().filter(|x| **x % 3 == 0).count() as u64);
    }

    /// group_by_key equals the HashMap reference for arbitrary data, with
    /// and without a crushing memory budget.
    #[test]
    fn group_by_key_matches_reference(
        data in proptest::collection::vec((0u64..40, any::<u32>()), 0..400),
        workers in 1usize..6,
        tiny_budget in any::<bool>(),
    ) {
        let mut builder = Pipeline::builder().workers(workers);
        if tiny_budget {
            builder = builder.memory_budget(MemoryBudget::bytes(512));
        }
        let pipeline = builder.build().unwrap();
        let grouped = pipeline.from_vec(data.clone()).group_by_key().unwrap();
        let ours: HashMap<u64, Vec<u32>> = grouped
            .collect()
            .unwrap()
            .into_iter()
            .map(|(k, mut v)| { v.sort_unstable(); (k, v) })
            .collect();
        let mut reference: HashMap<u64, Vec<u32>> = HashMap::new();
        for (k, v) in data {
            reference.entry(k).or_default().push(v);
        }
        for v in reference.values_mut() {
            v.sort_unstable();
        }
        prop_assert_eq!(ours, reference);
    }

    /// kth_largest equals the sort-based reference for every valid k.
    #[test]
    fn kth_largest_matches_sort(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let pipeline = Pipeline::new(3).unwrap();
        let pc = pipeline.from_vec(values.clone());
        let mut sorted = values;
        sorted.sort_by(|a, b| b.total_cmp(a));
        for k in [1usize, sorted.len() / 2 + 1, sorted.len()] {
            let got = pc.kth_largest(k as u64).unwrap();
            prop_assert_eq!(got, sorted[k - 1], "k = {}", k);
        }
    }

    /// Adversarial kth_largest: values drawn from a tiny pool so the
    /// collection is saturated with duplicates (ties are where a
    /// bisection can come off the rails), checked at **every** index —
    /// both ends included — against the in-memory sort, across worker
    /// counts and under a spilling budget.
    #[test]
    fn kth_largest_with_heavy_duplicates_matches_sort(
        picks in proptest::collection::vec(0usize..4, 1..120),
        pool in proptest::collection::vec(-1e3f64..1e3, 4..5),
        workers in 1usize..6,
        tiny_budget in any::<bool>(),
    ) {
        let values: Vec<f64> = picks.iter().map(|&i| pool[i]).collect();
        let mut builder = Pipeline::builder().workers(workers);
        if tiny_budget {
            builder = builder.memory_budget(MemoryBudget::bytes(128));
        }
        let pipeline = builder.build().unwrap();
        // Route through a map so the records land in budget-checked sinks.
        let pc = pipeline.from_vec(values.clone()).map(|x| x).unwrap();
        let mut sorted = values;
        sorted.sort_by(|a, b| b.total_cmp(a));
        for k in 1..=sorted.len() {
            let got = pc.kth_largest(k as u64).unwrap();
            prop_assert_eq!(got.to_bits(), sorted[k - 1].to_bits(), "k = {}", k);
        }
    }

    /// All-equal collections: every order statistic is that value, bit
    /// for bit.
    #[test]
    fn kth_largest_all_equal(value in -1e9f64..1e9, len in 1usize..60) {
        let pipeline = Pipeline::new(4).unwrap();
        let pc = pipeline.from_vec(vec![value; len]);
        for k in [1, len.div_ceil(2), len] {
            prop_assert_eq!(pc.kth_largest(k as u64).unwrap().to_bits(), value.to_bits());
        }
    }

    /// argmax_per_key equals the fold reference (same comparator) for
    /// arbitrary data, any worker count, with and without a crushing
    /// budget.
    #[test]
    fn argmax_per_key_matches_reference(
        data in proptest::collection::vec((0u64..12, 0u64..60, -1e6f64..1e6), 1..300),
        workers in 1usize..6,
        tiny_budget in any::<bool>(),
    ) {
        let records: Vec<(u64, (u64, f64))> =
            data.into_iter().map(|(k, id, score)| (k, (id, score))).collect();
        let mut builder = Pipeline::builder().workers(workers);
        if tiny_budget {
            builder = builder.memory_budget(MemoryBudget::bytes(128));
        }
        let pipeline = builder.build().unwrap();
        let mut ours = pipeline.from_vec(records.clone()).argmax_per_key().unwrap()
            .collect().unwrap();
        ours.sort_by_key(|&(k, _)| k);
        let mut reference: HashMap<u64, (u64, f64)> = HashMap::new();
        for (k, best) in records {
            match reference.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => { e.insert(best); }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if submod_dataflow::argmax_prefers(*e.get(), best) {
                        e.insert(best);
                    }
                }
            }
        }
        let mut expected: Vec<(u64, (u64, f64))> = reference.into_iter().collect();
        expected.sort_by_key(|&(k, _)| k);
        prop_assert_eq!(&ours, &expected);
        for ((_, (id_a, score_a)), (_, (id_b, score_b))) in ours.iter().zip(&expected) {
            prop_assert_eq!(id_a, id_b);
            prop_assert_eq!(score_a.to_bits(), score_b.to_bits());
        }
    }

    /// Adversarial argmax ties: scores drawn from a tiny pool so
    /// duplication saturates every key; the winner must always be the
    /// smallest id of the top score class, under any sharding, budget,
    /// and flush pattern.
    #[test]
    fn argmax_per_key_heavy_ties_pick_smallest_id(
        picks in proptest::collection::vec((0u64..6, 0u64..40, 0usize..3), 1..200),
        pool in proptest::collection::vec(-1e3f64..1e3, 3..4),
        workers in 1usize..6,
        tiny_budget in any::<bool>(),
    ) {
        let records: Vec<(u64, (u64, f64))> =
            picks.iter().map(|&(k, id, i)| (k, (id, pool[i]))).collect();
        let mut builder = Pipeline::builder().workers(workers);
        if tiny_budget {
            builder = builder.memory_budget(MemoryBudget::bytes(96));
        }
        let pipeline = builder.build().unwrap();
        let out = pipeline.from_vec(records.clone()).argmax_per_key().unwrap()
            .collect().unwrap();
        for (key, (id, score)) in out {
            let of_key: Vec<(u64, f64)> =
                records.iter().filter(|&&(k, _)| k == key).map(|&(_, v)| v).collect();
            let top = of_key.iter().map(|&(_, s)| s).fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(score, top, "key {} winner not the top score", key);
            let min_id = of_key.iter().filter(|&&(_, s)| s == top).map(|&(i, _)| i)
                .min().expect("top class non-empty");
            prop_assert_eq!(id, min_id, "key {} tie not broken to the smallest id", key);
        }
    }

    /// All-equal scores: every key's winner is its smallest id, with the
    /// score bits preserved exactly.
    #[test]
    fn argmax_per_key_all_equal_scores(
        score in -1e9f64..1e9,
        ids in proptest::collection::vec(0u64..1000, 1..60),
        workers in 1usize..6,
    ) {
        let records: Vec<(u64, (u64, f64))> = ids.iter().map(|&id| (0u64, (id, score))).collect();
        let pipeline = Pipeline::new(workers).unwrap();
        let out = pipeline.from_vec(records).argmax_per_key().unwrap().collect().unwrap();
        prop_assert_eq!(out.len(), 1);
        prop_assert_eq!(out[0].1.0, ids.iter().copied().min().unwrap());
        prop_assert_eq!(out[0].1.1.to_bits(), score.to_bits());
    }

    /// NaN-free extremes (±0.0, subnormals, MAX/MIN): the winner and its
    /// score come back bit for bit under any sharding and a spilling
    /// budget.
    #[test]
    fn argmax_per_key_extreme_values(workers in 1usize..6, tiny_budget in any::<bool>()) {
        let scores = [
            -0.0f64, 0.0, f64::MIN_POSITIVE / 2.0, f64::MAX, f64::MIN, 1.0, -1.0,
            f64::INFINITY, f64::NEG_INFINITY,
        ];
        let records: Vec<(u64, (u64, f64))> = scores
            .iter()
            .enumerate()
            .flat_map(|(i, &s)| [(0u64, (i as u64, s)), (1u64, (100 + i as u64, -s))])
            .collect();
        let mut builder = Pipeline::builder().workers(workers);
        if tiny_budget {
            builder = builder.memory_budget(MemoryBudget::bytes(64));
        }
        let pipeline = builder.build().unwrap();
        let mut out = pipeline.from_vec(records).argmax_per_key().unwrap().collect().unwrap();
        out.sort_by_key(|&(k, _)| k);
        // Key 0: MAX loses only to +inf (index 7); key 1: -MIN = MAX at
        // offset 100 + 4 loses only to -(-inf) = +inf at 100 + 8.
        prop_assert_eq!(out[0].1.0, 7);
        prop_assert_eq!(out[0].1.1.to_bits(), f64::INFINITY.to_bits());
        prop_assert_eq!(out[1].1.0, 108);
        prop_assert_eq!(out[1].1.1.to_bits(), f64::INFINITY.to_bits());
    }

    /// aggregate_per_key(sum) equals the HashMap reference under any
    /// sharding and budget.
    #[test]
    fn aggregate_per_key_matches_reference(
        data in proptest::collection::vec((0u64..25, 0u64..1000), 0..300),
        workers in 1usize..6,
        tiny_budget in any::<bool>(),
    ) {
        let mut builder = Pipeline::builder().workers(workers);
        if tiny_budget {
            builder = builder.memory_budget(MemoryBudget::bytes(256));
        }
        let pipeline = builder.build().unwrap();
        let mut ours: Vec<(u64, u64)> = pipeline
            .from_vec(data.clone())
            .aggregate_per_key(0u64, |a, v| a + v, |a, b| a + b)
            .unwrap()
            .collect()
            .unwrap();
        ours.sort_unstable();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for (k, v) in data {
            *reference.entry(k).or_default() += v;
        }
        let mut expected: Vec<(u64, u64)> = reference.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(ours, expected);
    }

    /// The seeded samples are pure functions of (seed, key): identical at
    /// any worker count, and Bernoulli membership matches the coin.
    #[test]
    fn samples_are_shard_invariant(
        data in proptest::collection::vec(any::<u64>(), 1..200),
        seed in any::<u64>(),
        p in 0.0f64..=1.0,
        capacity in 1usize..50,
    ) {
        let mut dedup = data;
        dedup.sort_unstable();
        dedup.dedup();
        let mut bernoulli_runs = Vec::new();
        let mut reservoir_runs = Vec::new();
        for workers in [1usize, 4] {
            let pipeline = Pipeline::new(workers).unwrap();
            let pc = pipeline.from_vec(dedup.clone());
            let mut b = pc.sample_bernoulli(seed, |&x| x, move |_| p).unwrap().collect().unwrap();
            b.sort_unstable();
            bernoulli_runs.push(b);
            reservoir_runs.push(
                pc.sample_reservoir(seed, |&x| x, capacity).unwrap().collect().unwrap(),
            );
        }
        prop_assert_eq!(&bernoulli_runs[0], &bernoulli_runs[1]);
        prop_assert_eq!(&reservoir_runs[0], &reservoir_runs[1]);
        prop_assert_eq!(reservoir_runs[0].len(), capacity.min(dedup.len()));
        for x in &bernoulli_runs[0] {
            prop_assert!(submod_dataflow::sample_coin(seed, *x) < p);
        }
    }

    /// reduce_per_key(sum) equals aggregate-by-hand.
    #[test]
    fn reduce_per_key_sums_correctly(data in proptest::collection::vec((0u64..20, 0u64..1000), 0..300)) {
        let pipeline = Pipeline::new(4).unwrap();
        let reduced = pipeline.from_vec(data.clone()).reduce_per_key(|a, b| a + b).unwrap();
        let mut ours: Vec<(u64, u64)> = reduced.collect().unwrap();
        ours.sort_unstable();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for (k, v) in data {
            *reference.entry(k).or_default() += v;
        }
        let mut expected: Vec<(u64, u64)> = reference.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(ours, expected);
    }

    /// Extreme-value order statistics (negative zero, subnormals, the
    /// f64 extremes) come back bit for bit at every index.
    #[test]
    fn kth_largest_extreme_values_match_sort(workers in 1usize..6) {
        let values =
            vec![-0.0f64, 0.0, f64::MIN_POSITIVE / 2.0, f64::MAX, f64::MIN, 1.0, -1.0, 0.0];
        let pipeline = Pipeline::new(workers).unwrap();
        let pc = pipeline.from_vec(values.clone());
        let mut sorted = values;
        sorted.sort_by(|a, b| b.total_cmp(a));
        for k in 1..=sorted.len() {
            let got = pc.kth_largest(k as u64).unwrap();
            prop_assert_eq!(got.to_bits(), sorted[k - 1].to_bits(), "k = {}", k);
        }
    }

    /// Operator fusion is invisible: any random deferrable chain yields
    /// bitwise identical collections with fusion on and off, under any
    /// worker count and with or without a spilling budget.
    #[test]
    fn fusion_on_and_off_agree_on_random_chains(
        data in proptest::collection::vec(any::<u64>(), 0..300),
        ops in proptest::collection::vec(0u32..4, 1..8),
        workers in 1usize..6,
        tiny_budget in any::<bool>(),
    ) {
        let build = |fusion: bool| {
            let mut b = Pipeline::builder().workers(workers).fusion(fusion);
            if tiny_budget {
                b = b.memory_budget(MemoryBudget::bytes(256));
            }
            b.build().unwrap()
        };
        let fused_pipeline = build(true);
        let eager_pipeline = build(false);
        let fused = apply_chain(&fused_pipeline.from_vec(data.clone()), &ops);
        let eager = apply_chain(&eager_pipeline.from_vec(data.clone()), &ops);
        prop_assert_eq!(fused.collect().unwrap(), eager.collect().unwrap());
        if !data.is_empty() {
            prop_assert!(fused_pipeline.metrics().stages_fused > 0, "chain did not fuse");
        }
        prop_assert_eq!(eager_pipeline.metrics().stages_fused, 0u64);
    }

    /// Fused chains feed shuffles with the exact same contents the eager
    /// path produces: group_by_key downstream of a random chain matches
    /// group for group, value order included.
    #[test]
    fn fusion_preserves_shuffle_contents(
        data in proptest::collection::vec(any::<u64>(), 0..250),
        ops in proptest::collection::vec(0u32..4, 1..6),
        workers in 1usize..5,
    ) {
        let mut grouped_runs = Vec::new();
        for fusion in [true, false] {
            let pipeline = Pipeline::builder().workers(workers).fusion(fusion).build().unwrap();
            let chained = apply_chain(&pipeline.from_vec(data.clone()), &ops);
            let mut groups = chained
                .map(|x| (x % 8, x))
                .unwrap()
                .group_by_key()
                .unwrap()
                .collect()
                .unwrap();
            groups.sort_by_key(|&(k, _)| k);
            grouped_runs.push(groups);
        }
        prop_assert_eq!(&grouped_runs[0], &grouped_runs[1]);
    }

    /// co_group_2 is a full outer join: every key from either side appears
    /// exactly once with all its values.
    #[test]
    fn co_group_2_is_full_outer_join(
        left in proptest::collection::vec((0u64..15, any::<u32>()), 0..150),
        right in proptest::collection::vec((0u64..15, any::<bool>()), 0..150),
    ) {
        let pipeline = Pipeline::new(3).unwrap();
        let joined = pipeline
            .from_vec(left.clone())
            .co_group_2(&pipeline.from_vec(right.clone()))
            .unwrap();
        let out = joined.collect().unwrap();
        let mut keys: Vec<u64> = out.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut expected_keys: Vec<u64> =
            left.iter().map(|(k, _)| *k).chain(right.iter().map(|(k, _)| *k)).collect();
        expected_keys.sort_unstable();
        expected_keys.dedup();
        prop_assert_eq!(keys, expected_keys);
        for (k, (ls, rs)) in out {
            prop_assert_eq!(ls.len(), left.iter().filter(|(lk, _)| *lk == k).count());
            prop_assert_eq!(rs.len(), right.iter().filter(|(rk, _)| *rk == k).count());
        }
    }
}
