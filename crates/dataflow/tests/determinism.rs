//! Thread-count invariance: every engine operation must produce
//! bitwise-identical output at 1, 2, and 8 pool threads. This is the
//! property that lets the distributed drivers in `submod_dist` promise
//! outcome equality with their in-memory references regardless of how
//! the pool is sized.

use submod_dataflow::{MemoryBudget, Pipeline};
use submod_exec::with_threads;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` under each thread count and asserts all results are equal
/// (raw, un-sorted — order is part of the contract).
fn assert_invariant<R: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> R) {
    let reference = with_threads(THREAD_COUNTS[0], &f);
    for &threads in &THREAD_COUNTS[1..] {
        let got = with_threads(threads, &f);
        assert_eq!(got, reference, "{what} changed at {threads} threads");
    }
}

#[test]
fn transforms_are_thread_count_invariant() {
    assert_invariant("map/filter/flat_map", || {
        let p = Pipeline::new(4).unwrap();
        let pc = p.from_vec((0u64..2000).collect());
        pc.map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .unwrap()
            .filter(|x| x % 3 != 0)
            .unwrap()
            .flat_map(|x| [(x, 1u64), (x >> 7, 2)])
            .unwrap()
            .collect()
            .unwrap()
    });
}

#[test]
fn group_by_key_is_thread_count_invariant() {
    assert_invariant("group_by_key (in-memory buckets)", || {
        let p = Pipeline::new(4).unwrap();
        let records: Vec<(u64, u64)> = (0..3000).map(|i| (i % 17, i)).collect();
        p.from_vec(records).group_by_key().unwrap().collect().unwrap()
    });
}

#[test]
fn external_shuffle_is_thread_count_invariant() {
    assert_invariant("group_by_key (external sort-merge)", || {
        let p =
            Pipeline::builder().workers(3).memory_budget(MemoryBudget::bytes(512)).build().unwrap();
        let records: Vec<(u64, u64)> = (0..5000).map(|i| (i % 11, i)).collect();
        p.from_vec(records).group_by_key().unwrap().collect().unwrap()
    });
}

#[test]
fn float_aggregations_are_bitwise_invariant() {
    assert_invariant("sum/kth_largest bits", || {
        let p = Pipeline::new(4).unwrap();
        let values: Vec<f64> = (0..2500).map(|i| ((i * 37) as f64).sin() * 1e3).collect();
        let pc = p.from_vec(values);
        (
            pc.sum().unwrap().to_bits(),
            pc.kth_largest(1).unwrap().to_bits(),
            pc.kth_largest(700).unwrap().to_bits(),
            pc.kth_largest(2500).unwrap().to_bits(),
        )
    });
}

#[test]
fn co_group_3_is_thread_count_invariant() {
    assert_invariant("co_group_3", || {
        let p = Pipeline::new(4).unwrap();
        let a = p.from_vec((0u64..600).map(|i| (i % 19, i)).collect::<Vec<_>>());
        let b = p.from_vec((0u64..400).map(|i| (i % 19, i as f32)).collect::<Vec<_>>());
        let c = p.from_vec((0u64..200).map(|i| (i % 19, i % 2 == 0)).collect::<Vec<_>>());
        a.co_group_3(&b, &c).unwrap().collect().unwrap()
    });
}

#[test]
fn generate_is_thread_count_invariant() {
    assert_invariant("generate", || {
        let p = Pipeline::new(5).unwrap();
        p.generate(4000, |i| i.wrapping_mul(31).wrapping_add(7)).unwrap().collect().unwrap()
    });
}

#[test]
fn aggregate_per_key_is_thread_count_invariant() {
    assert_invariant("aggregate_per_key (in-memory tables)", || {
        let p = Pipeline::new(4).unwrap();
        let records: Vec<(u64, f64)> = (0..3000).map(|i| (i % 23, (i as f64).sin())).collect();
        let out = p
            .from_vec(records)
            .aggregate_per_key(0.0f64, |a, v| a + v, |a, b| a + b)
            .unwrap()
            .collect()
            .unwrap();
        // Compare the float bits: the fold order itself must be stable.
        out.into_iter().map(|(k, v)| (k, v.to_bits())).collect::<Vec<_>>()
    });
    assert_invariant("aggregate_per_key (budget flushes)", || {
        let p =
            Pipeline::builder().workers(3).memory_budget(MemoryBudget::bytes(256)).build().unwrap();
        let records: Vec<(u64, f64)> = (0..4000).map(|i| (i % 97, (i as f64).cos())).collect();
        let out = p
            .from_vec(records)
            .aggregate_per_key(0.0f64, |a, v| a + v, |a, b| a + b)
            .unwrap()
            .collect()
            .unwrap();
        out.into_iter().map(|(k, v)| (k, v.to_bits())).collect::<Vec<_>>()
    });
}

#[test]
fn samples_are_thread_count_invariant() {
    assert_invariant("sample_bernoulli / sample_reservoir", || {
        let p = Pipeline::new(4).unwrap();
        let pc = p.from_vec((0u64..3000).collect());
        let bernoulli = pc.sample_bernoulli(11, |&x| x, |_| 0.25).unwrap().collect().unwrap();
        let reservoir = pc.sample_reservoir(11, |&x| x, 100).unwrap().collect().unwrap();
        (bernoulli, reservoir)
    });
}

#[test]
fn broadcast_joins_are_thread_count_invariant() {
    assert_invariant("broadcast side-input filter", || {
        let p = Pipeline::new(4).unwrap();
        let members = p.broadcast_set(3000, (0u64..3000).filter(|x| x % 7 == 0));
        p.from_vec((0u64..3000).collect())
            .filter(move |x| members.contains(*x))
            .unwrap()
            .collect()
            .unwrap()
    });
}
