//! A Beam-style mini dataflow engine with per-worker memory budgets and
//! spill-to-disk, built for the distributed subset-selection pipelines of
//! the MLSys 2025 paper *"On Distributed Larger-Than-Memory Subset
//! Selection With Pairwise Submodular Functions"* (Böther et al., §5).
//!
//! The paper implements its bounding and scoring algorithms on Apache Beam
//! so that *no machine ever holds the target subset in DRAM*. This crate
//! reproduces that substrate from scratch:
//!
//! - [`PCollection`] — an immutable, sharded, possibly disk-resident
//!   collection (Beam's `PCollection`).
//! - Transforms: [`PCollection::map`], [`PCollection::flat_map`],
//!   [`PCollection::filter`], [`PCollection::union`],
//!   [`PCollection::group_by_key`], the two/three-way joins
//!   [`PCollection::co_group_2`] / [`PCollection::co_group_3`], the
//!   budget-aware keyed combiner [`PCollection::aggregate_per_key`], and
//!   aggregations including the distributed
//!   [`PCollection::kth_largest`] selection that powers the bounding
//!   thresholds and the per-key top-1 selection
//!   [`PCollection::argmax_per_key`] behind the engine-resident
//!   distributed greedy.
//! - [`SideInput`] / [`BroadcastSet`] — broadcast side-inputs for small
//!   driver-side values (solution sets, status bitsets), metered by
//!   [`PipelineMetrics::bytes_broadcast`], and the deterministic seeded
//!   sampling operators [`PCollection::sample_bernoulli`] /
//!   [`PCollection::sample_reservoir`] whose coins
//!   ([`sample_coin`]) depend only on `(seed, key)` — never on sharding
//!   or scheduling.
//! - [`MemoryBudget`] — a byte limit per simulated worker. Buffers that
//!   would exceed it are spilled to disk; shuffles fall back to external
//!   sort-merge. [`PipelineMetrics`] exposes spill counters so tests can
//!   prove the budget held.
//!
//! Workers execute on the workspace's work-stealing pool
//! (`submod_exec`, reached through the vendored `rayon` facade): shard
//! transforms, the map and reduce sides of the shuffle, and spill/codec
//! work all run concurrently, while all data movement stays mediated by
//! the [`Record`] codec exactly as it would be across machines. Shuffle
//! runs are sequence-tagged so every result — group contents included —
//! is **bitwise-identical at any thread count** (`EXEC_NUM_THREADS`
//! selects the pool size).
//!
//! # Example
//!
//! ```
//! use submod_dataflow::{MemoryBudget, Pipeline};
//!
//! # fn main() -> Result<(), submod_dataflow::DataflowError> {
//! // 4 workers, 1 MiB each: big shuffles spill transparently.
//! let pipeline = Pipeline::builder()
//!     .workers(4)
//!     .memory_budget(MemoryBudget::mib(1))
//!     .build()?;
//!
//! let edges = pipeline.from_vec(vec![(1u64, 2u64), (1, 3), (2, 3)]);
//! let degrees = edges.map(|(v, _)| (v, 1u64))?.reduce_per_key(|a, b| a + b)?;
//! let mut out = degrees.collect()?;
//! out.sort_unstable();
//! assert_eq!(out, vec![(1, 2), (2, 1)]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod codec;
mod error;
mod lz;
mod memory;
mod pcollection;
mod pipeline;
mod sample;
mod shuffle;
mod side;
mod spill;

pub use agg::argmax_prefers;
pub use codec::{ColKind, Column, Either2, Either3, FixedWidth, Record};
pub use error::DataflowError;
pub use memory::{MemoryBudget, PipelineMetrics};
pub use pcollection::PCollection;
pub use pipeline::{set_fusion_default, set_spill_compression_default, Pipeline, PipelineBuilder};
pub use sample::{mix_seed_key, sample_coin, splitmix64};
pub use side::{BroadcastSet, SideInput};
