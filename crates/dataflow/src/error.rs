use std::error::Error;
use std::fmt;
use std::io;
use std::sync::Arc;

/// Errors produced by the dataflow engine.
///
/// The engine spills shards to disk when a worker exceeds its memory
/// budget, so most operations can fail with I/O errors; codec errors
/// indicate a corrupted or truncated spill file.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum DataflowError {
    /// An I/O error while spilling or reading a shard.
    Io {
        /// What the engine was doing when the error occurred.
        context: &'static str,
        /// The underlying I/O error (shared so the error stays `Clone`).
        source: Arc<io::Error>,
    },
    /// A record could not be decoded from a spill or shuffle buffer.
    Codec {
        /// Description of the malformed input.
        detail: String,
    },
    /// An operation was invoked with an invalid argument.
    InvalidArgument {
        /// Description of the violated precondition.
        detail: String,
    },
}

impl DataflowError {
    pub(crate) fn io(context: &'static str, source: io::Error) -> Self {
        DataflowError::Io { context, source: Arc::new(source) }
    }

    pub(crate) fn codec(detail: impl Into<String>) -> Self {
        DataflowError::Codec { detail: detail.into() }
    }

    pub(crate) fn invalid(detail: impl Into<String>) -> Self {
        DataflowError::InvalidArgument { detail: detail.into() }
    }
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::Io { context, source } => {
                write!(f, "i/o failure while {context}: {source}")
            }
            DataflowError::Codec { detail } => write!(f, "record codec failure: {detail}"),
            DataflowError::InvalidArgument { detail } => write!(f, "invalid argument: {detail}"),
        }
    }
}

impl Error for DataflowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataflowError::Io { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let err = DataflowError::io("spilling shard", io::Error::other("disk full"));
        let msg = err.to_string();
        assert!(msg.contains("spilling shard") && msg.contains("disk full"));
    }

    #[test]
    fn codec_and_invalid_messages() {
        assert!(DataflowError::codec("truncated").to_string().contains("truncated"));
        assert!(DataflowError::invalid("zero workers").to_string().contains("zero workers"));
    }

    #[test]
    fn error_is_send_sync_clone() {
        fn assert_traits<T: Error + Send + Sync + Clone + 'static>() {}
        assert_traits::<DataflowError>();
    }

    #[test]
    fn io_source_is_exposed() {
        let err = DataflowError::io("x", io::Error::other("y"));
        assert!(err.source().is_some());
    }
}
