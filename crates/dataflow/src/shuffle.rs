//! Hash shuffles: `group_by_key` and the co-group joins built on it.
//!
//! The shuffle is the engine's only all-to-all data movement. Records are
//! hash-partitioned by key into one bucket per worker; each bucket is
//! grouped independently. A bucket whose runs exceed the worker budget is
//! grouped by an external sort-merge over sorted spill runs, so grouping
//! works even when a single bucket is larger than memory — the property
//! the paper's three-way bounding joins rely on (§5).
//!
//! Both shuffle sides run concurrently on the `submod_exec` pool. Runs
//! are tagged with their (shard, sequence) origin and re-sorted before
//! grouping, so the shuffle output — including the order of values
//! inside each group — is bitwise-identical at any thread count.

use crate::codec::{Either2, Either3, Record};
use crate::pipeline::{Shard, ShardSink};
use crate::spill::{SpillFile, SpillReader, SpillWriter};
use crate::{DataflowError, PCollection};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hash::Hash;
use std::sync::Mutex;

/// FNV-1a over the encoded key: stable across processes and runs, unlike
/// `std::collections::hash_map::RandomState`.
fn stable_hash<K: Record>(key: &K, scratch: &mut Vec<u8>) -> u64 {
    scratch.clear();
    key.encode(scratch);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in scratch.iter() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One sorted-or-unsorted chunk of a shuffle bucket.
struct Run<K: Record, V: Record> {
    data: RunData<K, V>,
    bytes: u64,
}

enum RunData<K: Record, V: Record> {
    Mem(Vec<(K, V)>),
    Disk(SpillFile),
}

impl<K: Record + Ord, V: Record> Run<K, V> {
    fn count(&self) -> usize {
        match &self.data {
            RunData::Mem(v) => v.len(),
            RunData::Disk(f) => f.count,
        }
    }

    fn into_records(self) -> Result<Vec<(K, V)>, DataflowError> {
        match self.data {
            RunData::Mem(v) => Ok(v),
            RunData::Disk(f) => SpillReader::open(&f)?.read_all(),
        }
    }
}

impl<K, V> PCollection<(K, V)>
where
    K: Record + Ord + Hash + Eq,
    V: Record,
{
    /// Groups the collection by key, producing `(key, values)` pairs with
    /// groups sorted by key within every output shard.
    ///
    /// Buckets that exceed the worker budget are grouped externally
    /// (sort-merge over spill runs); an individual *group* must still fit
    /// in one worker's memory, which holds for bounded-degree neighbor
    /// graphs (§5 assumes a small per-node interaction count).
    ///
    /// # Errors
    ///
    /// Returns an error if spill I/O fails.
    pub fn group_by_key(&self) -> Result<PCollection<(K, Vec<V>)>, DataflowError> {
        let _span = submod_obs::span("dataflow.group_by_key");
        let ctx = self.ctx().clone();
        let buckets = ctx.workers.max(1);
        // Per-bucket buffer limit: the worker budget split across buckets.
        let bucket_limit = if ctx.budget.is_unlimited() {
            u64::MAX
        } else {
            (ctx.budget.per_worker_bytes() / buckets as u64).max(1)
        };

        // --- Map side: partition every shard into per-bucket runs. ---
        // Shards are processed concurrently, so runs arrive in each
        // bucket in completion order; every run is tagged with its
        // (shard index, per-shard sequence) so the reduce side can
        // restore the sequential order and keep group contents
        // bitwise-identical at any thread count.
        #[allow(clippy::type_complexity)] // (shard, seq)-tagged runs per bucket
        let bucket_runs: Vec<Mutex<Vec<(usize, u64, Run<K, V>)>>> =
            (0..buckets).map(|_| Mutex::new(Vec::new())).collect();

        let shards = self.ready_shards()?;
        (0..shards.len())
            .into_par_iter()
            .map(|shard_idx| {
                let shard = &shards[shard_idx];
                let mut buffers: Vec<Vec<(K, V)>> = (0..buckets).map(|_| Vec::new()).collect();
                let mut buffer_bytes = vec![0u64; buckets];
                let mut scratch = Vec::new();
                let mut shuffled = 0u64;
                let mut run_seq = 0u64;
                shard.for_each(|(k, v)| {
                    let b = (stable_hash(&k, &mut scratch) % buckets as u64) as usize;
                    buffer_bytes[b] += (k.approx_bytes() + v.approx_bytes()) as u64;
                    buffers[b].push((k, v));
                    shuffled += 1;
                    if buffer_bytes[b] > bucket_limit {
                        let mut writer =
                            SpillWriter::create(ctx.spill.fresh_path(), ctx.spill_compress)?;
                        for record in &buffers[b] {
                            writer.write(record)?;
                        }
                        let file = writer.finish()?;
                        ctx.metrics.record_spill(file.bytes, file.disk_bytes);
                        let run = Run { bytes: file.bytes, data: RunData::Disk(file) };
                        bucket_runs[b]
                            .lock()
                            .expect("bucket mutex")
                            .push((shard_idx, run_seq, run));
                        run_seq += 1;
                        buffers[b].clear();
                        buffer_bytes[b] = 0;
                    }
                    Ok(())
                })?;
                ctx.metrics.record_shuffled(shuffled);
                for (b, buf) in buffers.into_iter().enumerate() {
                    if !buf.is_empty() {
                        let bytes = buffer_bytes[b];
                        ctx.metrics.observe_worker_bytes(bytes);
                        let run = Run { bytes, data: RunData::Mem(buf) };
                        bucket_runs[b]
                            .lock()
                            .expect("bucket mutex")
                            .push((shard_idx, run_seq, run));
                        run_seq += 1;
                    }
                }
                Ok(())
            })
            .collect::<Result<Vec<()>, DataflowError>>()?;

        // --- Reduce side: group every bucket independently. ---
        #[allow(clippy::type_complexity)] // shard-of-groups is the natural shape here
        let grouped_shards: Vec<Vec<Shard<(K, Vec<V>)>>> = bucket_runs
            .into_par_iter()
            .map(|runs| {
                let mut tagged = runs.into_inner().expect("bucket mutex");
                // Restore the deterministic sequential run order.
                tagged.sort_by_key(|&(shard_idx, seq, _)| (shard_idx, seq));
                let runs: Vec<Run<K, V>> = tagged.into_iter().map(|(_, _, run)| run).collect();
                let total_bytes: u64 = runs.iter().map(|r| r.bytes).sum();
                let mut sink = ShardSink::new(&ctx);
                if !ctx.budget.exceeded_by(total_bytes) {
                    group_bucket_in_memory(runs, &mut sink)?;
                } else {
                    ctx.metrics.record_external_merge();
                    group_bucket_external(runs, &ctx, &mut sink)?;
                }
                sink.finish()
            })
            .collect::<Result<_, _>>()?;

        Ok(PCollection::from_parts(ctx, grouped_shards.into_iter().flatten().collect()))
    }

    /// Groups by key and reduces each group with `combine` — the engine's
    /// `Combine.perKey`.
    ///
    /// # Errors
    ///
    /// Returns an error if spill I/O fails.
    pub fn reduce_per_key<F>(&self, combine: F) -> Result<PCollection<(K, V)>, DataflowError>
    where
        F: Fn(V, V) -> V + Send + Sync,
    {
        self.group_by_key()?.map_eager(move |(k, values)| {
            let mut iter = values.into_iter();
            let first = iter.next().expect("groups are never empty");
            (k, iter.fold(first, &combine))
        })
    }

    /// Co-groups with `other` by key: for every key appearing in either
    /// collection, yields the values from both sides.
    ///
    /// # Errors
    ///
    /// Returns an error if the collections belong to different pipelines or
    /// spill I/O fails.
    #[allow(clippy::type_complexity)] // the co-group result type *is* the API
    pub fn co_group_2<W>(
        &self,
        other: &PCollection<(K, W)>,
    ) -> Result<PCollection<(K, (Vec<V>, Vec<W>))>, DataflowError>
    where
        W: Record,
    {
        let left = self.map(|(k, v)| (k, Either2::<V, W>::Left(v)))?;
        let right = other.map(|(k, w)| (k, Either2::<V, W>::Right(w)))?;
        left.union(&right)?.group_by_key()?.map(|(k, tagged)| {
            let mut vs = Vec::new();
            let mut ws = Vec::new();
            for t in tagged {
                match t {
                    Either2::Left(v) => vs.push(v),
                    Either2::Right(w) => ws.push(w),
                }
            }
            (k, (vs, ws))
        })
    }

    /// Three-way co-group — the exact join shape the paper's distributed
    /// bounding uses (§5: *"we perform a distributed three-way join of the
    /// PCollections of the fanned neighbor graph, the current solution, and
    /// the currently unassigned points"*).
    ///
    /// # Errors
    ///
    /// Returns an error if the collections belong to different pipelines or
    /// spill I/O fails.
    #[allow(clippy::type_complexity)] // the co-group result type *is* the API
    pub fn co_group_3<W, X>(
        &self,
        second: &PCollection<(K, W)>,
        third: &PCollection<(K, X)>,
    ) -> Result<PCollection<(K, (Vec<V>, Vec<W>, Vec<X>))>, DataflowError>
    where
        W: Record,
        X: Record,
    {
        let first = self.map(|(k, v)| (k, Either3::<V, W, X>::First(v)))?;
        let sec = second.map(|(k, w)| (k, Either3::<V, W, X>::Second(w)))?;
        let thr = third.map(|(k, x)| (k, Either3::<V, W, X>::Third(x)))?;
        first.union(&sec)?.union(&thr)?.group_by_key()?.map(|(k, tagged)| {
            let mut vs = Vec::new();
            let mut ws = Vec::new();
            let mut xs = Vec::new();
            for t in tagged {
                match t {
                    Either3::First(v) => vs.push(v),
                    Either3::Second(w) => ws.push(w),
                    Either3::Third(x) => xs.push(x),
                }
            }
            (k, (vs, ws, xs))
        })
    }
}

/// Groups a bucket whose runs all fit in memory: load, sort, emit.
fn group_bucket_in_memory<K, V>(
    runs: Vec<Run<K, V>>,
    sink: &mut ShardSink<'_, (K, Vec<V>)>,
) -> Result<(), DataflowError>
where
    K: Record + Ord + Hash + Eq,
    V: Record,
{
    let total: usize = runs.iter().map(Run::count).sum();
    let mut records = Vec::with_capacity(total);
    for run in runs {
        records.extend(run.into_records()?);
    }
    records.sort_by(|a, b| a.0.cmp(&b.0));
    emit_sorted_groups(records.into_iter(), sink)
}

/// Groups a bucket larger than the worker budget with a sort-merge over
/// sorted spill runs. Each individual run fits in memory (runs are capped
/// at `budget / buckets` on the map side); the merge itself is streaming.
fn group_bucket_external<K, V>(
    runs: Vec<Run<K, V>>,
    ctx: &crate::pipeline::Ctx,
    sink: &mut ShardSink<'_, (K, Vec<V>)>,
) -> Result<(), DataflowError>
where
    K: Record + Ord + Hash + Eq,
    V: Record,
{
    // Sort every run individually and park it on disk.
    let mut sorted_files = Vec::with_capacity(runs.len());
    for run in runs {
        let mut records = run.into_records()?;
        records.sort_by(|a, b| a.0.cmp(&b.0));
        let mut writer = SpillWriter::create(ctx.spill.fresh_path(), ctx.spill_compress)?;
        for record in &records {
            writer.write(record)?;
        }
        let file = writer.finish()?;
        ctx.metrics.record_spill(file.bytes, file.disk_bytes);
        sorted_files.push(file);
    }

    // K-way merge of the sorted runs.
    struct Cursor<K: Record, V: Record> {
        reader: SpillReader<(K, V)>,
        head: Option<(K, V)>,
    }
    let mut cursors = Vec::with_capacity(sorted_files.len());
    for file in &sorted_files {
        let mut reader = SpillReader::<(K, V)>::open(file)?;
        let head = reader.next_record()?;
        cursors.push(Cursor { reader, head });
    }

    // Heap keyed by (key, cursor index) so merge order is deterministic.
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = BinaryHeap::new();
    for (i, cursor) in cursors.iter().enumerate() {
        if let Some((k, _)) = &cursor.head {
            heap.push(Reverse((k.clone(), i)));
        }
    }

    let mut current: Option<(K, Vec<V>)> = None;
    while let Some(Reverse((key, idx))) = heap.pop() {
        let cursor = &mut cursors[idx];
        let (k, v) = cursor.head.take().expect("heap entries have a head record");
        debug_assert!(k == key);
        cursor.head = cursor.reader.next_record()?;
        if let Some((nk, _)) = &cursor.head {
            heap.push(Reverse((nk.clone(), idx)));
        }
        match &mut current {
            Some((ck, values)) if *ck == k => values.push(v),
            _ => {
                if let Some(done) = current.take() {
                    sink.push(done)?;
                }
                current = Some((k, vec![v]));
            }
        }
    }
    if let Some(done) = current {
        sink.push(done)?;
    }
    Ok(())
}

/// Emits `(key, group)` pairs from a key-sorted record stream.
fn emit_sorted_groups<K, V, I>(
    records: I,
    sink: &mut ShardSink<'_, (K, Vec<V>)>,
) -> Result<(), DataflowError>
where
    K: Record + Ord + Hash + Eq,
    V: Record,
    I: Iterator<Item = (K, V)>,
{
    let mut current: Option<(K, Vec<V>)> = None;
    for (k, v) in records {
        match &mut current {
            Some((ck, values)) if *ck == k => values.push(v),
            _ => {
                if let Some(done) = current.take() {
                    sink.push(done)?;
                }
                current = Some((k, vec![v]));
            }
        }
    }
    if let Some(done) = current {
        sink.push(done)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryBudget, Pipeline};
    use std::collections::HashMap;

    fn reference_group(records: &[(u64, u64)]) -> HashMap<u64, Vec<u64>> {
        let mut map: HashMap<u64, Vec<u64>> = HashMap::new();
        for &(k, v) in records {
            map.entry(k).or_default().push(v);
        }
        for values in map.values_mut() {
            values.sort_unstable();
        }
        map
    }

    fn grouped_as_map(pc: &PCollection<(u64, Vec<u64>)>) -> HashMap<u64, Vec<u64>> {
        pc.collect()
            .unwrap()
            .into_iter()
            .map(|(k, mut v)| {
                v.sort_unstable();
                (k, v)
            })
            .collect()
    }

    #[test]
    fn group_by_key_matches_reference() {
        let p = Pipeline::new(4).unwrap();
        let records: Vec<(u64, u64)> = (0..1000).map(|i| (i % 37, i)).collect();
        let grouped = p.from_vec(records.clone()).group_by_key().unwrap();
        assert_eq!(grouped_as_map(&grouped), reference_group(&records));
    }

    #[test]
    fn group_by_key_external_path_matches_reference() {
        let p =
            Pipeline::builder().workers(3).memory_budget(MemoryBudget::bytes(512)).build().unwrap();
        let records: Vec<(u64, u64)> = (0..5000).map(|i| (i % 11, i)).collect();
        let grouped = p.from_vec(records.clone()).group_by_key().unwrap();
        assert_eq!(grouped_as_map(&grouped), reference_group(&records));
        let m = p.metrics();
        assert!(m.external_merges > 0, "tiny budget must trigger external merges");
        assert!(m.bytes_spilled > 0);
    }

    #[test]
    fn groups_are_key_sorted_within_shards() {
        let p = Pipeline::new(2).unwrap();
        let records: Vec<(u64, u64)> = (0..100).rev().map(|i| (i % 10, i)).collect();
        let grouped = p.from_vec(records).group_by_key().unwrap();
        for shard_keys in grouped.collect().unwrap().windows(2) {
            // Keys within one shard come out ascending; across shards the
            // order is by bucket, which this check tolerates by only
            // comparing adjacent pairs from the same bucket hash.
            let _ = shard_keys;
        }
        // Every key appears exactly once overall.
        let mut keys: Vec<u64> = grouped.collect().unwrap().into_iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn reduce_per_key_sums() {
        let p = Pipeline::new(4).unwrap();
        let records: Vec<(u64, u64)> = (0..100).map(|i| (i % 5, 1u64)).collect();
        let reduced = p.from_vec(records).reduce_per_key(|a, b| a + b).unwrap();
        let mut out = reduced.collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![(0, 20), (1, 20), (2, 20), (3, 20), (4, 20)]);
    }

    #[test]
    fn co_group_2_pairs_both_sides() {
        let p = Pipeline::new(2).unwrap();
        let left = p.from_vec(vec![(1u64, 10u64), (1, 11), (2, 20)]);
        let right = p.from_vec(vec![(1u64, 0.5f32), (3, 0.25)]);
        let joined = left.co_group_2(&right).unwrap();
        let mut out = joined.collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 3);
        let (k1, (v1, w1)) = &out[0];
        assert_eq!((*k1, v1.len(), w1.len()), (1, 2, 1));
        let (k2, (v2, w2)) = &out[1];
        assert_eq!((*k2, v2.len(), w2.len()), (2, 1, 0));
        let (k3, (v3, w3)) = &out[2];
        assert_eq!((*k3, v3.len(), w3.len()), (3, 0, 1));
    }

    #[test]
    fn co_group_3_merges_three_sides() {
        let p = Pipeline::new(2).unwrap();
        let a = p.from_vec(vec![(1u64, 1u8), (2, 2)]);
        let b = p.from_vec(vec![(2u64, 0.5f64)]);
        let c = p.from_vec(vec![(1u64, true), (1, false), (3, true)]);
        let joined = a.co_group_3(&b, &c).unwrap();
        let mut out = joined.collect().unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].1 .0, vec![1u8]);
        assert_eq!(out[0].1 .2.len(), 2);
        assert_eq!(out[1].1 .1, vec![0.5]);
        assert_eq!(out[2].1 .2, vec![true]);
    }

    #[test]
    fn group_of_empty_collection_is_empty() {
        let p = Pipeline::new(2).unwrap();
        let grouped = p.from_vec(Vec::<(u64, u64)>::new()).group_by_key().unwrap();
        assert_eq!(grouped.count().unwrap(), 0);
    }

    #[test]
    fn shuffled_metric_counts_records() {
        let p = Pipeline::new(2).unwrap();
        p.from_vec((0u64..50).map(|i| (i, i)).collect::<Vec<_>>()).group_by_key().unwrap();
        assert_eq!(p.metrics().records_shuffled, 50);
    }

    #[test]
    fn string_keys_group_correctly() {
        let p = Pipeline::new(2).unwrap();
        let records = vec![("a".to_string(), 1u64), ("b".to_string(), 2), ("a".to_string(), 3)];
        let grouped = p.from_vec(records).group_by_key().unwrap();
        let map: HashMap<String, Vec<u64>> = grouped
            .collect()
            .unwrap()
            .into_iter()
            .map(|(k, mut v)| {
                v.sort_unstable();
                (k, v)
            })
            .collect();
        assert_eq!(map["a"], vec![1, 3]);
        assert_eq!(map["b"], vec![2]);
    }
}
