//! A small, dependency-free LZ77 block codec for spill files.
//!
//! Spill traffic is dominated by highly regular data — length-prefixed
//! frames of near-sequential ids and raw fixed-width columns — so even a
//! byte-oriented greedy matcher recovers a large fraction of the I/O.
//! The format is snappy-shaped (tag byte, literal runs, 16-bit back
//! references) but first-party, because the build environment vendors no
//! compression crates.
//!
//! One *block* compresses independently: callers split streams into
//! [`MAX_BLOCK`]-sized blocks, so offsets always fit `u16` and a corrupt
//! block cannot poison the rest of a file. Within a block the token
//! stream is:
//!
//! - **Literal run** — tag `(len − 1) << 2 | 0` for runs up to 60 bytes,
//!   or tag `61 << 2 | 0` followed by `u16` `len − 1` for longer runs,
//!   then the raw bytes.
//! - **Copy** — tag `(len − 4) << 2 | 1` for matches of 4..=64 bytes, or
//!   tag `61 << 2 | 1` followed by `u16` `len − 4` for longer matches,
//!   then the `u16` little-endian back-offset (1-based, may overlap the
//!   output tail like any LZ77 run-length copy).
//!
//! The compressor never expands a block by more than the final literal
//! tag bytes; the spill layer stores blocks raw when compression does not
//! help, so the on-disk format is always ≤ raw + framing.

use crate::DataflowError;

/// Largest block the codec accepts: offsets and extended lengths must fit
/// `u16`.
pub(crate) const MAX_BLOCK: usize = 64 * 1024;

const TAG_LITERAL: u8 = 0;
const TAG_COPY: u8 = 1;
/// Length marker meaning "a `u16` extended length follows".
const EXTENDED: u8 = 61;

const HASH_BITS: u32 = 13;
const MIN_MATCH: usize = 4;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn emit_literals(input: &[u8], out: &mut Vec<u8>) {
    let mut rest = input;
    while !rest.is_empty() {
        let run = rest.len().min(MAX_BLOCK);
        if run <= 60 {
            out.push(((run - 1) as u8) << 2 | TAG_LITERAL);
        } else {
            out.push(EXTENDED << 2 | TAG_LITERAL);
            out.extend_from_slice(&((run - 1) as u16).to_le_bytes());
        }
        out.extend_from_slice(&rest[..run]);
        rest = &rest[run..];
    }
}

fn emit_copy(len: usize, offset: usize, out: &mut Vec<u8>) {
    debug_assert!((MIN_MATCH..=MAX_BLOCK).contains(&len));
    debug_assert!((1..=u16::MAX as usize).contains(&offset));
    if len <= 64 {
        out.push(((len - MIN_MATCH) as u8) << 2 | TAG_COPY);
    } else {
        out.push(EXTENDED << 2 | TAG_COPY);
        out.extend_from_slice(&((len - MIN_MATCH) as u16).to_le_bytes());
    }
    out.extend_from_slice(&(offset as u16).to_le_bytes());
}

/// Appends the compressed form of `input` (at most [`MAX_BLOCK`] bytes)
/// to `out`. Infallible: incompressible data degrades to literal runs.
///
/// # Panics
///
/// Panics if `input` exceeds [`MAX_BLOCK`].
pub(crate) fn compress_block(input: &[u8], out: &mut Vec<u8>) {
    assert!(input.len() <= MAX_BLOCK, "lz block larger than {MAX_BLOCK} bytes");
    if input.len() < MIN_MATCH {
        emit_literals(input, out);
        return;
    }
    // Last seen position of each 4-byte hash; u16::MAX = empty (input
    // positions are < MAX_BLOCK, and position u16::MAX can never start a
    // match because matches need 4 bytes of lookahead... but guard with a
    // validity check on the bytes themselves anyway).
    let mut table = vec![u16::MAX; 1 << HASH_BITS];
    let mut literal_start = 0usize;
    let mut i = 0usize;
    let limit = input.len() - MIN_MATCH + 1;
    while i < limit {
        let h = hash4(&input[i..]);
        let candidate = table[h] as usize;
        table[h] = i as u16;
        let offset = i.wrapping_sub(candidate);
        if candidate < i
            && offset <= u16::MAX as usize
            && input[candidate..candidate + MIN_MATCH] == input[i..i + MIN_MATCH]
        {
            // Extend the match as far as it goes.
            let mut len = MIN_MATCH;
            while i + len < input.len() && input[candidate + len] == input[i + len] {
                len += 1;
            }
            emit_literals(&input[literal_start..i], out);
            emit_copy(len, offset, out);
            // Index the skipped region (sparsely past the first bytes
            // would also work; full indexing helps periodic data).
            let next = i + len;
            i += 1;
            while i < next.min(limit) {
                table[hash4(&input[i..])] = i as u16;
                i += 1;
            }
            i = next;
            literal_start = next;
        } else {
            i += 1;
        }
    }
    emit_literals(&input[literal_start..], out);
}

/// Decompresses one block produced by [`compress_block`] into exactly
/// `raw_len` bytes.
///
/// # Errors
///
/// Returns a codec error on malformed tokens, out-of-range back
/// references, or a length mismatch.
pub(crate) fn decompress_block(mut input: &[u8], raw_len: usize) -> Result<Vec<u8>, DataflowError> {
    let mut out = Vec::with_capacity(raw_len);
    while !input.is_empty() {
        let tag = input[0];
        input = &input[1..];
        let marker = tag >> 2;
        match tag & 0b11 {
            TAG_LITERAL => {
                let len = if marker == EXTENDED {
                    let ext = read_u16(&mut input)?;
                    ext as usize + 1
                } else {
                    marker as usize + 1
                };
                if input.len() < len {
                    return Err(DataflowError::codec("lz literal run past end of block"));
                }
                out.extend_from_slice(&input[..len]);
                input = &input[len..];
            }
            TAG_COPY => {
                let len = if marker == EXTENDED {
                    let ext = read_u16(&mut input)?;
                    ext as usize + MIN_MATCH
                } else {
                    marker as usize + MIN_MATCH
                };
                let offset = read_u16(&mut input)? as usize;
                if offset == 0 || offset > out.len() {
                    return Err(DataflowError::codec("lz copy offset outside output"));
                }
                // Byte-at-a-time: copies may overlap their own output.
                let start = out.len() - offset;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
            other => {
                return Err(DataflowError::codec(format!("invalid lz tag kind {other}")));
            }
        }
        if out.len() > raw_len {
            return Err(DataflowError::codec("lz block decompressed past its raw length"));
        }
    }
    if out.len() != raw_len {
        return Err(DataflowError::codec(format!(
            "lz block decompressed to {} bytes, expected {raw_len}",
            out.len()
        )));
    }
    Ok(out)
}

fn read_u16(input: &mut &[u8]) -> Result<u16, DataflowError> {
    if input.len() < 2 {
        return Err(DataflowError::codec("truncated lz token"));
    }
    let v = u16::from_le_bytes([input[0], input[1]]);
    *input = &input[2..];
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let mut compressed = Vec::new();
        compress_block(data, &mut compressed);
        let back = decompress_block(&compressed, data.len()).expect("decompress");
        assert_eq!(back, data, "roundtrip mismatch for {} bytes", data.len());
        compressed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(roundtrip(&[]), 0);
        roundtrip(&[7]);
        roundtrip(&[1, 2, 3]);
        roundtrip(&[9; 4]);
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let data = vec![0u8; 50_000];
        let compressed = roundtrip(&data);
        assert!(compressed < data.len() / 100, "zeros must crush: {compressed} bytes");
        let pattern: Vec<u8> = (0..40_000).map(|i| (i % 23) as u8).collect();
        let compressed = roundtrip(&pattern);
        assert!(compressed < pattern.len() / 10, "periodic data must crush: {compressed}");
    }

    #[test]
    fn framed_records_compress() {
        // The shape of real spill traffic: length-prefixed (u64, f32)
        // frames of sequential ids.
        let mut data = Vec::new();
        for i in 0..4000u64 {
            data.extend_from_slice(&12u32.to_le_bytes());
            data.extend_from_slice(&i.to_le_bytes());
            data.extend_from_slice(&(i as f32 * 0.5).to_le_bytes());
        }
        let compressed = roundtrip(&data);
        // The changing f32 + low id byte keep ~10 bytes of every 16-byte
        // record literal; the zero-run copies still cut ~1/3 off.
        assert!(compressed < data.len() * 7 / 10, "framed records must shrink: {compressed}");
    }

    #[test]
    fn incompressible_data_survives() {
        // splitmix64 byte soup: no 4-byte matches to speak of.
        let mut state = 0x9E37_79B9u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let compressed = roundtrip(&data);
        // Worst case adds only literal tags.
        assert!(compressed <= data.len() + data.len() / 60 + 16);
    }

    #[test]
    fn long_literal_runs_and_long_copies() {
        // > 60 literal bytes forces the extended literal token; a 5000-byte
        // match forces the extended copy token.
        let mut data: Vec<u8> = (0..200).map(|i| (i * 7 + 3) as u8).collect();
        let tail: Vec<u8> = data.clone();
        data.extend_from_slice(&tail);
        data.extend_from_slice(&vec![42u8; 5000]);
        roundtrip(&data);
    }

    #[test]
    fn max_block_roundtrips() {
        let data: Vec<u8> = (0..MAX_BLOCK).map(|i| (i / 64) as u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn corrupt_blocks_are_errors_not_panics() {
        let mut compressed = Vec::new();
        compress_block(b"hello hello hello hello hello", &mut compressed);
        // Wrong raw_len.
        assert!(decompress_block(&compressed, 7).is_err());
        // Truncated stream.
        assert!(decompress_block(&compressed[..compressed.len() - 3], 29).is_err());
        // A copy pointing before the start of output.
        let bogus = [TAG_COPY, 5, 0]; // copy len 4, offset 5, empty output
        assert!(decompress_block(&bogus, 4).is_err());
        // Invalid tag kind.
        assert!(decompress_block(&[0b11, 0, 0, 0], 4).is_err());
    }
}
