//! The distributed collection abstraction.

use crate::codec::Record;
use crate::pipeline::{Ctx, Shard, ShardSink};
use crate::DataflowError;
use rayon::prelude::*;
use std::sync::Arc;

/// An immutable, sharded, possibly disk-resident collection of records —
/// the engine's analogue of Beam's `PCollection` (§5 of the paper:
/// *"A PCollection represents an immutable, conceptually infinitely-sized
/// set of elements. The set does not need to fit into DRAM."*).
///
/// Collections are cheap to clone (shards are shared). Transforms execute
/// eagerly, processing shards in parallel; any worker whose output buffer
/// would exceed the pipeline's [`crate::MemoryBudget`] spills it to disk.
///
/// ```
/// use submod_dataflow::Pipeline;
///
/// # fn main() -> Result<(), submod_dataflow::DataflowError> {
/// let p = Pipeline::new(2)?;
/// let pc = p.from_vec(vec![1u64, 2, 3, 4]);
/// let odd_squares = pc.filter(|x| x % 2 == 1)?.map(|x| x * x)?;
/// let mut out = odd_squares.collect()?;
/// out.sort_unstable();
/// assert_eq!(out, vec![1, 9]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PCollection<T: Record> {
    ctx: Arc<Ctx>,
    shards: Vec<Shard<T>>,
}

impl<T: Record> PCollection<T> {
    pub(crate) fn from_parts(ctx: Arc<Ctx>, shards: Vec<Shard<T>>) -> Self {
        PCollection { ctx, shards }
    }

    pub(crate) fn ctx(&self) -> &Arc<Ctx> {
        &self.ctx
    }

    pub(crate) fn shards(&self) -> &[Shard<T>] {
        &self.shards
    }

    /// Number of shards backing the collection.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of records (known without scanning record bodies).
    pub fn num_records(&self) -> u64 {
        self.shards.iter().map(|s| s.len() as u64).sum()
    }

    /// Counts records by scanning shard metadata.
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for interface stability with
    /// the other actions.
    pub fn count(&self) -> Result<u64, DataflowError> {
        Ok(self.num_records())
    }

    /// Materializes every record into one vector.
    ///
    /// Intended for tests and *small* results (e.g. per-round statistics);
    /// defeats the larger-than-memory design if called on big collections.
    ///
    /// # Errors
    ///
    /// Returns an error if a spilled shard cannot be read.
    pub fn collect(&self) -> Result<Vec<T>, DataflowError> {
        let mut out = Vec::with_capacity(self.num_records() as usize);
        for shard in &self.shards {
            shard.for_each(|r| {
                out.push(r);
                Ok(())
            })?;
        }
        Ok(out)
    }

    /// Applies `f` to every record, producing a new collection.
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn map<U, F>(&self, f: F) -> Result<PCollection<U>, DataflowError>
    where
        U: Record,
        F: Fn(T) -> U + Send + Sync,
    {
        self.transform_shards("map", |record, sink| sink.push(f(record)))
    }

    /// Keeps the records for which `predicate` returns `true`.
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn filter<F>(&self, predicate: F) -> Result<PCollection<T>, DataflowError>
    where
        F: Fn(&T) -> bool + Send + Sync,
    {
        self.transform_shards(
            "filter",
            |record, sink| {
                if predicate(&record) {
                    sink.push(record)
                } else {
                    Ok(())
                }
            },
        )
    }

    /// Applies `f` to every record and flattens the results — the engine's
    /// `ParDo`. This is how the bounding pipeline fans out neighbor lists
    /// into `(neighbor, node, similarity)` triples (§5).
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn flat_map<U, I, F>(&self, f: F) -> Result<PCollection<U>, DataflowError>
    where
        U: Record,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync,
    {
        self.transform_shards("flat_map", |record, sink| {
            for out in f(record) {
                sink.push(out)?;
            }
            Ok(())
        })
    }

    /// Concatenates two collections of the same pipeline without moving
    /// data (§4.4: *"A union can be implemented without materializing all
    /// data in memory"*).
    ///
    /// # Errors
    ///
    /// Returns an error if the collections belong to different pipelines.
    pub fn union(&self, other: &PCollection<T>) -> Result<PCollection<T>, DataflowError> {
        if !Arc::ptr_eq(&self.ctx, &other.ctx) {
            return Err(DataflowError::invalid(
                "cannot union collections from different pipelines",
            ));
        }
        let mut shards = self.shards.clone();
        shards.extend(other.shards.iter().cloned());
        Ok(PCollection { ctx: self.ctx.clone(), shards })
    }

    /// Re-shards the collection into one shard per worker, balancing record
    /// counts (useful after heavy filtering).
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling fails.
    pub fn rebalance(&self) -> Result<PCollection<T>, DataflowError> {
        let all = self.collect()?;
        let shard_count = self.ctx.workers.max(1);
        let chunk = all.len().div_ceil(shard_count).max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut rest = all;
        while !rest.is_empty() {
            let tail = rest.split_off(chunk.min(rest.len()));
            shards.push(Shard::InMemory(Arc::new(rest)));
            rest = tail;
        }
        Ok(PCollection { ctx: self.ctx.clone(), shards })
    }

    /// Shared shard-parallel transform driver. `op` names the transform
    /// in per-op registry counters (`dataflow.op.<op>.records`), flushed
    /// once per shard.
    fn transform_shards<U, F>(
        &self,
        op: &'static str,
        body: F,
    ) -> Result<PCollection<U>, DataflowError>
    where
        U: Record,
        F: Fn(T, &mut ShardSink<'_, U>) -> Result<(), DataflowError> + Send + Sync,
    {
        let _span = submod_obs::span_full(match op {
            "map" => "dataflow.map",
            "filter" => "dataflow.filter",
            _ => "dataflow.flat_map",
        });
        let op_records = submod_obs::counter(&format!("dataflow.op.{op}.records"));
        let ctx = &self.ctx;
        let shard_groups: Vec<Vec<Shard<U>>> = self
            .shards
            .par_iter()
            .map(|shard| {
                let mut sink = ShardSink::new(ctx);
                let mut processed = 0u64;
                shard.for_each(|record| {
                    processed += 1;
                    body(record, &mut sink)
                })?;
                ctx.metrics.record_processed(processed);
                op_records.add(processed);
                sink.finish()
            })
            .collect::<Result<_, _>>()?;
        Ok(PCollection {
            ctx: self.ctx.clone(),
            shards: shard_groups.into_iter().flatten().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::{MemoryBudget, Pipeline};

    fn pipeline() -> Pipeline {
        Pipeline::new(3).unwrap()
    }

    #[test]
    fn map_transforms_all_records() {
        let p = pipeline();
        let pc = p.from_vec((0u64..100).collect());
        let mut out = pc.map(|x| x + 1).unwrap().collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, (1u64..=100).collect::<Vec<_>>());
    }

    #[test]
    fn filter_keeps_matching() {
        let p = pipeline();
        let pc = p.from_vec((0u64..100).collect());
        assert_eq!(pc.filter(|x| x % 10 == 0).unwrap().count().unwrap(), 10);
    }

    #[test]
    fn flat_map_expands_and_contracts() {
        let p = pipeline();
        let pc = p.from_vec(vec![1u64, 2, 3]);
        let expanded = pc.flat_map(|x| (0..x).map(move |i| (x, i)).collect::<Vec<_>>()).unwrap();
        assert_eq!(expanded.count().unwrap(), 6);
        let none = pc.flat_map(|_| Vec::<u64>::new()).unwrap();
        assert_eq!(none.count().unwrap(), 0);
    }

    #[test]
    fn union_concatenates() {
        let p = pipeline();
        let a = p.from_vec(vec![1u64, 2]);
        let b = p.from_vec(vec![3u64]);
        let u = a.union(&b).unwrap();
        let mut out = u.collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn union_across_pipelines_is_an_error() {
        let p1 = pipeline();
        let p2 = pipeline();
        let a = p1.from_vec(vec![1u64]);
        let b = p2.from_vec(vec![2u64]);
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn spilled_transforms_roundtrip() {
        let p =
            Pipeline::builder().workers(2).memory_budget(MemoryBudget::bytes(128)).build().unwrap();
        let pc = p.from_vec((0u64..5000).collect());
        let mapped = pc.map(|x| x * 3).unwrap();
        assert!(p.metrics().bytes_spilled > 0, "expected spills under 128-byte budget");
        let mut out = mapped.collect().unwrap();
        out.sort_unstable();
        assert_eq!(out.len(), 5000);
        assert_eq!(out[4999], 4999 * 3);
        // A second pass over spilled shards also works.
        assert_eq!(mapped.filter(|x| x % 2 == 0).unwrap().count().unwrap(), 2500);
    }

    #[test]
    fn rebalance_evens_shards() {
        let p = pipeline();
        let pc = p.from_shards(vec![(0u64..97).collect(), vec![], vec![97, 98]]);
        let balanced = pc.rebalance().unwrap();
        assert_eq!(balanced.count().unwrap(), 99);
        assert_eq!(balanced.num_shards(), 3);
    }

    #[test]
    fn records_processed_metric_accumulates() {
        let p = pipeline();
        let pc = p.from_vec((0u64..50).collect());
        pc.map(|x| x).unwrap();
        pc.filter(|_| true).unwrap();
        assert_eq!(p.metrics().records_processed, 100);
    }
}
