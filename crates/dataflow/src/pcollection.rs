//! The distributed collection abstraction.

use crate::codec::Record;
use crate::pipeline::{Ctx, Shard, ShardSink};
use crate::DataflowError;
use rayon::prelude::*;
use std::sync::{Arc, Mutex};

/// The emit callback a fused pass pushes records into.
type Emit<'a, T> = &'a mut dyn FnMut(T) -> Result<(), DataflowError>;

/// Executes one deferred per-shard pass: streams the source shard through
/// the composed operator chain into `emit`, returning how many records
/// entered the chain.
type RunFn<T> = Box<dyn Fn(Emit<'_, T>) -> Result<u64, DataflowError> + Send + Sync>;

/// A deferred per-shard operator chain: the composition of every
/// `map`/`filter`/`flat_map` applied since the last materialized shard,
/// executed as **one pass** when the collection hits a barrier
/// (collect/count/aggregate/shuffle). The result is cached so chains that
/// build on an already-executed collection (the greedy engine re-derives
/// its pool table every step) never re-run upstream stages.
pub(crate) struct FusedUnit<T: Record> {
    ctx: Arc<Ctx>,
    run: RunFn<T>,
    /// Number of chained operators, recorded in the
    /// `dataflow.fused_stage_ops` histogram at execution.
    ops: u32,
    cache: Mutex<Option<Vec<Shard<T>>>>,
}

impl<T: Record> FusedUnit<T> {
    /// Streams the unit's records into `emit` without materializing them
    /// (used when a further operator fuses on top). Reads the cache when
    /// the unit already executed; otherwise runs the chain directly —
    /// no metrics or spans, those belong to [`FusedUnit::execute`].
    fn stream(&self, emit: Emit<'_, T>) -> Result<u64, DataflowError> {
        let cached = self.cache.lock().expect("fused cache").clone();
        if let Some(shards) = cached {
            let mut entered = 0u64;
            for shard in &shards {
                shard.for_each(|record| {
                    entered += 1;
                    emit(record)
                })?;
            }
            return Ok(entered);
        }
        (self.run)(emit)
    }

    /// Executes the chain into budget-checked shards (spilling like any
    /// transform output), caching the result. One obs span + one
    /// `stages_fused` tick per actual execution.
    fn execute(&self) -> Result<Vec<Shard<T>>, DataflowError> {
        let mut cache = self.cache.lock().expect("fused cache");
        if let Some(shards) = cache.as_ref() {
            return Ok(shards.clone());
        }
        let _span = submod_obs::span_full("dataflow.fused_stage");
        let mut sink = ShardSink::new(&self.ctx);
        let entered = (self.run)(&mut |record| sink.push(record))?;
        let shards = sink.finish()?;
        self.ctx.metrics.record_processed(entered);
        self.ctx.metrics.record_fused_stage(u64::from(self.ops));
        *cache = Some(shards.clone());
        Ok(shards)
    }
}

impl<T: Record> std::fmt::Debug for FusedUnit<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusedUnit").field("ops", &self.ops).finish_non_exhaustive()
    }
}

/// One slice of a collection: a materialized shard or a pending fused
/// chain over one.
#[derive(Clone, Debug)]
pub(crate) enum Segment<T: Record> {
    Ready(Shard<T>),
    Fused(Arc<FusedUnit<T>>),
}

/// An immutable, sharded, possibly disk-resident collection of records —
/// the engine's analogue of Beam's `PCollection` (§5 of the paper:
/// *"A PCollection represents an immutable, conceptually infinitely-sized
/// set of elements. The set does not need to fit into DRAM."*).
///
/// Collections are cheap to clone (shards are shared). With fusion on
/// (the default; see `SUBMOD_FUSION` and
/// [`crate::PipelineBuilder::fusion`]), chained per-shard transforms
/// defer into a single pass per shard executed at the next barrier, so
/// records cross the codec/spill boundary once per *stage* instead of
/// once per *operator*. Any worker whose output buffer would exceed the
/// pipeline's [`crate::MemoryBudget`] spills it to disk.
///
/// ```
/// use submod_dataflow::Pipeline;
///
/// # fn main() -> Result<(), submod_dataflow::DataflowError> {
/// let p = Pipeline::new(2)?;
/// let pc = p.from_vec(vec![1u64, 2, 3, 4]);
/// let odd_squares = pc.filter(|x| x % 2 == 1)?.map(|x| x * x)?;
/// let mut out = odd_squares.collect()?;
/// out.sort_unstable();
/// assert_eq!(out, vec![1, 9]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PCollection<T: Record> {
    ctx: Arc<Ctx>,
    segments: Vec<Segment<T>>,
}

impl<T: Record> PCollection<T> {
    pub(crate) fn from_parts(ctx: Arc<Ctx>, shards: Vec<Shard<T>>) -> Self {
        PCollection { ctx, segments: shards.into_iter().map(Segment::Ready).collect() }
    }

    pub(crate) fn ctx(&self) -> &Arc<Ctx> {
        &self.ctx
    }

    /// Number of shards backing the collection.
    pub fn num_shards(&self) -> usize {
        self.segments.len()
    }

    /// Materialized shards, executing (and caching) any pending fused
    /// chains — the barrier primitive every consuming operation goes
    /// through. Fused segments execute in parallel.
    pub(crate) fn ready_shards(&self) -> Result<Vec<Shard<T>>, DataflowError> {
        if self.segments.iter().all(|s| matches!(s, Segment::Ready(_))) {
            return Ok(self
                .segments
                .iter()
                .map(|s| match s {
                    Segment::Ready(shard) => shard.clone(),
                    Segment::Fused(_) => unreachable!("checked all-ready"),
                })
                .collect());
        }
        let groups: Vec<Vec<Shard<T>>> = self
            .segments
            .par_iter()
            .map(|segment| match segment {
                Segment::Ready(shard) => Ok(vec![shard.clone()]),
                Segment::Fused(unit) => unit.execute(),
            })
            .collect::<Result<_, _>>()?;
        Ok(groups.into_iter().flatten().collect())
    }

    /// Forces any pending fused chains to execute, returning a collection
    /// of materialized shards. A no-op (cheap shard clones) when nothing
    /// is pending.
    ///
    /// # Errors
    ///
    /// Returns an error if executing a fused chain or spilling fails.
    pub fn materialize(&self) -> Result<PCollection<T>, DataflowError> {
        Ok(PCollection {
            ctx: self.ctx.clone(),
            segments: self.ready_shards()?.into_iter().map(Segment::Ready).collect(),
        })
    }

    /// Counts records; a barrier (executes pending fused chains), after
    /// which the count reads from shard metadata.
    ///
    /// # Errors
    ///
    /// Returns an error if executing a fused chain or spilling fails.
    pub fn count(&self) -> Result<u64, DataflowError> {
        Ok(self.ready_shards()?.iter().map(|s| s.len() as u64).sum())
    }

    /// Materializes every record into one vector.
    ///
    /// Intended for tests and *small* results (e.g. per-round statistics);
    /// defeats the larger-than-memory design if called on big collections.
    ///
    /// # Errors
    ///
    /// Returns an error if a spilled shard cannot be read.
    pub fn collect(&self) -> Result<Vec<T>, DataflowError> {
        let shards = self.ready_shards()?;
        let mut out = Vec::with_capacity(shards.iter().map(Shard::len).sum());
        for shard in &shards {
            shard.for_each(|r| {
                out.push(r);
                Ok(())
            })?;
        }
        Ok(out)
    }

    /// Applies `f` to every record, producing a new collection. With
    /// fusion on, the work defers into the shard's operator chain; the
    /// closure must therefore own its captures (`'static`) — use
    /// [`PCollection::map_eager`] for borrow-capturing closures.
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn map<U, F>(&self, f: F) -> Result<PCollection<U>, DataflowError>
    where
        U: Record,
        F: Fn(T) -> U + Send + Sync + 'static,
    {
        if !self.ctx.fusion {
            return self.map_eager(f);
        }
        Ok(self.compose(move |record, emit: Emit<'_, U>| emit(f(record))))
    }

    /// Eager, non-deferring `map`: executes immediately via a full
    /// per-shard pass, so `f` may borrow from the caller's stack. Used
    /// where the mapped table is materialized right away anyway (e.g. the
    /// greedy engine's phase-persistent pool table).
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn map_eager<U, F>(&self, f: F) -> Result<PCollection<U>, DataflowError>
    where
        U: Record,
        F: Fn(T) -> U + Send + Sync,
    {
        self.transform_shards("map", |record, sink| sink.push(f(record)))
    }

    /// Keeps the records for which `predicate` returns `true`.
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn filter<F>(&self, predicate: F) -> Result<PCollection<T>, DataflowError>
    where
        F: Fn(&T) -> bool + Send + Sync + 'static,
    {
        if !self.ctx.fusion {
            return self.transform_shards("filter", |record, sink| {
                if predicate(&record) {
                    sink.push(record)
                } else {
                    Ok(())
                }
            });
        }
        Ok(self.compose(
            move |record, emit: Emit<'_, T>| {
                if predicate(&record) {
                    emit(record)
                } else {
                    Ok(())
                }
            },
        ))
    }

    /// Applies `f` to every record and flattens the results — the engine's
    /// `ParDo`. This is how the bounding pipeline fans out neighbor lists
    /// into `(neighbor, node, similarity)` triples (§5).
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn flat_map<U, I, F>(&self, f: F) -> Result<PCollection<U>, DataflowError>
    where
        U: Record,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync + 'static,
    {
        if !self.ctx.fusion {
            return self.transform_shards("flat_map", |record, sink| {
                for out in f(record) {
                    sink.push(out)?;
                }
                Ok(())
            });
        }
        Ok(self.compose(move |record, emit: Emit<'_, U>| {
            for out in f(record) {
                emit(out)?;
            }
            Ok(())
        }))
    }

    /// Eager, non-deferring `flat_map`: executes immediately via a full
    /// per-shard pass, so `f` may borrow from the caller's stack (the
    /// scoring pipeline fans out borrowed adjacency lists this way).
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn flat_map_eager<U, I, F>(&self, f: F) -> Result<PCollection<U>, DataflowError>
    where
        U: Record,
        I: IntoIterator<Item = U>,
        F: Fn(T) -> I + Send + Sync,
    {
        self.transform_shards("flat_map", |record, sink| {
            for out in f(record) {
                sink.push(out)?;
            }
            Ok(())
        })
    }

    /// Concatenates two collections of the same pipeline without moving
    /// data (§4.4: *"A union can be implemented without materializing all
    /// data in memory"*). Pending fused chains on either side carry over
    /// untouched — a union never re-encodes or re-executes its inputs.
    ///
    /// # Errors
    ///
    /// Returns an error if the collections belong to different pipelines.
    pub fn union(&self, other: &PCollection<T>) -> Result<PCollection<T>, DataflowError> {
        if !Arc::ptr_eq(&self.ctx, &other.ctx) {
            return Err(DataflowError::invalid(
                "cannot union collections from different pipelines",
            ));
        }
        let mut segments = self.segments.clone();
        segments.extend(other.segments.iter().cloned());
        Ok(PCollection { ctx: self.ctx.clone(), segments })
    }

    /// Re-shards the collection into one shard per worker, balancing record
    /// counts (useful after heavy filtering).
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling fails.
    pub fn rebalance(&self) -> Result<PCollection<T>, DataflowError> {
        let all = self.collect()?;
        let shard_count = self.ctx.workers.max(1);
        let chunk = all.len().div_ceil(shard_count).max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut rest = all;
        while !rest.is_empty() {
            let tail = rest.split_off(chunk.min(rest.len()));
            shards.push(Segment::Ready(Shard::InMemory(Arc::new(rest))));
            rest = tail;
        }
        Ok(PCollection { ctx: self.ctx.clone(), segments: shards })
    }

    /// Defers `body` onto every segment's operator chain: each output
    /// segment is a [`FusedUnit`] that will stream its source through the
    /// composed chain in one pass at the next barrier.
    fn compose<U, B>(&self, body: B) -> PCollection<U>
    where
        U: Record,
        B: Fn(T, Emit<'_, U>) -> Result<(), DataflowError> + Send + Sync + 'static,
    {
        let body = Arc::new(body);
        let segments = self
            .segments
            .iter()
            .map(|segment| {
                let body = Arc::clone(&body);
                let unit = match segment {
                    Segment::Ready(shard) => {
                        let shard = shard.clone();
                        FusedUnit {
                            ctx: self.ctx.clone(),
                            ops: 1,
                            cache: Mutex::new(None),
                            run: Box::new(move |emit| {
                                let mut entered = 0u64;
                                shard.for_each(|record| {
                                    entered += 1;
                                    body(record, &mut *emit)
                                })?;
                                Ok(entered)
                            }),
                        }
                    }
                    Segment::Fused(prev) => {
                        let prev = Arc::clone(prev);
                        FusedUnit {
                            ctx: self.ctx.clone(),
                            ops: prev.ops.saturating_add(1),
                            cache: Mutex::new(None),
                            run: Box::new(move |emit| {
                                prev.stream(&mut |record| body(record, &mut *emit))
                            }),
                        }
                    }
                };
                Segment::Fused(Arc::new(unit))
            })
            .collect();
        PCollection { ctx: self.ctx.clone(), segments }
    }

    /// Shared eager shard-parallel transform driver. `op` names the
    /// transform in per-op registry counters (`dataflow.op.<op>.records`),
    /// flushed once per shard. A barrier: pending fused chains execute
    /// first.
    fn transform_shards<U, F>(
        &self,
        op: &'static str,
        body: F,
    ) -> Result<PCollection<U>, DataflowError>
    where
        U: Record,
        F: Fn(T, &mut ShardSink<'_, U>) -> Result<(), DataflowError> + Send + Sync,
    {
        let _span = submod_obs::span_full(match op {
            "map" => "dataflow.map",
            "filter" => "dataflow.filter",
            _ => "dataflow.flat_map",
        });
        let op_records = submod_obs::counter(&format!("dataflow.op.{op}.records"));
        let ctx = &self.ctx;
        let shards = self.ready_shards()?;
        let shard_groups: Vec<Vec<Shard<U>>> = shards
            .par_iter()
            .map(|shard| {
                let mut sink = ShardSink::new(ctx);
                let mut processed = 0u64;
                shard.for_each(|record| {
                    processed += 1;
                    body(record, &mut sink)
                })?;
                ctx.metrics.record_processed(processed);
                op_records.add(processed);
                sink.finish()
            })
            .collect::<Result<_, _>>()?;
        Ok(PCollection::from_parts(self.ctx.clone(), shard_groups.into_iter().flatten().collect()))
    }
}

#[cfg(test)]
mod tests {
    use crate::{MemoryBudget, Pipeline};

    fn pipeline() -> Pipeline {
        Pipeline::new(3).unwrap()
    }

    #[test]
    fn map_transforms_all_records() {
        let p = pipeline();
        let pc = p.from_vec((0u64..100).collect());
        let mut out = pc.map(|x| x + 1).unwrap().collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, (1u64..=100).collect::<Vec<_>>());
    }

    #[test]
    fn filter_keeps_matching() {
        let p = pipeline();
        let pc = p.from_vec((0u64..100).collect());
        assert_eq!(pc.filter(|x| x % 10 == 0).unwrap().count().unwrap(), 10);
    }

    #[test]
    fn flat_map_expands_and_contracts() {
        let p = pipeline();
        let pc = p.from_vec(vec![1u64, 2, 3]);
        let expanded = pc.flat_map(|x| (0..x).map(move |i| (x, i)).collect::<Vec<_>>()).unwrap();
        assert_eq!(expanded.count().unwrap(), 6);
        let none = pc.flat_map(|_| Vec::<u64>::new()).unwrap();
        assert_eq!(none.count().unwrap(), 0);
    }

    #[test]
    fn union_concatenates() {
        let p = pipeline();
        let a = p.from_vec(vec![1u64, 2]);
        let b = p.from_vec(vec![3u64]);
        let u = a.union(&b).unwrap();
        let mut out = u.collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn union_across_pipelines_is_an_error() {
        let p1 = pipeline();
        let p2 = pipeline();
        let a = p1.from_vec(vec![1u64]);
        let b = p2.from_vec(vec![2u64]);
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn spilled_transforms_roundtrip() {
        let p =
            Pipeline::builder().workers(2).memory_budget(MemoryBudget::bytes(128)).build().unwrap();
        let pc = p.from_vec((0u64..5000).collect());
        let mapped = pc.map(|x| x * 3).unwrap();
        let mut out = mapped.collect().unwrap();
        assert!(p.metrics().bytes_spilled > 0, "expected spills under 128-byte budget");
        out.sort_unstable();
        assert_eq!(out.len(), 5000);
        assert_eq!(out[4999], 4999 * 3);
        // A second pass over spilled shards also works.
        assert_eq!(mapped.filter(|x| x % 2 == 0).unwrap().count().unwrap(), 2500);
    }

    #[test]
    fn rebalance_evens_shards() {
        let p = pipeline();
        let pc = p.from_shards(vec![(0u64..97).collect(), vec![], vec![97, 98]]);
        let balanced = pc.rebalance().unwrap();
        assert_eq!(balanced.count().unwrap(), 99);
        assert_eq!(balanced.num_shards(), 3);
    }

    #[test]
    fn records_processed_metric_accumulates_eagerly() {
        let p = Pipeline::builder().workers(3).fusion(false).build().unwrap();
        let pc = p.from_vec((0u64..50).collect());
        pc.map(|x| x).unwrap();
        pc.filter(|_| true).unwrap();
        assert_eq!(p.metrics().records_processed, 100);
    }

    #[test]
    fn fused_chain_runs_once_per_shard_at_the_barrier() {
        let p = Pipeline::builder().workers(3).fusion(true).build().unwrap();
        let pc = p.from_vec((0u64..100).collect());
        let chained = pc.map(|x| x + 1).unwrap().filter(|x| x % 2 == 0).unwrap().map(|x| x * 10);
        let chained = chained.unwrap();
        // Nothing ran yet: no records processed before the barrier.
        assert_eq!(p.metrics().records_processed, 0);
        assert_eq!(p.metrics().stages_fused, 0);
        let mut out = chained.collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, (1u64..=100).filter(|x| x % 2 == 0).map(|x| x * 10).collect::<Vec<_>>());
        let m = p.metrics();
        // One fused stage per shard, and the 100 inputs entered exactly
        // one pass (not one per operator).
        assert_eq!(m.stages_fused, 3);
        assert_eq!(m.records_processed, 100);
    }

    #[test]
    fn fused_results_are_cached_across_barriers() {
        let p = Pipeline::builder().workers(2).fusion(true).build().unwrap();
        let pc = p.from_vec((0u64..40).collect());
        let mapped = pc.map(|x| x + 1).unwrap();
        assert_eq!(mapped.count().unwrap(), 40);
        let stages_after_first = p.metrics().stages_fused;
        // Re-consuming the same collection reads the cache.
        assert_eq!(mapped.count().unwrap(), 40);
        assert_eq!(mapped.collect().unwrap().len(), 40);
        assert_eq!(p.metrics().stages_fused, stages_after_first);
        // Chaining on top of the cached result streams from the cache.
        assert_eq!(mapped.map(|x| x * 2).unwrap().count().unwrap(), 40);
        assert_eq!(p.metrics().stages_fused, stages_after_first + 2);
    }

    #[test]
    fn fusion_on_and_off_agree() {
        let build = |fusion: bool| {
            let p = Pipeline::builder().workers(3).fusion(fusion).build().unwrap();
            let pc = p.from_vec((0u64..500).collect());
            pc.map(|x| x * 7)
                .unwrap()
                .filter(|x| x % 3 != 0)
                .unwrap()
                .flat_map(|x| vec![x, x + 1])
                .unwrap()
                .collect()
                .unwrap()
        };
        assert_eq!(build(true), build(false));
    }
}
