//! Compact binary codec for records crossing worker or memory boundaries.
//!
//! Everything stored in a [`crate::PCollection`] implements [`Record`]: a
//! fixed little-endian encoding with length-prefixed variable-size parts.
//! The engine uses it for spill files and shuffle buffers; keeping it a
//! first-party trait (rather than a serde dependency) keeps the hot path
//! allocation-free for primitive tuples and makes sizes predictable for the
//! memory accountant.

use crate::DataflowError;

/// A value that can be stored in a [`crate::PCollection`].
///
/// Implementations must round-trip: `decode(encode(x)) == x`. The provided
/// implementations cover primitives, `String`, `Option`, `Vec`, and tuples
/// up to arity 4 — enough to express the paper's bounding and scoring
/// pipelines (§5), which shuffle `(node, neighbor, similarity, flag)`
/// tuples.
///
/// ```
/// use submod_dataflow::Record;
///
/// let value = (7u64, vec![(1u64, 0.5f32), (2, 0.25)]);
/// let mut buf = Vec::new();
/// value.encode(&mut buf);
/// let decoded = <(u64, Vec<(u64, f32)>)>::decode(&mut buf.as_slice()).unwrap();
/// assert_eq!(decoded, value);
/// ```
pub trait Record: Send + Sync + Clone + 'static {
    /// Appends the encoded form of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `input`, advancing the slice.
    ///
    /// # Errors
    ///
    /// Returns a codec error if the input is truncated or malformed.
    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError>;

    /// Estimated resident bytes of this value, used by the memory
    /// accountant to decide when a worker must spill.
    ///
    /// The default assumes a fixed-size value; containers override it.
    fn approx_bytes(&self) -> usize {
        size_of::<Self>()
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DataflowError> {
    if input.len() < n {
        return Err(DataflowError::codec(format!(
            "needed {n} bytes, only {} available",
            input.len()
        )));
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

macro_rules! impl_record_le {
    ($($ty:ty),*) => {$(
        impl Record for $ty {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
                let bytes = take(input, size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("exact length")))
            }
        }
    )*};
}

impl_record_le!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Record for bool {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DataflowError::codec(format!("invalid bool byte {other}"))),
        }
    }
}

impl Record for () {
    #[inline]
    fn encode(&self, _buf: &mut Vec<u8>) {}

    #[inline]
    fn decode(_input: &mut &[u8]) -> Result<Self, DataflowError> {
        Ok(())
    }

    fn approx_bytes(&self) -> usize {
        0
    }
}

impl Record for usize {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        let raw = u64::decode(input)?;
        usize::try_from(raw)
            .map_err(|_| DataflowError::codec(format!("usize overflow decoding {raw}")))
    }
}

impl Record for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        let len = u64::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| DataflowError::codec(format!("invalid utf-8 string: {e}")))
    }

    fn approx_bytes(&self) -> usize {
        size_of::<String>() + self.len()
    }
}

impl<T: Record> Record for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(value) => {
                buf.push(1);
                value.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            other => Err(DataflowError::codec(format!("invalid option tag {other}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, Record::approx_bytes)
    }
}

impl<T: Record> Record for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        let len = u64::decode(input)? as usize;
        // Guard against corrupted lengths blowing up allocation.
        let mut out = Vec::with_capacity(len.min(input.len().max(16)));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }

    fn approx_bytes(&self) -> usize {
        size_of::<Vec<T>>() + self.iter().map(Record::approx_bytes).sum::<usize>()
    }
}

macro_rules! impl_record_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Record),+> Record for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }

            fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
                Ok(($($name::decode(input)?,)+))
            }

            fn approx_bytes(&self) -> usize {
                0 $(+ self.$idx.approx_bytes())+
            }
        }
    )+};
}

impl_record_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// A value of one of two types, used by [`crate::PCollection::co_group_2`]
/// to shuffle both join sides through a single grouping pass.
#[derive(Clone, Debug, PartialEq)]
pub enum Either2<A, B> {
    /// Value from the left collection.
    Left(A),
    /// Value from the right collection.
    Right(B),
}

impl<A: Record, B: Record> Record for Either2<A, B> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Either2::Left(a) => {
                buf.push(0);
                a.encode(buf);
            }
            Either2::Right(b) => {
                buf.push(1);
                b.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        match take(input, 1)?[0] {
            0 => Ok(Either2::Left(A::decode(input)?)),
            1 => Ok(Either2::Right(B::decode(input)?)),
            other => Err(DataflowError::codec(format!("invalid either2 tag {other}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        1 + match self {
            Either2::Left(a) => a.approx_bytes(),
            Either2::Right(b) => b.approx_bytes(),
        }
    }
}

/// A value of one of three types, used by
/// [`crate::PCollection::co_group_3`] — the paper's bounding pipeline joins
/// the fanned-out neighbor graph, the partial solution, and the unassigned
/// points in one shuffle (§5).
#[derive(Clone, Debug, PartialEq)]
pub enum Either3<A, B, C> {
    /// Value from the first collection.
    First(A),
    /// Value from the second collection.
    Second(B),
    /// Value from the third collection.
    Third(C),
}

impl<A: Record, B: Record, C: Record> Record for Either3<A, B, C> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Either3::First(a) => {
                buf.push(0);
                a.encode(buf);
            }
            Either3::Second(b) => {
                buf.push(1);
                b.encode(buf);
            }
            Either3::Third(c) => {
                buf.push(2);
                c.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        match take(input, 1)?[0] {
            0 => Ok(Either3::First(A::decode(input)?)),
            1 => Ok(Either3::Second(B::decode(input)?)),
            2 => Ok(Either3::Third(C::decode(input)?)),
            other => Err(DataflowError::codec(format!("invalid either3 tag {other}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        1 + match self {
            Either3::First(a) => a.approx_bytes(),
            Either3::Second(b) => b.approx_bytes(),
            Either3::Third(c) => c.approx_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Record + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut slice = buf.as_slice();
        let decoded = T::decode(&mut slice).expect("decode");
        assert_eq!(decoded, value);
        assert!(slice.is_empty(), "decode must consume the full encoding");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(3.25f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
        roundtrip(123usize);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("hello Beam"));
        roundtrip(String::new());
        roundtrip(Option::<u32>::None);
        roundtrip(Some(9u32));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f32>::new());
        roundtrip(vec![(1u64, 0.5f32), (2, 0.25)]);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((1u64,));
        roundtrip((1u64, 2.0f32));
        roundtrip((1u64, 2u64, 0.5f32));
        roundtrip((1u64, 2u64, 0.5f32, true));
        roundtrip((1u64, 2u64, 0.5f32, true, String::from("x")));
    }

    #[test]
    fn eithers_roundtrip() {
        roundtrip(Either2::<u64, f32>::Left(7));
        roundtrip(Either2::<u64, f32>::Right(0.5));
        roundtrip(Either3::<u64, f32, bool>::First(7));
        roundtrip(Either3::<u64, f32, bool>::Second(0.5));
        roundtrip(Either3::<u64, f32, bool>::Third(true));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        12345u64.encode(&mut buf);
        let mut short = &buf[..4];
        assert!(u64::decode(&mut short).is_err());
    }

    #[test]
    fn invalid_tags_are_errors() {
        let buf = [7u8];
        assert!(bool::decode(&mut &buf[..]).is_err());
        assert!(Option::<u8>::decode(&mut &buf[..]).is_err());
        assert!(Either2::<u8, u8>::decode(&mut &buf[..]).is_err());
        assert!(Either3::<u8, u8, u8>::decode(&mut &buf[..]).is_err());
    }

    #[test]
    fn invalid_utf8_string_is_an_error() {
        let mut buf = Vec::new();
        2u64.encode(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(String::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn approx_bytes_scales_with_content() {
        let small = vec![1u64];
        let big = vec![1u64; 100];
        assert!(big.approx_bytes() > small.approx_bytes());
        assert!(String::from("longer string").approx_bytes() > String::from("s").approx_bytes());
    }

    #[test]
    fn decode_consumes_exactly_one_record() {
        let mut buf = Vec::new();
        1u32.encode(&mut buf);
        2u32.encode(&mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(u32::decode(&mut slice).unwrap(), 1);
        assert_eq!(u32::decode(&mut slice).unwrap(), 2);
        assert!(slice.is_empty());
    }
}
