//! Compact binary codec for records crossing worker or memory boundaries.
//!
//! Everything stored in a [`crate::PCollection`] implements [`Record`]: a
//! fixed little-endian encoding with length-prefixed variable-size parts.
//! The engine uses it for spill files and shuffle buffers; keeping it a
//! first-party trait (rather than a serde dependency) keeps the hot path
//! allocation-free for primitive tuples and makes sizes predictable for the
//! memory accountant.

use crate::DataflowError;

/// The element type of one column in a fixed-width columnar shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColKind {
    /// 32-bit unsigned integers.
    U32,
    /// 64-bit unsigned integers.
    U64,
    /// 32-bit floats (bit patterns preserved exactly).
    F32,
    /// 64-bit floats (bit patterns preserved exactly).
    F64,
}

impl ColKind {
    /// Bytes per element in the raw column encoding.
    pub fn width(self) -> usize {
        match self {
            ColKind::U32 | ColKind::F32 => 4,
            ColKind::U64 | ColKind::F64 => 8,
        }
    }
}

/// One plain column of a fixed-width shard: a dense vector of a single
/// scalar kind. Spills of fixed-width records write these as raw
/// little-endian bytes — no per-record codec frames — and scans (e.g. the
/// distributed `kth_largest`) read them back as contiguous slices.
#[derive(Clone, Debug)]
pub enum Column {
    /// 32-bit unsigned integers.
    U32(Vec<u32>),
    /// 64-bit unsigned integers.
    U64(Vec<u64>),
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
}

impl Column {
    /// An empty column of the given kind.
    pub fn new(kind: ColKind) -> Self {
        match kind {
            ColKind::U32 => Column::U32(Vec::new()),
            ColKind::U64 => Column::U64(Vec::new()),
            ColKind::F32 => Column::F32(Vec::new()),
            ColKind::F64 => Column::F64(Vec::new()),
        }
    }

    /// Number of elements in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::U32(v) => v.len(),
            Column::U64(v) => v.len(),
            Column::F32(v) => v.len(),
            Column::F64(v) => v.len(),
        }
    }

    /// Returns `true` when the column holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all elements, keeping the allocation.
    pub fn clear(&mut self) {
        match self {
            Column::U32(v) => v.clear(),
            Column::U64(v) => v.clear(),
            Column::F32(v) => v.clear(),
            Column::F64(v) => v.clear(),
        }
    }

    /// Appends the raw little-endian bytes of every element to `out`.
    pub fn write_le(&self, out: &mut Vec<u8>) {
        match self {
            Column::U32(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            Column::U64(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            Column::F32(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            Column::F64(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
        }
    }

    /// Reconstructs a column of `kind` from `rows` raw little-endian
    /// elements at the front of `input`, advancing the slice.
    ///
    /// # Errors
    ///
    /// Returns a codec error if `input` holds fewer than
    /// `rows * kind.width()` bytes.
    pub fn read_le(kind: ColKind, rows: usize, input: &mut &[u8]) -> Result<Self, DataflowError> {
        let bytes = take(input, rows * kind.width())?;
        Ok(match kind {
            ColKind::U32 => Column::U32(
                bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect(),
            ),
            ColKind::U64 => Column::U64(
                bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect(),
            ),
            ColKind::F32 => Column::F32(
                bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect(),
            ),
            ColKind::F64 => Column::F64(
                bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect(),
            ),
        })
    }

    /// The underlying `f64` slice, when this is an `F64` column.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }
}

/// Marker for [`Record`] types stored as fixed-width columns: every value
/// is a fixed arrangement of `u32`/`u64`/`f32`/`f64` scalars (described by
/// [`Record::column_kinds`]), so shards of them can spill as raw column
/// bytes instead of per-record codec frames and barriers can scan the
/// columns contiguously. Implemented for the scalar primitives and for
/// tuples whose components are all fixed-width — which covers the hot
/// collections of the selection pipelines: the scored greedy pool
/// `(machine, (node, priority))` and the bounding candidate rows.
pub trait FixedWidth: Record {}

impl FixedWidth for u32 {}
impl FixedWidth for u64 {}
impl FixedWidth for f32 {}
impl FixedWidth for f64 {}

/// A value that can be stored in a [`crate::PCollection`].
///
/// Implementations must round-trip: `decode(encode(x)) == x`. The provided
/// implementations cover primitives, `String`, `Option`, `Vec`, and tuples
/// up to arity 4 — enough to express the paper's bounding and scoring
/// pipelines (§5), which shuffle `(node, neighbor, similarity, flag)`
/// tuples.
///
/// ```
/// use submod_dataflow::Record;
///
/// let value = (7u64, vec![(1u64, 0.5f32), (2, 0.25)]);
/// let mut buf = Vec::new();
/// value.encode(&mut buf);
/// let decoded = <(u64, Vec<(u64, f32)>)>::decode(&mut buf.as_slice()).unwrap();
/// assert_eq!(decoded, value);
/// ```
pub trait Record: Send + Sync + Clone + 'static {
    /// Appends the encoded form of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a value from the front of `input`, advancing the slice.
    ///
    /// # Errors
    ///
    /// Returns a codec error if the input is truncated or malformed.
    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError>;

    /// Estimated resident bytes of this value, used by the memory
    /// accountant to decide when a worker must spill.
    ///
    /// The default assumes a fixed-size value; containers override it.
    fn approx_bytes(&self) -> usize {
        size_of::<Self>()
    }

    /// The [`FixedWidth`] opt-in: the column layout of this type, or
    /// `None` (the default) when values are not a fixed arrangement of
    /// scalars. Types returning `Some` must also implement
    /// [`Record::append_columns`] / [`Record::from_columns`] such that
    /// `from_columns(cols, i)` reproduces the `i`-th appended value
    /// bit for bit.
    fn column_kinds() -> Option<Vec<ColKind>> {
        None
    }

    /// Appends this value's scalars to `cols` (one entry per
    /// [`Record::column_kinds`] kind). Only called for fixed-width types.
    fn append_columns(&self, _cols: &mut [Column]) {
        unreachable!("append_columns on a record without column_kinds")
    }

    /// Reads the `idx`-th value back out of `cols`. Only called for
    /// fixed-width types.
    fn from_columns(_cols: &[Column], _idx: usize) -> Self {
        unreachable!("from_columns on a record without column_kinds")
    }

    /// `column_kinds().len()` without the allocation (0 when not
    /// fixed-width) — the per-record column walk uses this.
    fn column_count() -> usize {
        0
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], DataflowError> {
    if input.len() < n {
        return Err(DataflowError::codec(format!(
            "needed {n} bytes, only {} available",
            input.len()
        )));
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

macro_rules! impl_record_le {
    ($($ty:ty),*) => {$(
        impl Record for $ty {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
                let bytes = take(input, size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("exact length")))
            }
        }
    )*};
}

impl_record_le!(u8, u16, i8, i16, i32, i64);

/// Little-endian scalar records that are also single-column fixed-width
/// values (`$kind` names both the [`ColKind`] and [`Column`] variant).
macro_rules! impl_record_le_fixed {
    ($(($ty:ty, $kind:ident)),*) => {$(
        impl Record for $ty {
            #[inline]
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
                let bytes = take(input, size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("exact length")))
            }

            fn column_kinds() -> Option<Vec<ColKind>> {
                Some(vec![ColKind::$kind])
            }

            #[inline]
            fn append_columns(&self, cols: &mut [Column]) {
                match &mut cols[0] {
                    Column::$kind(v) => v.push(*self),
                    _ => unreachable!("column kind mismatch"),
                }
            }

            #[inline]
            fn from_columns(cols: &[Column], idx: usize) -> Self {
                match &cols[0] {
                    Column::$kind(v) => v[idx],
                    _ => unreachable!("column kind mismatch"),
                }
            }

            fn column_count() -> usize {
                1
            }
        }
    )*};
}

impl_record_le_fixed!((u32, U32), (u64, U64), (f32, F32), (f64, F64));

impl Record for bool {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DataflowError::codec(format!("invalid bool byte {other}"))),
        }
    }
}

impl Record for () {
    #[inline]
    fn encode(&self, _buf: &mut Vec<u8>) {}

    #[inline]
    fn decode(_input: &mut &[u8]) -> Result<Self, DataflowError> {
        Ok(())
    }

    fn approx_bytes(&self) -> usize {
        0
    }
}

impl Record for usize {
    #[inline]
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }

    #[inline]
    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        let raw = u64::decode(input)?;
        usize::try_from(raw)
            .map_err(|_| DataflowError::codec(format!("usize overflow decoding {raw}")))
    }
}

impl Record for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        let len = u64::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| DataflowError::codec(format!("invalid utf-8 string: {e}")))
    }

    fn approx_bytes(&self) -> usize {
        size_of::<String>() + self.len()
    }
}

impl<T: Record> Record for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(value) => {
                buf.push(1);
                value.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            other => Err(DataflowError::codec(format!("invalid option tag {other}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, Record::approx_bytes)
    }
}

impl<T: Record> Record for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        let len = u64::decode(input)? as usize;
        // Guard against corrupted lengths blowing up allocation.
        let mut out = Vec::with_capacity(len.min(input.len().max(16)));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }

    fn approx_bytes(&self) -> usize {
        size_of::<Vec<T>>() + self.iter().map(Record::approx_bytes).sum::<usize>()
    }
}

macro_rules! impl_record_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Record),+> Record for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }

            fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
                Ok(($($name::decode(input)?,)+))
            }

            fn approx_bytes(&self) -> usize {
                0 $(+ self.$idx.approx_bytes())+
            }

            fn column_kinds() -> Option<Vec<ColKind>> {
                let mut kinds = Vec::new();
                $(kinds.extend($name::column_kinds()?);)+
                Some(kinds)
            }

            #[inline]
            fn append_columns(&self, cols: &mut [Column]) {
                let mut offset = 0usize;
                $(
                    let width = $name::column_count();
                    self.$idx.append_columns(&mut cols[offset..offset + width]);
                    offset += width;
                )+
                let _ = offset;
            }

            #[inline]
            fn from_columns(cols: &[Column], idx: usize) -> Self {
                let mut offset = 0usize;
                let value = ($(
                    {
                        let width = $name::column_count();
                        let component = $name::from_columns(&cols[offset..offset + width], idx);
                        offset += width;
                        component
                    },
                )+);
                let _ = offset;
                value
            }

            fn column_count() -> usize {
                0 $(+ $name::column_count())+
            }
        }

        impl<$($name: FixedWidth),+> FixedWidth for ($($name,)+) {}
    )+};
}

impl_record_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// A value of one of two types, used by [`crate::PCollection::co_group_2`]
/// to shuffle both join sides through a single grouping pass.
#[derive(Clone, Debug, PartialEq)]
pub enum Either2<A, B> {
    /// Value from the left collection.
    Left(A),
    /// Value from the right collection.
    Right(B),
}

impl<A: Record, B: Record> Record for Either2<A, B> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Either2::Left(a) => {
                buf.push(0);
                a.encode(buf);
            }
            Either2::Right(b) => {
                buf.push(1);
                b.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        match take(input, 1)?[0] {
            0 => Ok(Either2::Left(A::decode(input)?)),
            1 => Ok(Either2::Right(B::decode(input)?)),
            other => Err(DataflowError::codec(format!("invalid either2 tag {other}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        1 + match self {
            Either2::Left(a) => a.approx_bytes(),
            Either2::Right(b) => b.approx_bytes(),
        }
    }
}

/// A value of one of three types, used by
/// [`crate::PCollection::co_group_3`] — the paper's bounding pipeline joins
/// the fanned-out neighbor graph, the partial solution, and the unassigned
/// points in one shuffle (§5).
#[derive(Clone, Debug, PartialEq)]
pub enum Either3<A, B, C> {
    /// Value from the first collection.
    First(A),
    /// Value from the second collection.
    Second(B),
    /// Value from the third collection.
    Third(C),
}

impl<A: Record, B: Record, C: Record> Record for Either3<A, B, C> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Either3::First(a) => {
                buf.push(0);
                a.encode(buf);
            }
            Either3::Second(b) => {
                buf.push(1);
                b.encode(buf);
            }
            Either3::Third(c) => {
                buf.push(2);
                c.encode(buf);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self, DataflowError> {
        match take(input, 1)?[0] {
            0 => Ok(Either3::First(A::decode(input)?)),
            1 => Ok(Either3::Second(B::decode(input)?)),
            2 => Ok(Either3::Third(C::decode(input)?)),
            other => Err(DataflowError::codec(format!("invalid either3 tag {other}"))),
        }
    }

    fn approx_bytes(&self) -> usize {
        1 + match self {
            Either3::First(a) => a.approx_bytes(),
            Either3::Second(b) => b.approx_bytes(),
            Either3::Third(c) => c.approx_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Record + PartialEq + std::fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let mut slice = buf.as_slice();
        let decoded = T::decode(&mut slice).expect("decode");
        assert_eq!(decoded, value);
        assert!(slice.is_empty(), "decode must consume the full encoding");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(3.25f32);
        roundtrip(f64::MIN_POSITIVE);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
        roundtrip(123usize);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("hello Beam"));
        roundtrip(String::new());
        roundtrip(Option::<u32>::None);
        roundtrip(Some(9u32));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f32>::new());
        roundtrip(vec![(1u64, 0.5f32), (2, 0.25)]);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((1u64,));
        roundtrip((1u64, 2.0f32));
        roundtrip((1u64, 2u64, 0.5f32));
        roundtrip((1u64, 2u64, 0.5f32, true));
        roundtrip((1u64, 2u64, 0.5f32, true, String::from("x")));
    }

    #[test]
    fn eithers_roundtrip() {
        roundtrip(Either2::<u64, f32>::Left(7));
        roundtrip(Either2::<u64, f32>::Right(0.5));
        roundtrip(Either3::<u64, f32, bool>::First(7));
        roundtrip(Either3::<u64, f32, bool>::Second(0.5));
        roundtrip(Either3::<u64, f32, bool>::Third(true));
    }

    #[test]
    fn truncated_input_is_an_error() {
        let mut buf = Vec::new();
        12345u64.encode(&mut buf);
        let mut short = &buf[..4];
        assert!(u64::decode(&mut short).is_err());
    }

    #[test]
    fn invalid_tags_are_errors() {
        let buf = [7u8];
        assert!(bool::decode(&mut &buf[..]).is_err());
        assert!(Option::<u8>::decode(&mut &buf[..]).is_err());
        assert!(Either2::<u8, u8>::decode(&mut &buf[..]).is_err());
        assert!(Either3::<u8, u8, u8>::decode(&mut &buf[..]).is_err());
    }

    #[test]
    fn invalid_utf8_string_is_an_error() {
        let mut buf = Vec::new();
        2u64.encode(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(String::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn approx_bytes_scales_with_content() {
        let small = vec![1u64];
        let big = vec![1u64; 100];
        assert!(big.approx_bytes() > small.approx_bytes());
        assert!(String::from("longer string").approx_bytes() > String::from("s").approx_bytes());
    }

    #[test]
    fn fixed_width_columns_roundtrip() {
        type Row = (u64, (u32, f64));
        let kinds = <Row as Record>::column_kinds().unwrap();
        assert_eq!(kinds, vec![ColKind::U64, ColKind::U32, ColKind::F64]);
        assert_eq!(<Row as Record>::column_count(), 3);
        let rows: Vec<Row> =
            (0..10u64).map(|i| (i, (i as u32 * 2, i as f64 * 0.5 - 1.0))).collect();
        let mut cols: Vec<Column> = kinds.iter().map(|&k| Column::new(k)).collect();
        for r in &rows {
            r.append_columns(&mut cols);
        }
        let mut bytes = Vec::new();
        for c in &cols {
            c.write_le(&mut bytes);
        }
        assert_eq!(bytes.len(), rows.len() * (8 + 4 + 8));
        let mut slice = bytes.as_slice();
        let back: Vec<Column> =
            kinds.iter().map(|&k| Column::read_le(k, rows.len(), &mut slice).unwrap()).collect();
        assert!(slice.is_empty());
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(Row::from_columns(&back, i), *r);
        }
    }

    #[test]
    fn variable_width_types_are_not_columnar() {
        assert!(String::column_kinds().is_none());
        assert!(<(u64, String)>::column_kinds().is_none());
        assert!(Vec::<u64>::column_kinds().is_none());
        assert!(u8::column_kinds().is_none());
        assert!(bool::column_kinds().is_none());
    }

    #[test]
    fn float_columns_preserve_bits() {
        let vals = [0.0f64, -0.0, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE];
        let mut cols = vec![Column::new(ColKind::F64)];
        for v in &vals {
            v.append_columns(&mut cols);
        }
        let mut bytes = Vec::new();
        cols[0].write_le(&mut bytes);
        let mut slice = bytes.as_slice();
        let back = Column::read_le(ColKind::F64, vals.len(), &mut slice).unwrap();
        assert!(slice.is_empty());
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(f64::from_columns(std::slice::from_ref(&back), i).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn truncated_column_bytes_are_an_error() {
        let bytes = [0u8; 7];
        assert!(Column::read_le(ColKind::F64, 1, &mut &bytes[..]).is_err());
        assert!(Column::read_le(ColKind::U32, 2, &mut &bytes[..]).is_err());
    }

    #[test]
    fn decode_consumes_exactly_one_record() {
        let mut buf = Vec::new();
        1u32.encode(&mut buf);
        2u32.encode(&mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(u32::decode(&mut slice).unwrap(), 1);
        assert_eq!(u32::decode(&mut slice).unwrap(), 2);
        assert!(slice.is_empty());
    }
}
