//! Disk-backed shard storage.
//!
//! When a worker's buffer exceeds its [`crate::MemoryBudget`], the buffer is
//! written to a *spill file*. Two payload formats exist:
//!
//! - **Framed** (the default): a sequence of length-prefixed encoded
//!   records, one codec frame per record.
//! - **Columnar**: for [`crate::FixedWidth`] record types, blocks of
//!   [`COLUMN_BLOCK_ROWS`] rows stored as raw little-endian column bytes
//!   (`[u32 rows][column 0 bytes][column 1 bytes]…`), skipping the
//!   per-record codec entirely.
//!
//! Beneath either format sits an optional LZ block layer (see
//! [`crate::lz`]): the byte stream is chopped into 64 KiB blocks, each
//! written as `[u32 raw_len][u32 comp_len][payload]` with the payload
//! stored raw whenever compression does not shrink it. A [`SpillFile`]
//! tracks both the *logical* byte count (`bytes`, what budget accounting
//! and `bytes_spilled` report — compression never changes spill
//! semantics) and the bytes that actually hit disk (`disk_bytes`).
//!
//! Spill files live in a per-pipeline temporary directory that is removed
//! when the pipeline is dropped.

use crate::codec::{ColKind, Column, Record};
use crate::lz;
use crate::DataflowError;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use submod_obs::faults::{self, FaultSite};

/// Runs the fault gate for `site` (retrying injected transients with
/// bounded backoff) before the caller touches the spill file. Injected
/// permanent faults surface as the same typed error a real one would.
fn fault_gate(site: FaultSite, context: &'static str) -> Result<(), DataflowError> {
    faults::check_io(site).map_err(|e| DataflowError::io(context, e))
}

/// Deletes a spill file that is still being written if the writer is
/// dropped before `finish` — an injected panic (or any unwind) mid-spill
/// must not leak partial files into the spill directory.
#[derive(Debug)]
struct PendingFileGuard {
    path: Option<PathBuf>,
}

impl PendingFileGuard {
    fn new(path: PathBuf) -> Self {
        PendingFileGuard { path: Some(path) }
    }

    fn path(&self) -> &Path {
        self.path.as_deref().expect("guard holds its path until disarmed")
    }

    /// Marks the file complete: ownership of the path passes to the
    /// caller and the drop cleanup is disarmed.
    fn disarm(mut self) -> PathBuf {
        self.path.take().expect("a guard is disarmed at most once")
    }
}

impl Drop for PendingFileGuard {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = fs::remove_file(path);
        }
    }
}

/// Rows per columnar block: bounds reader memory to one block of columns
/// regardless of shard size.
pub(crate) const COLUMN_BLOCK_ROWS: usize = 256;

/// Owns the spill directory of one pipeline and hands out unique file paths.
#[derive(Debug)]
pub(crate) struct SpillStore {
    dir: PathBuf,
    next_id: AtomicU64,
}

impl SpillStore {
    /// Creates the spill directory (unique per store) under `base`.
    pub fn create(base: &Path) -> Result<Self, DataflowError> {
        let unique = format!(
            "submod-dataflow-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        let dir = base.join(unique);
        fs::create_dir_all(&dir).map_err(|e| DataflowError::io("creating spill directory", e))?;
        Ok(SpillStore { dir, next_id: AtomicU64::new(0) })
    }

    /// Returns a fresh path for a new spill file.
    pub fn fresh_path(&self) -> PathBuf {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.dir.join(format!("spill-{id}.bin"))
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Best-effort cleanup; leaking temp files must not panic (C-DTOR-FAIL).
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// A closed spill file holding `count` encoded records.
#[derive(Debug, Clone)]
pub(crate) struct SpillFile {
    pub path: PathBuf,
    pub count: usize,
    /// Logical (pre-compression) payload bytes. Budget accounting and the
    /// `bytes_spilled` metric use this, so turning compression on never
    /// changes when or how much a pipeline spills.
    pub bytes: u64,
    /// Bytes actually written to disk (post-compression, incl. framing).
    pub disk_bytes: u64,
    pub compressed: bool,
    pub columnar: bool,
}

/// The byte-stream layer beneath both spill formats: plain pass-through
/// or LZ block frames.
enum ByteSink {
    Plain { writer: BufWriter<File>, disk: u64 },
    Lz { writer: BufWriter<File>, pending: Vec<u8>, scratch: Vec<u8>, disk: u64 },
}

fn write_lz_block(
    writer: &mut BufWriter<File>,
    block: &[u8],
    scratch: &mut Vec<u8>,
) -> Result<u64, DataflowError> {
    scratch.clear();
    lz::compress_block(block, scratch);
    // `comp_len == raw_len` is the stored-raw marker, so a compressed
    // payload must be strictly smaller to be used.
    let payload: &[u8] = if scratch.len() < block.len() { scratch } else { block };
    writer
        .write_all(&(block.len() as u32).to_le_bytes())
        .and_then(|()| writer.write_all(&(payload.len() as u32).to_le_bytes()))
        .and_then(|()| writer.write_all(payload))
        .map_err(|e| DataflowError::io("writing lz spill block", e))?;
    Ok(8 + payload.len() as u64)
}

impl ByteSink {
    fn create(path: &Path, compress: bool) -> Result<Self, DataflowError> {
        fault_gate(FaultSite::SpillOpen, "creating spill file")?;
        let file = File::create(path).map_err(|e| DataflowError::io("creating spill file", e))?;
        let writer = BufWriter::new(file);
        Ok(if compress {
            ByteSink::Lz { writer, pending: Vec::new(), scratch: Vec::new(), disk: 0 }
        } else {
            ByteSink::Plain { writer, disk: 0 }
        })
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), DataflowError> {
        fault_gate(FaultSite::SpillWrite, "writing spill bytes")?;
        match self {
            ByteSink::Plain { writer, disk } => {
                writer.write_all(bytes).map_err(|e| DataflowError::io("writing spill bytes", e))?;
                *disk += bytes.len() as u64;
                Ok(())
            }
            ByteSink::Lz { writer, pending, scratch, disk } => {
                pending.extend_from_slice(bytes);
                while pending.len() >= lz::MAX_BLOCK {
                    *disk += write_lz_block(writer, &pending[..lz::MAX_BLOCK], scratch)?;
                    pending.drain(..lz::MAX_BLOCK);
                }
                Ok(())
            }
        }
    }

    /// Flushes everything and returns the bytes written to disk.
    fn finish(self) -> Result<u64, DataflowError> {
        fault_gate(FaultSite::SpillWrite, "flushing spill file")?;
        match self {
            ByteSink::Plain { mut writer, disk } => {
                writer.flush().map_err(|e| DataflowError::io("flushing spill file", e))?;
                Ok(disk)
            }
            ByteSink::Lz { mut writer, pending, mut scratch, mut disk } => {
                if !pending.is_empty() {
                    disk += write_lz_block(&mut writer, &pending, &mut scratch)?;
                }
                writer.flush().map_err(|e| DataflowError::io("flushing spill file", e))?;
                Ok(disk)
            }
        }
    }
}

/// Reader counterpart of [`ByteSink`].
enum ByteSource {
    Plain(BufReader<File>),
    Lz { reader: BufReader<File>, buf: Vec<u8>, pos: usize },
}

impl ByteSource {
    fn open(path: &Path, compressed: bool) -> Result<Self, DataflowError> {
        fault_gate(FaultSite::SpillOpen, "opening spill file")?;
        let handle = File::open(path).map_err(|e| DataflowError::io("opening spill file", e))?;
        let reader = BufReader::new(handle);
        Ok(if compressed {
            ByteSource::Lz { reader, buf: Vec::new(), pos: 0 }
        } else {
            ByteSource::Plain(reader)
        })
    }

    fn read_exact(&mut self, mut out: &mut [u8]) -> Result<(), DataflowError> {
        fault_gate(FaultSite::SpillRead, "reading spill bytes")?;
        match self {
            ByteSource::Plain(reader) => {
                reader.read_exact(out).map_err(|e| DataflowError::io("reading spill bytes", e))
            }
            ByteSource::Lz { reader, buf, pos } => {
                while !out.is_empty() {
                    if *pos == buf.len() {
                        let mut header = [0u8; 8];
                        reader
                            .read_exact(&mut header)
                            .map_err(|e| DataflowError::io("reading lz spill frame header", e))?;
                        let raw_len =
                            u32::from_le_bytes([header[0], header[1], header[2], header[3]])
                                as usize;
                        let comp_len =
                            u32::from_le_bytes([header[4], header[5], header[6], header[7]])
                                as usize;
                        if raw_len > lz::MAX_BLOCK || comp_len > raw_len {
                            return Err(DataflowError::codec(
                                "invalid lz frame header in spill file",
                            ));
                        }
                        let mut payload = vec![0u8; comp_len];
                        reader
                            .read_exact(&mut payload)
                            .map_err(|e| DataflowError::io("reading lz spill frame body", e))?;
                        *buf = if comp_len == raw_len {
                            payload
                        } else {
                            lz::decompress_block(&payload, raw_len)?
                        };
                        *pos = 0;
                    }
                    let n = (buf.len() - *pos).min(out.len());
                    out[..n].copy_from_slice(&buf[*pos..*pos + n]);
                    *pos += n;
                    out = &mut out[n..];
                }
                Ok(())
            }
        }
    }
}

/// Streams records into a spill file with length-prefix framing.
///
/// The encode scratch buffer is allocated once per file and reused for
/// every record, so the per-record cost is one codec encode plus two
/// buffered writes.
pub(crate) struct SpillWriter {
    sink: ByteSink,
    guard: PendingFileGuard,
    count: usize,
    bytes: u64,
    compressed: bool,
    scratch: Vec<u8>,
}

impl SpillWriter {
    pub fn create(path: PathBuf, compress: bool) -> Result<Self, DataflowError> {
        // The guard owns the path until `finish`: a writer dropped
        // mid-spill (error propagation, an injected panic) removes its
        // partial file instead of leaking it.
        let guard = PendingFileGuard::new(path);
        let sink = ByteSink::create(guard.path(), compress)?;
        Ok(SpillWriter {
            sink,
            guard,
            count: 0,
            bytes: 0,
            compressed: compress,
            scratch: Vec::new(),
        })
    }

    pub fn write<T: Record>(&mut self, record: &T) -> Result<(), DataflowError> {
        self.scratch.clear();
        record.encode(&mut self.scratch);
        let len = self.scratch.len() as u32;
        self.sink.write_all(&len.to_le_bytes())?;
        self.sink.write_all(&self.scratch)?;
        self.count += 1;
        self.bytes += 4 + u64::from(len);
        Ok(())
    }

    pub fn finish(self) -> Result<SpillFile, DataflowError> {
        // A failed flush drops `self.guard` still armed, removing the
        // unusable file.
        let disk_bytes = self.sink.finish()?;
        Ok(SpillFile {
            path: self.guard.disarm(),
            count: self.count,
            bytes: self.bytes,
            disk_bytes,
            compressed: self.compressed,
            columnar: false,
        })
    }
}

/// Writes `records` of a [`crate::FixedWidth`] type as raw column bytes,
/// in blocks of [`COLUMN_BLOCK_ROWS`] rows — no per-record codec frames.
pub(crate) fn spill_columns<T: Record>(
    path: PathBuf,
    compress: bool,
    records: &[T],
    kinds: &[ColKind],
) -> Result<SpillFile, DataflowError> {
    let guard = PendingFileGuard::new(path);
    let mut sink = ByteSink::create(guard.path(), compress)?;
    let mut columns: Vec<Column> = kinds.iter().map(|&k| Column::new(k)).collect();
    let mut col_bytes = Vec::new();
    let mut bytes = 0u64;
    for block in records.chunks(COLUMN_BLOCK_ROWS) {
        for column in &mut columns {
            column.clear();
        }
        for record in block {
            record.append_columns(&mut columns);
        }
        sink.write_all(&(block.len() as u32).to_le_bytes())?;
        bytes += 4;
        for column in &columns {
            col_bytes.clear();
            column.write_le(&mut col_bytes);
            sink.write_all(&col_bytes)?;
            bytes += col_bytes.len() as u64;
        }
    }
    let disk_bytes = sink.finish()?;
    Ok(SpillFile {
        path: guard.disarm(),
        count: records.len(),
        bytes,
        disk_bytes,
        compressed: compress,
        columnar: true,
    })
}

/// Format-specific reader state.
enum ReadMode {
    Frames {
        scratch: Vec<u8>,
    },
    Columns {
        kinds: Vec<ColKind>,
        block: Vec<Column>,
        cursor: usize,
        rows: usize,
        scratch: Vec<u8>,
    },
}

/// Streams records back out of a spill file.
pub(crate) struct SpillReader<T: Record> {
    source: ByteSource,
    remaining: usize,
    mode: ReadMode,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Record> SpillReader<T> {
    pub fn open(file: &SpillFile) -> Result<Self, DataflowError> {
        let source = ByteSource::open(&file.path, file.compressed)?;
        // Codec read traffic: the whole file streams back through the
        // decoder, so the open (not each record) charges the counter with
        // the logical byte count.
        submod_obs::counter!("dataflow.spill.bytes_read").add(file.bytes);
        let mode = if file.columnar {
            let kinds = T::column_kinds().ok_or_else(|| {
                DataflowError::codec("columnar spill file read as a non-columnar record type")
            })?;
            ReadMode::Columns { kinds, block: Vec::new(), cursor: 0, rows: 0, scratch: Vec::new() }
        } else {
            ReadMode::Frames { scratch: Vec::new() }
        };
        Ok(SpillReader { source, remaining: file.count, mode, _marker: std::marker::PhantomData })
    }

    /// Reads the next record, or `None` when the file is exhausted.
    pub fn next_record(&mut self) -> Result<Option<T>, DataflowError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let record = match &mut self.mode {
            ReadMode::Frames { scratch } => {
                let mut len_buf = [0u8; 4];
                self.source.read_exact(&mut len_buf)?;
                let len = u32::from_le_bytes(len_buf) as usize;
                scratch.resize(len, 0);
                self.source.read_exact(scratch)?;
                let mut slice = scratch.as_slice();
                let record = T::decode(&mut slice)?;
                if !slice.is_empty() {
                    return Err(DataflowError::codec("trailing bytes in framed spill record"));
                }
                record
            }
            ReadMode::Columns { kinds, block, cursor, rows, scratch } => {
                if *cursor == *rows {
                    let mut rows_buf = [0u8; 4];
                    self.source.read_exact(&mut rows_buf)?;
                    let block_rows = u32::from_le_bytes(rows_buf) as usize;
                    if block_rows == 0 || block_rows > self.remaining {
                        return Err(DataflowError::codec(
                            "columnar spill block row count out of range",
                        ));
                    }
                    block.clear();
                    for &kind in kinds.iter() {
                        scratch.resize(block_rows * kind.width(), 0);
                        self.source.read_exact(scratch)?;
                        let mut slice = scratch.as_slice();
                        block.push(Column::read_le(kind, block_rows, &mut slice)?);
                    }
                    *rows = block_rows;
                    *cursor = 0;
                }
                let record = T::from_columns(block, *cursor);
                *cursor += 1;
                record
            }
        };
        self.remaining -= 1;
        Ok(Some(record))
    }

    /// Reads every remaining record into a vector.
    pub fn read_all(mut self) -> Result<Vec<T>, DataflowError> {
        let mut out = Vec::with_capacity(self.remaining);
        while let Some(record) = self.next_record()? {
            out.push(record);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SpillStore {
        SpillStore::create(&std::env::temp_dir()).expect("create store")
    }

    #[test]
    fn write_read_roundtrip() {
        let store = store();
        let mut writer = SpillWriter::create(store.fresh_path(), false).unwrap();
        for i in 0..100u64 {
            writer.write(&(i, i as f32 * 0.5)).unwrap();
        }
        let file = writer.finish().unwrap();
        assert_eq!(file.count, 100);
        assert!(file.bytes > 0);
        assert_eq!(file.disk_bytes, file.bytes, "uncompressed frames hit disk verbatim");
        let records: Vec<(u64, f32)> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert_eq!(records.len(), 100);
        assert_eq!(records[7], (7, 3.5));
    }

    #[test]
    fn streaming_read_stops_at_count() {
        let store = store();
        let mut writer = SpillWriter::create(store.fresh_path(), false).unwrap();
        writer.write(&1u32).unwrap();
        writer.write(&2u32).unwrap();
        let file = writer.finish().unwrap();
        let mut reader: SpillReader<u32> = SpillReader::open(&file).unwrap();
        assert_eq!(reader.next_record().unwrap(), Some(1));
        assert_eq!(reader.next_record().unwrap(), Some(2));
        assert_eq!(reader.next_record().unwrap(), None);
        assert_eq!(reader.next_record().unwrap(), None);
    }

    #[test]
    fn empty_file_roundtrip() {
        let store = store();
        let writer = SpillWriter::create(store.fresh_path(), false).unwrap();
        let file = writer.finish().unwrap();
        assert_eq!(file.count, 0);
        let records: Vec<u64> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn store_drop_removes_directory() {
        let dir;
        {
            let store = store();
            dir = store.fresh_path().parent().unwrap().to_path_buf();
            let mut writer = SpillWriter::create(store.fresh_path(), false).unwrap();
            writer.write(&1u8).unwrap();
            writer.finish().unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spill dir must be cleaned up on drop");
    }

    #[test]
    fn variable_length_records_roundtrip() {
        let store = store();
        let mut writer = SpillWriter::create(store.fresh_path(), false).unwrap();
        let values = vec![vec![1u64; 1], vec![2u64; 50], vec![], vec![3u64; 7]];
        for v in &values {
            writer.write(v).unwrap();
        }
        let file = writer.finish().unwrap();
        let back: Vec<Vec<u64>> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn compressed_frames_roundtrip_and_shrink() {
        let store = store();
        let mut writer = SpillWriter::create(store.fresh_path(), true).unwrap();
        let records: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i, i % 7)).collect();
        for r in &records {
            writer.write(r).unwrap();
        }
        let file = writer.finish().unwrap();
        assert_eq!(file.count, records.len());
        assert!(file.compressed);
        assert!(
            file.disk_bytes < file.bytes / 2,
            "sequential frames must compress: {} disk vs {} raw",
            file.disk_bytes,
            file.bytes
        );
        let back: Vec<(u64, u64)> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn compressed_incompressible_data_bounded() {
        let store = store();
        let mut writer = SpillWriter::create(store.fresh_path(), true).unwrap();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let records: Vec<u64> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state
            })
            .collect();
        for r in &records {
            writer.write(r).unwrap();
        }
        let file = writer.finish().unwrap();
        // Stored-raw fallback bounds the expansion to block framing plus
        // the literal-run overhead of blocks that compressed marginally.
        assert!(file.disk_bytes <= file.bytes + file.bytes / 16 + 64);
        let back: Vec<u64> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn columnar_roundtrip_without_frames() {
        let store = store();
        let records: Vec<(u64, (u32, f64))> =
            (0..700u64).map(|i| (i, (i as u32 * 3, i as f64 * 0.25 - 10.0))).collect();
        let kinds = <(u64, (u32, f64))>::column_kinds().unwrap();
        let file = spill_columns(store.fresh_path(), false, &records, &kinds).unwrap();
        assert!(file.columnar);
        assert_eq!(file.count, 700);
        // 700 rows → 3 blocks (256 + 256 + 188), 20 bytes/row + 4/block.
        let blocks = 700usize.div_ceil(COLUMN_BLOCK_ROWS) as u64;
        assert_eq!(file.bytes, blocks * 4 + 700 * 20);
        assert_eq!(file.disk_bytes, file.bytes);
        let back: Vec<(u64, (u32, f64))> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn columnar_compressed_roundtrip() {
        let store = store();
        let records: Vec<(u64, f64)> = (0..10_000u64).map(|i| (i, (i % 10) as f64)).collect();
        let kinds = <(u64, f64)>::column_kinds().unwrap();
        let file = spill_columns(store.fresh_path(), true, &records, &kinds).unwrap();
        assert!(file.columnar && file.compressed);
        assert!(
            file.disk_bytes < file.bytes / 2,
            "sequential columns must compress: {} disk vs {} raw",
            file.disk_bytes,
            file.bytes
        );
        let back: Vec<(u64, f64)> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn columnar_streaming_preserves_float_bits() {
        let store = store();
        let specials = [0.0f64, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE];
        let records: Vec<f64> = (0..600).map(|i| specials[i % specials.len()]).collect();
        let kinds = f64::column_kinds().unwrap();
        let file = spill_columns(store.fresh_path(), false, &records, &kinds).unwrap();
        let mut reader: SpillReader<f64> = SpillReader::open(&file).unwrap();
        for expected in &records {
            let got = reader.next_record().unwrap().unwrap();
            assert_eq!(got.to_bits(), expected.to_bits());
        }
        assert_eq!(reader.next_record().unwrap(), None);
    }

    #[test]
    fn empty_columnar_file() {
        let store = store();
        let kinds = u64::column_kinds().unwrap();
        let file = spill_columns(store.fresh_path(), false, &[] as &[u64], &kinds).unwrap();
        assert_eq!(file.count, 0);
        assert_eq!(file.bytes, 0);
        let back: Vec<u64> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert!(back.is_empty());
    }
}
