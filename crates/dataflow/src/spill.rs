//! Disk-backed shard storage.
//!
//! When a worker's buffer exceeds its [`crate::MemoryBudget`], the buffer is
//! written to a *spill file*: a sequence of length-prefixed encoded records.
//! Spill files live in a per-pipeline temporary directory that is removed
//! when the pipeline is dropped.

use crate::codec::Record;
use crate::DataflowError;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Owns the spill directory of one pipeline and hands out unique file paths.
#[derive(Debug)]
pub(crate) struct SpillStore {
    dir: PathBuf,
    next_id: AtomicU64,
}

impl SpillStore {
    /// Creates the spill directory (unique per store) under `base`.
    pub fn create(base: &Path) -> Result<Self, DataflowError> {
        let unique = format!(
            "submod-dataflow-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        let dir = base.join(unique);
        fs::create_dir_all(&dir).map_err(|e| DataflowError::io("creating spill directory", e))?;
        Ok(SpillStore { dir, next_id: AtomicU64::new(0) })
    }

    /// Returns a fresh path for a new spill file.
    pub fn fresh_path(&self) -> PathBuf {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.dir.join(format!("spill-{id}.bin"))
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        // Best-effort cleanup; leaking temp files must not panic (C-DTOR-FAIL).
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// A closed spill file holding `count` encoded records.
#[derive(Debug, Clone)]
pub(crate) struct SpillFile {
    pub path: PathBuf,
    pub count: usize,
    pub bytes: u64,
}

/// Streams records into a spill file with length-prefix framing.
pub(crate) struct SpillWriter {
    writer: BufWriter<File>,
    path: PathBuf,
    count: usize,
    bytes: u64,
    scratch: Vec<u8>,
}

impl SpillWriter {
    pub fn create(path: PathBuf) -> Result<Self, DataflowError> {
        let file = File::create(&path).map_err(|e| DataflowError::io("creating spill file", e))?;
        Ok(SpillWriter {
            writer: BufWriter::new(file),
            path,
            count: 0,
            bytes: 0,
            scratch: Vec::new(),
        })
    }

    pub fn write<T: Record>(&mut self, record: &T) -> Result<(), DataflowError> {
        self.scratch.clear();
        record.encode(&mut self.scratch);
        let len = self.scratch.len() as u32;
        self.writer
            .write_all(&len.to_le_bytes())
            .and_then(|()| self.writer.write_all(&self.scratch))
            .map_err(|e| DataflowError::io("writing spill record", e))?;
        self.count += 1;
        self.bytes += 4 + u64::from(len);
        Ok(())
    }

    pub fn finish(mut self) -> Result<SpillFile, DataflowError> {
        self.writer.flush().map_err(|e| DataflowError::io("flushing spill file", e))?;
        Ok(SpillFile { path: self.path, count: self.count, bytes: self.bytes })
    }
}

/// Streams records back out of a spill file.
pub(crate) struct SpillReader<T: Record> {
    reader: BufReader<File>,
    remaining: usize,
    scratch: Vec<u8>,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Record> SpillReader<T> {
    pub fn open(file: &SpillFile) -> Result<Self, DataflowError> {
        let handle =
            File::open(&file.path).map_err(|e| DataflowError::io("opening spill file", e))?;
        // Codec read traffic: the whole file streams back through the
        // decoder, so the open (not each record) charges the counter.
        submod_obs::counter!("dataflow.spill.bytes_read").add(file.bytes);
        Ok(SpillReader {
            reader: BufReader::new(handle),
            remaining: file.count,
            scratch: Vec::new(),
            _marker: std::marker::PhantomData,
        })
    }

    /// Reads the next record, or `None` when the file is exhausted.
    pub fn next_record(&mut self) -> Result<Option<T>, DataflowError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut len_buf = [0u8; 4];
        self.reader
            .read_exact(&mut len_buf)
            .map_err(|e| DataflowError::io("reading spill record length", e))?;
        let len = u32::from_le_bytes(len_buf) as usize;
        self.scratch.resize(len, 0);
        self.reader
            .read_exact(&mut self.scratch)
            .map_err(|e| DataflowError::io("reading spill record body", e))?;
        let mut slice = self.scratch.as_slice();
        let record = T::decode(&mut slice)?;
        if !slice.is_empty() {
            return Err(DataflowError::codec("trailing bytes in framed spill record"));
        }
        self.remaining -= 1;
        Ok(Some(record))
    }

    /// Reads every remaining record into a vector.
    pub fn read_all(mut self) -> Result<Vec<T>, DataflowError> {
        let mut out = Vec::with_capacity(self.remaining);
        while let Some(record) = self.next_record()? {
            out.push(record);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SpillStore {
        SpillStore::create(&std::env::temp_dir()).expect("create store")
    }

    #[test]
    fn write_read_roundtrip() {
        let store = store();
        let mut writer = SpillWriter::create(store.fresh_path()).unwrap();
        for i in 0..100u64 {
            writer.write(&(i, i as f32 * 0.5)).unwrap();
        }
        let file = writer.finish().unwrap();
        assert_eq!(file.count, 100);
        assert!(file.bytes > 0);
        let records: Vec<(u64, f32)> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert_eq!(records.len(), 100);
        assert_eq!(records[7], (7, 3.5));
    }

    #[test]
    fn streaming_read_stops_at_count() {
        let store = store();
        let mut writer = SpillWriter::create(store.fresh_path()).unwrap();
        writer.write(&1u32).unwrap();
        writer.write(&2u32).unwrap();
        let file = writer.finish().unwrap();
        let mut reader: SpillReader<u32> = SpillReader::open(&file).unwrap();
        assert_eq!(reader.next_record().unwrap(), Some(1));
        assert_eq!(reader.next_record().unwrap(), Some(2));
        assert_eq!(reader.next_record().unwrap(), None);
        assert_eq!(reader.next_record().unwrap(), None);
    }

    #[test]
    fn empty_file_roundtrip() {
        let store = store();
        let writer = SpillWriter::create(store.fresh_path()).unwrap();
        let file = writer.finish().unwrap();
        assert_eq!(file.count, 0);
        let records: Vec<u64> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert!(records.is_empty());
    }

    #[test]
    fn store_drop_removes_directory() {
        let dir;
        {
            let store = store();
            dir = store.fresh_path().parent().unwrap().to_path_buf();
            let mut writer = SpillWriter::create(store.fresh_path()).unwrap();
            writer.write(&1u8).unwrap();
            writer.finish().unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "spill dir must be cleaned up on drop");
    }

    #[test]
    fn variable_length_records_roundtrip() {
        let store = store();
        let mut writer = SpillWriter::create(store.fresh_path()).unwrap();
        let values = vec![vec![1u64; 1], vec![2u64; 50], vec![], vec![3u64; 7]];
        for v in &values {
            writer.write(v).unwrap();
        }
        let file = writer.finish().unwrap();
        let back: Vec<Vec<u64>> = SpillReader::open(&file).unwrap().read_all().unwrap();
        assert_eq!(back, values);
    }
}
