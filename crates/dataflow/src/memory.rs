//! Per-worker memory budgets and pipeline-wide metrics.
//!
//! The entire point of the paper's systems design is that **no machine ever
//! holds the full subset (or ground set) in DRAM**. The engine enforces
//! that claim mechanically: every worker buffers output against a byte
//! budget and spills the buffer to disk when it would overflow.
//! [`PipelineMetrics`] records spills, shuffled records, and the peak
//! buffer size so tests can assert the budget held.

use std::sync::atomic::{AtomicU64, Ordering};

/// Memory budget granted to each (simulated) worker, in bytes.
///
/// ```
/// use submod_dataflow::MemoryBudget;
///
/// let budget = MemoryBudget::bytes(64 * 1024);
/// assert_eq!(budget.per_worker_bytes(), 64 * 1024);
/// assert!(!budget.is_unlimited());
/// assert!(MemoryBudget::unlimited().is_unlimited());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryBudget {
    per_worker: u64,
}

impl MemoryBudget {
    /// A budget of `bytes` per worker.
    pub const fn bytes(bytes: u64) -> Self {
        MemoryBudget { per_worker: bytes }
    }

    /// A budget of `mib` mebibytes per worker.
    pub const fn mib(mib: u64) -> Self {
        MemoryBudget { per_worker: mib * 1024 * 1024 }
    }

    /// No limit: workers never spill.
    pub const fn unlimited() -> Self {
        MemoryBudget { per_worker: u64::MAX }
    }

    /// The per-worker limit in bytes.
    pub const fn per_worker_bytes(&self) -> u64 {
        self.per_worker
    }

    /// Returns `true` if the budget never forces spills.
    pub const fn is_unlimited(&self) -> bool {
        self.per_worker == u64::MAX
    }

    /// Returns `true` if a buffer of `bytes` exceeds the budget.
    pub const fn exceeded_by(&self, bytes: u64) -> bool {
        bytes > self.per_worker
    }
}

impl Default for MemoryBudget {
    /// Defaults to unlimited (spill only when asked to).
    fn default() -> Self {
        MemoryBudget::unlimited()
    }
}

/// Live counters shared by all workers of a pipeline.
#[derive(Debug, Default)]
pub(crate) struct MetricsInner {
    pub records_processed: AtomicU64,
    pub records_shuffled: AtomicU64,
    pub bytes_spilled: AtomicU64,
    pub bytes_spilled_disk: AtomicU64,
    pub spill_files: AtomicU64,
    pub stages_fused: AtomicU64,
    pub peak_worker_bytes: AtomicU64,
    pub external_merges: AtomicU64,
    pub bytes_broadcast: AtomicU64,
    pub combiner_flushes: AtomicU64,
}

impl MetricsInner {
    /// Records one spill file: `raw` logical payload bytes (budget
    /// semantics) and `disk` bytes actually written (post-compression).
    pub fn record_spill(&self, raw: u64, disk: u64) {
        self.bytes_spilled.fetch_add(raw, Ordering::Relaxed);
        self.bytes_spilled_disk.fetch_add(disk, Ordering::Relaxed);
        self.spill_files.fetch_add(1, Ordering::Relaxed);
        submod_obs::counter!("dataflow.spill.bytes_raw").add(raw);
        submod_obs::counter!("dataflow.spill.bytes_written").add(disk);
        submod_obs::counter!("dataflow.spill.files").incr();
        submod_obs::histogram!("dataflow.spill.file_bytes").record(raw);
    }

    /// Records the execution of one fused operator stage of `ops`
    /// chained transforms.
    pub fn record_fused_stage(&self, ops: u64) {
        self.stages_fused.fetch_add(1, Ordering::Relaxed);
        submod_obs::counter!("dataflow.stages_fused").incr();
        submod_obs::histogram!("dataflow.fused_stage_ops").record(ops);
    }

    pub fn record_broadcast(&self, bytes: u64) {
        self.bytes_broadcast.fetch_add(bytes, Ordering::Relaxed);
        submod_obs::counter!("dataflow.broadcast.bytes").add(bytes);
    }

    pub fn observe_worker_bytes(&self, bytes: u64) {
        self.peak_worker_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    pub fn record_processed(&self, records: u64) {
        self.records_processed.fetch_add(records, Ordering::Relaxed);
        submod_obs::counter!("dataflow.records_processed").add(records);
    }

    pub fn record_shuffled(&self, records: u64) {
        self.records_shuffled.fetch_add(records, Ordering::Relaxed);
        submod_obs::counter!("dataflow.records_shuffled").add(records);
    }

    pub fn record_external_merge(&self) {
        self.external_merges.fetch_add(1, Ordering::Relaxed);
        submod_obs::counter!("dataflow.external_merges").incr();
    }

    pub fn record_combiner_flush(&self) {
        self.combiner_flushes.fetch_add(1, Ordering::Relaxed);
        submod_obs::counter!("dataflow.combiner_flushes").incr();
    }

    pub fn snapshot(&self) -> PipelineMetrics {
        // `observe_worker_bytes` runs per record, so the registry mirror
        // happens here, at read granularity, instead of on the hot path.
        submod_obs::gauge!("dataflow.worker_bytes_peak")
            .fetch_max(self.peak_worker_bytes.load(Ordering::Relaxed));
        PipelineMetrics {
            records_processed: self.records_processed.load(Ordering::Relaxed),
            records_shuffled: self.records_shuffled.load(Ordering::Relaxed),
            bytes_spilled: self.bytes_spilled.load(Ordering::Relaxed),
            bytes_spilled_disk: self.bytes_spilled_disk.load(Ordering::Relaxed),
            spill_files: self.spill_files.load(Ordering::Relaxed),
            stages_fused: self.stages_fused.load(Ordering::Relaxed),
            peak_worker_bytes: self.peak_worker_bytes.load(Ordering::Relaxed),
            external_merges: self.external_merges.load(Ordering::Relaxed),
            bytes_broadcast: self.bytes_broadcast.load(Ordering::Relaxed),
            combiner_flushes: self.combiner_flushes.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of a pipeline's resource counters.
///
/// Obtained from [`crate::Pipeline::metrics`]. The "larger-than-memory"
/// integration tests assert `peak_worker_bytes` stays within the configured
/// budget while `bytes_spilled > 0` proves the spill path actually ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineMetrics {
    /// Records consumed by map-like transforms.
    pub records_processed: u64,
    /// Records moved through a shuffle (group / co-group).
    pub records_shuffled: u64,
    /// Total logical (pre-compression) bytes routed through spill files.
    pub bytes_spilled: u64,
    /// Bytes spill files actually occupy on disk (post-compression).
    pub bytes_spilled_disk: u64,
    /// Number of spill files created.
    pub spill_files: u64,
    /// Number of fused operator stages executed (see
    /// [`crate::PCollection::map`] — chained transforms run as one pass).
    pub stages_fused: u64,
    /// Largest in-flight buffer any worker held, in bytes.
    pub peak_worker_bytes: u64,
    /// Number of groupings that needed an external sort-merge.
    pub external_merges: u64,
    /// Bytes replicated to workers as broadcast side-inputs.
    pub bytes_broadcast: u64,
    /// Number of map-side combiner tables flushed early by the budget
    /// (see [`crate::PCollection::aggregate_per_key`]).
    pub combiner_flushes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_constructors() {
        assert_eq!(MemoryBudget::mib(2).per_worker_bytes(), 2 * 1024 * 1024);
        assert!(MemoryBudget::unlimited().is_unlimited());
        assert_eq!(MemoryBudget::default(), MemoryBudget::unlimited());
    }

    #[test]
    fn exceeded_by_compares_strictly() {
        let b = MemoryBudget::bytes(100);
        assert!(!b.exceeded_by(100));
        assert!(b.exceeded_by(101));
        assert!(!MemoryBudget::unlimited().exceeded_by(u64::MAX - 1));
    }

    #[test]
    fn metrics_accumulate() {
        let inner = MetricsInner::default();
        inner.record_spill(100, 40);
        inner.record_spill(50, 50);
        inner.observe_worker_bytes(10);
        inner.observe_worker_bytes(500);
        inner.observe_worker_bytes(20);
        inner.record_fused_stage(3);
        let snap = inner.snapshot();
        assert_eq!(snap.bytes_spilled, 150);
        assert_eq!(snap.bytes_spilled_disk, 90);
        assert_eq!(snap.spill_files, 2);
        assert_eq!(snap.peak_worker_bytes, 500);
        assert_eq!(snap.stages_fused, 1);
    }
}
