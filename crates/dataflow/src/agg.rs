//! Whole-collection and per-key aggregations: folds, counts, extrema,
//! the budget-aware keyed combiner, and the distributed k-th largest
//! selection used by the bounding thresholds.

use crate::codec::Record;
use crate::pipeline::{Shard, ShardSink};
use crate::{DataflowError, PCollection};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::hash::Hash;

impl<T: Record> PCollection<T> {
    /// Folds every record into an accumulator per shard, then merges the
    /// shard accumulators — the engine's `Combine.globally`.
    ///
    /// `fold` must be consistent with `merge` (the usual commutative-monoid
    /// contract) for the result to be independent of sharding.
    ///
    /// # Errors
    ///
    /// Returns an error if a spilled shard cannot be read.
    pub fn aggregate<Acc, F, M>(&self, init: Acc, fold: F, merge: M) -> Result<Acc, DataflowError>
    where
        Acc: Clone + Send + Sync,
        F: Fn(Acc, T) -> Acc + Send + Sync,
        M: Fn(Acc, Acc) -> Acc + Send + Sync,
    {
        let partials: Vec<Acc> = self
            .ready_shards()?
            .par_iter()
            .map(|shard| {
                let mut acc = init.clone();
                // Manual fold because `for_each` borrows mutably.
                let mut slot = Some(acc);
                shard.for_each(|record| {
                    let cur = slot.take().expect("accumulator present");
                    slot = Some(fold(cur, record));
                    Ok(())
                })?;
                acc = slot.expect("accumulator present");
                Ok(acc)
            })
            .collect::<Result<_, DataflowError>>()?;
        Ok(partials.into_iter().fold(init, merge))
    }
}

impl PCollection<f64> {
    /// Sum of all records.
    ///
    /// # Errors
    ///
    /// Returns an error if a spilled shard cannot be read.
    pub fn sum(&self) -> Result<f64, DataflowError> {
        self.aggregate(0.0, |a, x| a + x, |a, b| a + b)
    }

    /// Minimum record, or `None` for an empty collection.
    ///
    /// # Errors
    ///
    /// Returns an error if a spilled shard cannot be read.
    pub fn min(&self) -> Result<Option<f64>, DataflowError> {
        self.aggregate(
            None,
            |a: Option<f64>, x| Some(a.map_or(x, |m| m.min(x))),
            |a, b| match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            },
        )
    }

    /// Maximum record, or `None` for an empty collection.
    ///
    /// # Errors
    ///
    /// Returns an error if a spilled shard cannot be read.
    pub fn max(&self) -> Result<Option<f64>, DataflowError> {
        self.aggregate(
            None,
            |a: Option<f64>, x| Some(a.map_or(x, |m| m.max(x))),
            |a, b| match (a, b) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (x, y) => x.or(y),
            },
        )
    }

    /// The `k`-th largest record (1-based), computed with O(1) worker
    /// memory via bisection over the order-preserving bit representation of
    /// `f64` — at most 64 counting passes over the collection.
    ///
    /// The bounding algorithm uses this for its `U_max^k` / `U_min^k`
    /// thresholds (Lemmas 4.3 / 4.4) without ever materializing the utility
    /// vector on one machine.
    ///
    /// # Errors
    ///
    /// Returns an error if `k == 0`, `k` exceeds the number of records, the
    /// collection contains NaN, or spill I/O fails.
    pub fn kth_largest(&self, k: u64) -> Result<f64, DataflowError> {
        let _span = submod_obs::span("dataflow.kth_largest");
        if k == 0 {
            return Err(DataflowError::invalid("k must be at least 1"));
        }
        // Fast path: when every shard is memory-resident after the
        // barrier, an `f64` shard *is* a contiguous column — the
        // bisection scans the slices directly instead of dispatching
        // each of its ~64 counting passes through the generic
        // clone-per-record aggregate fold. Identical math, identical
        // result, bit for bit.
        let shards = self.ready_shards()?;
        if shards.iter().all(|s| matches!(s, Shard::InMemory(_))) {
            let slices: Vec<&[f64]> = shards
                .iter()
                .map(|s| match s {
                    Shard::InMemory(v) => v.as_slice(),
                    Shard::Spilled(_) => unreachable!("checked all-resident"),
                })
                .collect();
            return kth_largest_slices(&slices, k);
        }
        let stats = self.aggregate(
            (0u64, u64::MAX, 0u64, false),
            |(count, lo, hi, nan), x| {
                if x.is_nan() {
                    (count, lo, hi, true)
                } else {
                    let o = ordered_bits(x);
                    (count + 1, lo.min(o), hi.max(o), nan)
                }
            },
            |(c1, l1, h1, n1), (c2, l2, h2, n2)| (c1 + c2, l1.min(l2), h1.max(h2), n1 || n2),
        )?;
        let (count, mut lo, mut hi, has_nan) = stats;
        if has_nan {
            return Err(DataflowError::invalid("kth_largest is undefined with NaN records"));
        }
        if k > count {
            return Err(DataflowError::invalid(format!(
                "k = {k} exceeds the {count} records in the collection"
            )));
        }
        // Largest threshold t with |{x : x ≥ t}| ≥ k. count_ge is
        // non-increasing in t, and the answer is attained at an element.
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            let ge =
                self.aggregate(0u64, |a, x| a + u64::from(ordered_bits(x) >= mid), |a, b| a + b)?;
            if ge >= k {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Ok(from_ordered_bits(lo))
    }
}

impl<K, V> PCollection<(K, V)>
where
    K: Record + Ord + Hash + Eq,
    V: Record,
{
    /// Folds the values of each key into an accumulator with map-side
    /// combining — the engine's `Combine.perKey` with a partial-aggregation
    /// stage, the keyed analogue of [`PCollection::aggregate`].
    ///
    /// Each shard folds its records into a per-key table; when the table
    /// would exceed the worker's [`crate::MemoryBudget`] it is flushed as
    /// partial `(key, accumulator)` records (which spill to disk like any
    /// shuffle buffer), so a worker never holds more than one budget of
    /// accumulators no matter how many distinct keys pass through it. The
    /// partials are then shuffled and merged.
    ///
    /// Determinism: within a shard, each key's values fold in record
    /// order; partials merge in the shuffle's (shard, sequence) order. The
    /// result is bitwise-identical at any thread count. For `merge` to
    /// also make the result independent of *where* flushes land, it must
    /// be consistent with `fold` (the usual combiner contract); a key
    /// whose records all sit in one shard and never straddle a flush is
    /// folded exactly left-to-right.
    ///
    /// # Errors
    ///
    /// Returns an error if spill I/O fails.
    pub fn aggregate_per_key<Acc, F, M>(
        &self,
        init: Acc,
        fold: F,
        merge: M,
    ) -> Result<PCollection<(K, Acc)>, DataflowError>
    where
        Acc: Record,
        F: Fn(Acc, V) -> Acc + Send + Sync,
        M: Fn(Acc, Acc) -> Acc + Send + Sync,
    {
        let _span = submod_obs::span("dataflow.aggregate_per_key");
        let ctx = self.ctx().clone();
        // --- Map side: per-shard combiner tables, flushed on budget. ---
        let partial_groups: Vec<Vec<Shard<(K, Acc)>>> = self
            .ready_shards()?
            .par_iter()
            .map(|shard| {
                let mut sink = ShardSink::new(&ctx);
                let mut table: BTreeMap<K, Acc> = BTreeMap::new();
                let mut table_bytes = 0u64;
                shard.for_each(|(k, v)| {
                    let (old_bytes, acc) = match table.remove(&k) {
                        Some(acc) => ((k.approx_bytes() + acc.approx_bytes()) as u64, acc),
                        None => (0, init.clone()),
                    };
                    let acc = fold(acc, v);
                    let new_bytes = (k.approx_bytes() + acc.approx_bytes()) as u64;
                    table_bytes = table_bytes - old_bytes + new_bytes;
                    table.insert(k, acc);
                    // Peak tracking happens at the flush sites (and the
                    // shard tail below) where the table is at its
                    // largest, not per record on a shared atomic.
                    if ctx.budget.exceeded_by(table_bytes) {
                        ctx.metrics.observe_worker_bytes(table_bytes);
                        ctx.metrics.record_combiner_flush();
                        for entry in std::mem::take(&mut table) {
                            sink.push(entry)?;
                        }
                        table_bytes = 0;
                    }
                    Ok(())
                })?;
                ctx.metrics.observe_worker_bytes(table_bytes);
                for entry in table {
                    sink.push(entry)?;
                }
                sink.finish()
            })
            .collect::<Result<_, _>>()?;
        let partials = PCollection::from_parts(ctx, partial_groups.into_iter().flatten().collect());

        // --- Reduce side: merge the partials of each key in the
        // shuffle's deterministic (shard, sequence) order. ---
        partials.group_by_key()?.map_eager(move |(k, accs)| {
            let mut iter = accs.into_iter();
            let first = iter.next().expect("groups are never empty");
            (k, iter.fold(first, &merge))
        })
    }
}

impl<T> PCollection<T>
where
    T: Record + Ord + Hash + Eq,
{
    /// Removes duplicate records via the keyed combiner: duplicates are
    /// collapsed map-side before the shuffle, so heavy duplication never
    /// inflates a group buffer.
    ///
    /// # Errors
    ///
    /// Returns an error if spill I/O fails.
    pub fn distinct(&self) -> Result<PCollection<T>, DataflowError> {
        self.map(|t| (t, ()))?.aggregate_per_key((), |(), ()| (), |(), ()| ())?.map(|(t, ())| t)
    }
}

/// Returns `true` when the `challenger` `(id, score)` pair beats the
/// `incumbent` under the engine's argmax order: larger score first,
/// smaller id on score ties.
///
/// This is the one comparator behind [`PCollection::argmax_per_key`];
/// driver-side reference implementations (e.g. the in-memory distributed
/// greedy) use it verbatim so both sides resolve every tie identically.
/// Scores compare with plain `>` / `==` — exactly the priority order of
/// `submod_core`'s addressable queue — so `-0.0` and `+0.0` tie and fall
/// through to the id. Scores must be NaN-free: a NaN never beats and is
/// never beaten, which would make the winner depend on visit order.
#[inline]
pub fn argmax_prefers(incumbent: (u64, f64), challenger: (u64, f64)) -> bool {
    challenger.1 > incumbent.1 || (challenger.1 == incumbent.1 && challenger.0 < incumbent.0)
}

impl<K> PCollection<(K, (u64, f64))>
where
    K: Record + Ord + Hash + Eq,
{
    /// Per-key top-1 selection: for every key, the `(id, score)` record
    /// with the largest score, ties broken toward the smallest id (see
    /// [`argmax_prefers`]) — the engine's `Max.perKey`.
    ///
    /// Runs on the budget-aware keyed combiner, so each worker holds one
    /// `(key, best)` entry per live key and the result is independent of
    /// sharding, thread count, and combiner flushes. The distributed
    /// greedy drivers use this to pick each machine's best marginal-gain
    /// candidate without the driver ever seeing the scored pool.
    ///
    /// Scores must be NaN-free; a NaN score makes its key's winner
    /// depend on scheduling (NaN never compares greater).
    ///
    /// # Errors
    ///
    /// Returns an error if spill I/O fails.
    #[allow(clippy::type_complexity)]
    pub fn argmax_per_key(&self) -> Result<PCollection<(K, (u64, f64))>, DataflowError> {
        // Accumulator: (seen, id, score); `seen = 0` is the empty state,
        // so no sentinel id/score can ever shadow a real record.
        self.aggregate_per_key(
            (0u8, 0u64, 0.0f64),
            |acc, (id, score)| {
                if acc.0 == 0 || argmax_prefers((acc.1, acc.2), (id, score)) {
                    (1, id, score)
                } else {
                    acc
                }
            },
            |a, b| {
                if a.0 == 0 {
                    b
                } else if b.0 == 0 || !argmax_prefers((a.1, a.2), (b.1, b.2)) {
                    a
                } else {
                    b
                }
            },
        )?
        .map(|(k, (_, id, score))| (k, (id, score)))
    }
}

/// In-memory twin of the aggregate-based `kth_largest` bisection: one
/// validation scan over the contiguous `&[f64]` columns, then a single
/// quickselect over a scratch copy. `total_cmp` order is exactly the
/// `ordered_bits` order the bisection walks, and elements that compare
/// equal under it share one bit pattern, so the selected value matches
/// the bisection bit for bit — without the bisection's ~64 per-iteration
/// pool dispatches, which dominate small collections.
fn kth_largest_slices(slices: &[&[f64]], k: u64) -> Result<f64, DataflowError> {
    let mut count = 0u64;
    for slice in slices {
        for &x in *slice {
            if x.is_nan() {
                return Err(DataflowError::invalid("kth_largest is undefined with NaN records"));
            }
            count += 1;
        }
    }
    if k > count {
        return Err(DataflowError::invalid(format!(
            "k = {k} exceeds the {count} records in the collection"
        )));
    }
    let mut scratch: Vec<f64> = Vec::with_capacity(count as usize);
    for slice in slices {
        scratch.extend_from_slice(slice);
    }
    // The k-th largest (1-based) sits at ascending index `count - k`.
    let index = (count - k) as usize;
    let (_, kth, _) = scratch.select_nth_unstable_by(index, f64::total_cmp);
    Ok(*kth)
}

/// Maps `f64` to `u64` such that the unsigned order matches the total order
/// of the floats (negative numbers flip entirely, positives flip the sign
/// bit).
fn ordered_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits ^ (1 << 63)
    }
}

/// Inverse of [`ordered_bits`].
fn from_ordered_bits(o: u64) -> f64 {
    if o >> 63 == 1 {
        f64::from_bits(o ^ (1 << 63))
    } else {
        f64::from_bits(!o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemoryBudget, Pipeline};

    #[test]
    fn ordered_bits_preserve_order() {
        let values = [-1e300, -2.5, -0.0, 0.0, 1e-300, 2.5, 1e300];
        for pair in values.windows(2) {
            assert!(ordered_bits(pair[0]) <= ordered_bits(pair[1]), "{pair:?}");
        }
        for &v in &values {
            assert_eq!(from_ordered_bits(ordered_bits(v)), v);
        }
    }

    #[test]
    fn aggregate_counts_and_sums() {
        let p = Pipeline::new(4).unwrap();
        let pc = p.from_vec((1u64..=100).collect());
        let sum = pc.aggregate(0u64, |a, x| a + x, |a, b| a + b).unwrap();
        assert_eq!(sum, 5050);
    }

    #[test]
    fn float_extrema_and_sum() {
        let p = Pipeline::new(3).unwrap();
        let pc = p.from_vec(vec![3.0f64, -1.0, 2.5, 10.0, 0.0]);
        assert_eq!(pc.min().unwrap(), Some(-1.0));
        assert_eq!(pc.max().unwrap(), Some(10.0));
        assert!((pc.sum().unwrap() - 14.5).abs() < 1e-12);
        let empty = p.from_vec(Vec::<f64>::new());
        assert_eq!(empty.min().unwrap(), None);
        assert_eq!(empty.max().unwrap(), None);
    }

    #[test]
    fn kth_largest_matches_sorting() {
        let p = Pipeline::new(4).unwrap();
        let values: Vec<f64> = (0..500).map(|i| ((i * 37 % 501) as f64) / 7.0 - 30.0).collect();
        let pc = p.from_vec(values.clone());
        let mut sorted = values;
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for k in [1usize, 2, 10, 250, 499, 500] {
            let got = pc.kth_largest(k as u64).unwrap();
            assert_eq!(got, sorted[k - 1], "k = {k}");
        }
    }

    #[test]
    fn kth_largest_with_duplicates() {
        let p = Pipeline::new(2).unwrap();
        let pc = p.from_vec(vec![5.0f64, 5.0, 5.0, 1.0]);
        assert_eq!(pc.kth_largest(1).unwrap(), 5.0);
        assert_eq!(pc.kth_largest(3).unwrap(), 5.0);
        assert_eq!(pc.kth_largest(4).unwrap(), 1.0);
    }

    #[test]
    fn kth_largest_argument_validation() {
        let p = Pipeline::new(2).unwrap();
        let pc = p.from_vec(vec![1.0f64, 2.0]);
        assert!(pc.kth_largest(0).is_err());
        assert!(pc.kth_largest(3).is_err());
        let with_nan = p.from_vec(vec![1.0f64, f64::NAN]);
        assert!(with_nan.kth_largest(1).is_err());
    }

    #[test]
    fn kth_largest_with_negatives_and_spills() {
        let p =
            Pipeline::builder().workers(2).memory_budget(MemoryBudget::bytes(256)).build().unwrap();
        let values: Vec<f64> = (0..2000).map(|i| (i as f64) - 1000.0).collect();
        // Route through a transform so the data lands in budget-checked
        // sinks (a raw `from_vec` shard is exempt from the budget).
        let pc = p.from_vec(values).map(|x| x).unwrap();
        assert_eq!(pc.kth_largest(1).unwrap(), 999.0);
        assert_eq!(pc.kth_largest(2000).unwrap(), -1000.0);
        assert_eq!(pc.kth_largest(1000).unwrap(), 0.0);
        assert!(p.metrics().bytes_spilled > 0);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let p = Pipeline::new(3).unwrap();
        let pc = p.from_vec(vec![1u64, 2, 2, 3, 3, 3]);
        let mut out = pc.distinct().unwrap().collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn aggregate_per_key_sums_match_reduce_per_key() {
        let p = Pipeline::new(4).unwrap();
        let records: Vec<(u64, u64)> = (0..1000).map(|i| (i % 13, i)).collect();
        let mut combined = p
            .from_vec(records.clone())
            .aggregate_per_key(0u64, |a, v| a + v, |a, b| a + b)
            .unwrap()
            .collect()
            .unwrap();
        combined.sort_unstable();
        let mut reduced =
            p.from_vec(records).reduce_per_key(|a, b| a + b).unwrap().collect().unwrap();
        reduced.sort_unstable();
        assert_eq!(combined, reduced);
    }

    #[test]
    fn aggregate_per_key_counts_under_tiny_budget() {
        let p =
            Pipeline::builder().workers(3).memory_budget(MemoryBudget::bytes(256)).build().unwrap();
        let records: Vec<(u64, u64)> = (0..20_000).map(|i| (i % 500, 1)).collect();
        let mut out = p
            .from_vec(records)
            .aggregate_per_key(0u64, |a, v| a + v, |a, b| a + b)
            .unwrap()
            .collect()
            .unwrap();
        out.sort_unstable();
        let expected: Vec<(u64, u64)> = (0..500).map(|k| (k, 40)).collect();
        assert_eq!(out, expected);
        let m = p.metrics();
        assert!(m.combiner_flushes > 0, "tiny budget must flush the combiner table");
    }

    #[test]
    fn aggregate_per_key_folds_values_in_record_order() {
        // A single shard, order-sensitive accumulator: the fold must see
        // values exactly in record order.
        let p = Pipeline::new(1).unwrap();
        let records: Vec<(u64, u64)> = vec![(1, 10), (2, 5), (1, 20), (1, 30), (2, 6)];
        let mut out = p
            .from_vec(records)
            .aggregate_per_key(
                Vec::new(),
                |mut a: Vec<u64>, v| {
                    a.push(v);
                    a
                },
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .unwrap()
            .collect()
            .unwrap();
        out.sort_by_key(|(k, _)| *k);
        assert_eq!(out, vec![(1, vec![10, 20, 30]), (2, vec![5, 6])]);
    }

    #[test]
    fn argmax_per_key_picks_largest_score_smallest_id() {
        let p = Pipeline::new(3).unwrap();
        let records: Vec<(u64, (u64, f64))> = vec![
            (0, (5, 1.0)),
            (0, (3, 2.0)),
            (0, (9, 2.0)), // loses the tie to id 3
            (1, (7, -1.0)),
            (1, (2, -1.0)), // wins the tie
        ];
        let mut out = p.from_vec(records).argmax_per_key().unwrap().collect().unwrap();
        out.sort_by_key(|&(k, _)| k);
        assert_eq!(out, vec![(0, (3, 2.0)), (1, (2, -1.0))]);
    }

    #[test]
    fn argmax_per_key_signed_zero_ties_break_on_id() {
        // `-0.0 == 0.0` under the argmax order (matching the addressable
        // priority queue), so the smaller id wins and keeps its own bits.
        let p = Pipeline::new(2).unwrap();
        let records: Vec<(u64, (u64, f64))> = vec![(0, (4, 0.0)), (0, (1, -0.0))];
        let out = p.from_vec(records).argmax_per_key().unwrap().collect().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert_eq!(out[0].1 .0, 1);
        assert_eq!(out[0].1 .1.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn argmax_per_key_under_tiny_budget_flushes() {
        let p =
            Pipeline::builder().workers(3).memory_budget(MemoryBudget::bytes(128)).build().unwrap();
        let records: Vec<(u64, (u64, f64))> =
            (0..5000).map(|i| (i % 40, (i, ((i * 31) % 997) as f64))).collect();
        let mut out = p.from_vec(records.clone()).argmax_per_key().unwrap().collect().unwrap();
        out.sort_by_key(|&(k, _)| k);
        let mut expected: std::collections::BTreeMap<u64, (u64, f64)> = Default::default();
        for (k, (id, score)) in records {
            let best = expected.entry(k).or_insert((id, score));
            if argmax_prefers(*best, (id, score)) {
                *best = (id, score);
            }
        }
        assert_eq!(out, expected.into_iter().collect::<Vec<_>>());
        assert!(p.metrics().combiner_flushes > 0, "tiny budget must flush the combiner");
    }

    #[test]
    fn argmax_prefers_is_the_pq_order() {
        assert!(argmax_prefers((1, 1.0), (9, 2.0)));
        assert!(!argmax_prefers((1, 1.0), (9, 0.5)));
        assert!(argmax_prefers((9, 1.0), (1, 1.0)));
        assert!(!argmax_prefers((1, 1.0), (9, 1.0)));
        // NaN neither beats nor is beaten.
        assert!(!argmax_prefers((1, 1.0), (0, f64::NAN)));
        assert!(!argmax_prefers((1, f64::NAN), (0, f64::NAN)));
    }

    #[test]
    fn aggregate_per_key_empty_collection() {
        let p = Pipeline::new(2).unwrap();
        let pc = p.from_vec(Vec::<(u64, u64)>::new());
        assert_eq!(
            pc.aggregate_per_key(0u64, |a, v| a + v, |a, b| a + b).unwrap().count().unwrap(),
            0
        );
    }
}
