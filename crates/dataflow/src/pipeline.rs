//! Pipeline construction and shard plumbing.

use crate::codec::Record;
use crate::memory::{MemoryBudget, MetricsInner, PipelineMetrics};
use crate::spill::{spill_columns, SpillFile, SpillReader, SpillStore, SpillWriter};
use crate::{DataflowError, PCollection};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Internal pipeline state shared by every [`PCollection`] derived from it.
#[derive(Debug)]
pub(crate) struct Ctx {
    pub workers: usize,
    pub budget: MemoryBudget,
    pub metrics: MetricsInner,
    pub spill: SpillStore,
    /// Operator fusion: chained map/filter/flat_map defer into one pass
    /// per shard, executed at the next barrier.
    pub fusion: bool,
    /// LZ-compress spill files (budget semantics are unaffected — the
    /// logical byte count still drives spill decisions and metrics).
    pub spill_compress: bool,
}

// Tri-state process-wide defaults: 0 = unset (fall back to the
// environment), 1 = off, 2 = on. Mutating the environment from Rust is
// unsound with concurrent readers, so CLI flags set these instead.
static FUSION_DEFAULT: AtomicU8 = AtomicU8::new(0);
static SPILL_COMPRESS_DEFAULT: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide operator-fusion default, overriding the
/// `SUBMOD_FUSION` environment variable (per-pipeline
/// [`PipelineBuilder::fusion`] still wins). Lets CLI `--fusion off|on`
/// flags A/B the optimization without env plumbing.
pub fn set_fusion_default(on: bool) {
    FUSION_DEFAULT.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Sets the process-wide spill-compression default, overriding the
/// `SUBMOD_SPILL_COMPRESS` environment variable (per-pipeline
/// [`PipelineBuilder::spill_compression`] still wins).
pub fn set_spill_compression_default(on: bool) {
    SPILL_COMPRESS_DEFAULT.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

fn resolve_flag(
    builder: Option<bool>,
    global: &AtomicU8,
    env_var: &str,
    env_is_on: impl Fn(&str) -> bool,
    default: bool,
) -> bool {
    if let Some(v) = builder {
        return v;
    }
    match global.load(Ordering::Relaxed) {
        1 => return false,
        2 => return true,
        _ => {}
    }
    match std::env::var(env_var) {
        Ok(v) => env_is_on(&v.to_ascii_lowercase()),
        Err(_) => default,
    }
}

fn resolve_fusion(builder: Option<bool>) -> bool {
    // SUBMOD_FUSION=off|0|false disables; anything else (or unset) is on.
    resolve_flag(
        builder,
        &FUSION_DEFAULT,
        "SUBMOD_FUSION",
        |v| !matches!(v, "off" | "0" | "false"),
        true,
    )
}

fn resolve_spill_compress(builder: Option<bool>) -> bool {
    // SUBMOD_SPILL_COMPRESS=lz (or on|1|true) enables; default off.
    resolve_flag(
        builder,
        &SPILL_COMPRESS_DEFAULT,
        "SUBMOD_SPILL_COMPRESS",
        |v| matches!(v, "lz" | "on" | "1" | "true"),
        false,
    )
}

/// A Beam-style dataflow pipeline with `w` simulated workers, each holding
/// at most a fixed number of buffered bytes before spilling to disk.
///
/// The paper implements bounding and scoring "using the Apache Beam
/// programming model" (§5) so that *"the set does not need to fit into
/// DRAM"*. [`Pipeline`] reproduces that substrate: transforms process
/// shards in parallel, shuffles hash-partition records across workers, and
/// every worker-side buffer is accounted against the [`MemoryBudget`].
///
/// ```
/// use submod_dataflow::{MemoryBudget, Pipeline};
///
/// # fn main() -> Result<(), submod_dataflow::DataflowError> {
/// let pipeline = Pipeline::builder().workers(4).memory_budget(MemoryBudget::mib(8)).build()?;
/// let numbers = pipeline.from_vec((0u64..1000).collect());
/// let doubled = numbers.map(|x| x * 2)?;
/// assert_eq!(doubled.count()?, 1000);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Pipeline {
    ctx: Arc<Ctx>,
}

impl Pipeline {
    /// Starts configuring a pipeline.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder::default()
    }

    /// Re-wraps shared pipeline state (for operators that need to emit a
    /// fresh collection into an existing pipeline).
    pub(crate) fn from_ctx(ctx: Arc<Ctx>) -> Self {
        Pipeline { ctx }
    }

    /// The shared pipeline state.
    pub(crate) fn ctx_arc(&self) -> &Arc<Ctx> {
        &self.ctx
    }

    /// Creates a pipeline with `workers` workers and no memory limit.
    ///
    /// # Errors
    ///
    /// Returns an error if the spill directory cannot be created or
    /// `workers == 0`.
    pub fn new(workers: usize) -> Result<Self, DataflowError> {
        Self::builder().workers(workers).build()
    }

    /// Number of simulated workers (shuffle buckets).
    pub fn workers(&self) -> usize {
        self.ctx.workers
    }

    /// The per-worker memory budget.
    pub fn budget(&self) -> MemoryBudget {
        self.ctx.budget
    }

    /// A snapshot of the pipeline's resource counters.
    pub fn metrics(&self) -> PipelineMetrics {
        self.ctx.metrics.snapshot()
    }

    /// Whether chained per-shard transforms fuse into single passes.
    pub fn fusion_enabled(&self) -> bool {
        self.ctx.fusion
    }

    /// Whether spill files are LZ-compressed on disk.
    pub fn spill_compression_enabled(&self) -> bool {
        self.ctx.spill_compress
    }

    /// Creates a collection from an in-memory vector, splitting it into one
    /// shard per worker.
    pub fn from_vec<T: Record>(&self, data: Vec<T>) -> PCollection<T> {
        let shard_count = self.ctx.workers.max(1);
        let chunk = data.len().div_ceil(shard_count).max(1);
        let mut shards = Vec::with_capacity(shard_count);
        let mut data = data;
        while !data.is_empty() {
            let rest = data.split_off(chunk.min(data.len()));
            shards.push(Shard::InMemory(Arc::new(data)));
            data = rest;
        }
        PCollection::from_parts(self.ctx.clone(), shards)
    }

    /// Creates a collection from pre-sharded data (one shard per vector).
    pub fn from_shards<T: Record>(&self, shards: Vec<Vec<T>>) -> PCollection<T> {
        let shards = shards.into_iter().map(|s| Shard::InMemory(Arc::new(s))).collect();
        PCollection::from_parts(self.ctx.clone(), shards)
    }

    /// Creates a collection of `count` records produced by `generate(i)`
    /// without ever materializing more than one worker budget in memory —
    /// the entry point for *virtual* (larger-than-memory) datasets.
    ///
    /// # Errors
    ///
    /// Returns an error if spilling fails.
    pub fn generate<T, F>(&self, count: u64, generate: F) -> Result<PCollection<T>, DataflowError>
    where
        T: Record,
        F: Fn(u64) -> T + Send + Sync,
    {
        use rayon::prelude::*;
        let shard_count = (self.ctx.workers.max(1)) as u64;
        let per_shard = count.div_ceil(shard_count).max(1);
        let ranges: Vec<(u64, u64)> = (0..shard_count)
            .map(|s| (s * per_shard, ((s + 1) * per_shard).min(count)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let shard_groups: Vec<Vec<Shard<T>>> = ranges
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut sink = ShardSink::new(&self.ctx);
                for i in lo..hi {
                    sink.push(generate(i))?;
                }
                sink.finish()
            })
            .collect::<Result<_, _>>()?;
        Ok(PCollection::from_parts(self.ctx.clone(), shard_groups.into_iter().flatten().collect()))
    }
}

/// Builder for [`Pipeline`] (see [`Pipeline::builder`]).
#[derive(Debug, Default)]
pub struct PipelineBuilder {
    workers: Option<usize>,
    budget: Option<MemoryBudget>,
    spill_dir: Option<PathBuf>,
    fusion: Option<bool>,
    spill_compression: Option<bool>,
}

impl PipelineBuilder {
    /// Sets the number of simulated workers (default: available CPUs).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the per-worker memory budget (default: unlimited).
    pub fn memory_budget(mut self, budget: MemoryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the directory spill files are created under (default: the
    /// system temporary directory).
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Forces operator fusion on or off for this pipeline, overriding the
    /// process default ([`set_fusion_default`] / `SUBMOD_FUSION`, which
    /// defaults to on).
    pub fn fusion(mut self, on: bool) -> Self {
        self.fusion = Some(on);
        self
    }

    /// Forces spill-file LZ compression on or off for this pipeline,
    /// overriding the process default ([`set_spill_compression_default`] /
    /// `SUBMOD_SPILL_COMPRESS`, which defaults to off).
    pub fn spill_compression(mut self, on: bool) -> Self {
        self.spill_compression = Some(on);
        self
    }

    /// Builds the pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error if `workers == 0` or the spill directory cannot be
    /// created.
    pub fn build(self) -> Result<Pipeline, DataflowError> {
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map(usize::from).unwrap_or(4));
        if workers == 0 {
            return Err(DataflowError::invalid("pipeline must have at least one worker"));
        }
        let base = self.spill_dir.unwrap_or_else(std::env::temp_dir);
        let spill = SpillStore::create(&base)?;
        Ok(Pipeline {
            ctx: Arc::new(Ctx {
                workers,
                budget: self.budget.unwrap_or_default(),
                metrics: MetricsInner::default(),
                spill,
                fusion: resolve_fusion(self.fusion),
                spill_compress: resolve_spill_compress(self.spill_compression),
            }),
        })
    }
}

/// One shard of a collection: a resident vector or a spill file.
#[derive(Debug, Clone)]
pub(crate) enum Shard<T: Record> {
    InMemory(Arc<Vec<T>>),
    Spilled(SpillFile),
}

impl<T: Record> Shard<T> {
    pub fn len(&self) -> usize {
        match self {
            Shard::InMemory(v) => v.len(),
            Shard::Spilled(f) => f.count,
        }
    }

    /// Streams every record of the shard through `f`.
    pub fn for_each<F>(&self, mut f: F) -> Result<(), DataflowError>
    where
        F: FnMut(T) -> Result<(), DataflowError>,
    {
        match self {
            Shard::InMemory(v) => {
                for record in v.iter() {
                    f(record.clone())?;
                }
                Ok(())
            }
            Shard::Spilled(file) => {
                let mut reader = SpillReader::<T>::open(file)?;
                while let Some(record) = reader.next_record()? {
                    f(record)?;
                }
                Ok(())
            }
        }
    }
}

/// Accumulates output records against the worker budget, spilling full
/// buffers to disk.
pub(crate) struct ShardSink<'a, T: Record> {
    ctx: &'a Ctx,
    buffer: Vec<T>,
    buffer_bytes: u64,
    shards: Vec<Shard<T>>,
}

impl<'a, T: Record> ShardSink<'a, T> {
    pub fn new(ctx: &'a Ctx) -> Self {
        ShardSink { ctx, buffer: Vec::new(), buffer_bytes: 0, shards: Vec::new() }
    }

    pub fn push(&mut self, record: T) -> Result<(), DataflowError> {
        self.buffer_bytes += record.approx_bytes() as u64;
        self.buffer.push(record);
        // `buffer_bytes` only grows between spills, so the peak-bytes
        // gauge is observed where the maximum is attained — in `spill`
        // and `finish` — keeping the shared atomic off this per-record
        // path.
        if self.ctx.budget.exceeded_by(self.buffer_bytes) {
            self.spill()?;
        }
        Ok(())
    }

    fn spill(&mut self) -> Result<(), DataflowError> {
        self.ctx.metrics.observe_worker_bytes(self.buffer_bytes);
        if self.buffer.is_empty() {
            return Ok(());
        }
        let compress = self.ctx.spill_compress;
        // Fixed-width record types spill as raw column bytes; everything
        // else goes through per-record codec frames.
        let file = if let Some(kinds) = T::column_kinds() {
            spill_columns(self.ctx.spill.fresh_path(), compress, &self.buffer, &kinds)?
        } else {
            let mut writer = SpillWriter::create(self.ctx.spill.fresh_path(), compress)?;
            for record in &self.buffer {
                writer.write(record)?;
            }
            writer.finish()?
        };
        self.ctx.metrics.record_spill(file.bytes, file.disk_bytes);
        self.shards.push(Shard::Spilled(file));
        self.buffer.clear();
        self.buffer_bytes = 0;
        Ok(())
    }

    pub fn finish(mut self) -> Result<Vec<Shard<T>>, DataflowError> {
        self.ctx.metrics.observe_worker_bytes(self.buffer_bytes);
        if !self.buffer.is_empty() {
            self.shards.push(Shard::InMemory(Arc::new(std::mem::take(&mut self.buffer))));
        }
        Ok(std::mem::take(&mut self.shards))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_workers() {
        assert!(Pipeline::builder().workers(0).build().is_err());
        let p = Pipeline::builder().workers(3).build().unwrap();
        assert_eq!(p.workers(), 3);
    }

    #[test]
    fn from_vec_splits_into_worker_shards() {
        let p = Pipeline::new(4).unwrap();
        let pc = p.from_vec((0u64..10).collect());
        assert_eq!(pc.num_shards(), 4);
        assert_eq!(pc.count().unwrap(), 10);
    }

    #[test]
    fn from_vec_empty() {
        let p = Pipeline::new(4).unwrap();
        let pc = p.from_vec(Vec::<u64>::new());
        assert_eq!(pc.count().unwrap(), 0);
        assert!(pc.collect().unwrap().is_empty());
    }

    #[test]
    fn generate_produces_all_records() {
        let p = Pipeline::new(3).unwrap();
        let pc = p.generate(100, |i| i * i).unwrap();
        let mut all = pc.collect().unwrap();
        all.sort_unstable();
        assert_eq!(all.len(), 100);
        assert_eq!(all[99], 99 * 99);
    }

    #[test]
    fn generate_with_tiny_budget_spills() {
        let p =
            Pipeline::builder().workers(2).memory_budget(MemoryBudget::bytes(256)).build().unwrap();
        let pc = p.generate(1000, |i| i).unwrap();
        assert_eq!(pc.count().unwrap(), 1000);
        let metrics = p.metrics();
        assert!(metrics.bytes_spilled > 0, "tiny budget must force spills");
        assert!(metrics.peak_worker_bytes <= 256 + 64, "budget roughly respected");
        let mut all = pc.collect().unwrap();
        all.sort_unstable();
        assert_eq!(all, (0u64..1000).collect::<Vec<_>>());
    }

    #[test]
    fn from_shards_preserves_layout() {
        let p = Pipeline::new(2).unwrap();
        let pc = p.from_shards(vec![vec![1u64, 2], vec![3], vec![]]);
        assert_eq!(pc.num_shards(), 3);
        assert_eq!(pc.count().unwrap(), 3);
    }
}
