//! Broadcast side-inputs: small driver-side values replicated to every
//! worker instead of shuffled.
//!
//! The engine-resident bounding pipeline (paper §5) joins each undecided
//! point's neighbor list against the *included* and *excluded* status
//! sets. Those sets are tiny next to the bound table (`O(k)` members and
//! a bitset over the ground set respectively), so shipping them to every
//! worker — Beam's side-input pattern — replaces the three-way shuffle
//! join with a broadcast hash join and keeps the bound table itself
//! sharded. The bytes replicated per broadcast are charged to the
//! pipeline's [`crate::PipelineMetrics::bytes_broadcast`] counter so
//! tests can assert the side inputs stayed small.

use crate::codec::Record;
use crate::Pipeline;
use std::sync::Arc;

/// An immutable value replicated to every worker of a pipeline.
///
/// Obtained from [`Pipeline::broadcast`]. Cloning is cheap (the payload is
/// shared); transforms capture the side input by clone and read it through
/// [`SideInput::get`].
///
/// ```
/// use submod_dataflow::Pipeline;
///
/// # fn main() -> Result<(), submod_dataflow::DataflowError> {
/// let p = Pipeline::new(2)?;
/// let thresholds = p.broadcast(vec![10u64, 20, 30]);
/// let pc = p.from_vec(vec![5u64, 15, 25, 35]);
/// let t = thresholds.clone();
/// let above = pc.filter(move |x| t.get().iter().any(|&b| *x >= b))?;
/// assert_eq!(above.count()?, 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SideInput<T: Record> {
    data: Arc<Vec<T>>,
}

impl<T: Record> SideInput<T> {
    /// The broadcast records.
    pub fn get(&self) -> &[T] {
        &self.data
    }

    /// Number of broadcast records.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when nothing was broadcast.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A broadcast membership set over dense `u64` ids — the side-input shape
/// of the bounding pipeline's *included* / *excluded* status sets.
///
/// Backed by a bitset (one bit per id of the universe), so broadcasting a
/// status set over an `n`-point ground set costs `n / 8` bytes regardless
/// of how many members it has, and membership tests are O(1).
#[derive(Clone, Debug)]
pub struct BroadcastSet {
    words: Arc<Vec<u64>>,
    universe: usize,
}

impl BroadcastSet {
    /// Returns `true` when `id` is a member.
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        let idx = id as usize;
        if idx >= self.universe {
            return false;
        }
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// The size of the universe the set was built over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Bytes replicated to each worker for this set.
    pub fn broadcast_bytes(&self) -> u64 {
        (self.words.len() * size_of::<u64>()) as u64
    }
}

impl Pipeline {
    /// Broadcasts `data` to every worker as a [`SideInput`], charging its
    /// encoded size to [`crate::PipelineMetrics::bytes_broadcast`].
    ///
    /// Side inputs are for *small* values (solution sets, thresholds,
    /// per-class statistics); broadcasting something proportional to the
    /// ground set defeats the larger-than-memory design — the metrics
    /// counter exists so tests can prove that did not happen.
    pub fn broadcast<T: Record>(&self, data: Vec<T>) -> SideInput<T> {
        let bytes: u64 = data.iter().map(|r| r.approx_bytes() as u64).sum();
        self.ctx_arc().metrics.record_broadcast(bytes);
        SideInput { data: Arc::new(data) }
    }

    /// Broadcasts a membership set over ids `0..universe` as a bitset.
    ///
    /// # Panics
    ///
    /// Panics if a member id is `>= universe`.
    pub fn broadcast_set<I: IntoIterator<Item = u64>>(
        &self,
        universe: usize,
        members: I,
    ) -> BroadcastSet {
        let mut words = vec![0u64; universe.div_ceil(64)];
        for id in members {
            let idx = id as usize;
            assert!(idx < universe, "member {id} outside universe {universe}");
            words[idx / 64] |= 1 << (idx % 64);
        }
        self.broadcast_words(words, universe)
    }

    /// Broadcasts a pre-built bitset (`words[i / 64] >> (i % 64)` is bit
    /// `i`), e.g. the word array of a driver-side node set, without
    /// re-walking the members.
    pub fn broadcast_words(&self, words: Vec<u64>, universe: usize) -> BroadcastSet {
        assert!(
            words.len() >= universe.div_ceil(64),
            "bitset of {} words cannot cover a universe of {universe}",
            words.len()
        );
        let set = BroadcastSet { words: Arc::new(words), universe };
        self.ctx_arc().metrics.record_broadcast(set.broadcast_bytes());
        set
    }
}

#[cfg(test)]
mod tests {
    use crate::Pipeline;

    #[test]
    fn side_input_is_readable_from_transforms() {
        let p = Pipeline::new(3).unwrap();
        let lookup = p.broadcast(vec![(0u64, 5u64), (1, 7)]);
        let pc = p.from_vec(vec![0u64, 1, 0]);
        let l = lookup.clone();
        let mapped = p
            .from_vec(pc.collect().unwrap())
            .map(move |x| l.get().iter().find(|(k, _)| *k == x).map_or(0, |(_, v)| *v))
            .unwrap();
        let mut out = mapped.collect().unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![5, 5, 7]);
        assert_eq!(lookup.len(), 2);
        assert!(!lookup.is_empty());
    }

    #[test]
    fn broadcast_bytes_are_metered() {
        let p = Pipeline::new(2).unwrap();
        assert_eq!(p.metrics().bytes_broadcast, 0);
        p.broadcast((0u64..100).collect::<Vec<_>>());
        assert_eq!(p.metrics().bytes_broadcast, 800);
        p.broadcast_set(640, 0..10u64);
        assert_eq!(p.metrics().bytes_broadcast, 800 + 80);
    }

    #[test]
    fn broadcast_set_membership() {
        let p = Pipeline::new(2).unwrap();
        let set = p.broadcast_set(100, [0u64, 63, 64, 99]);
        for id in [0u64, 63, 64, 99] {
            assert!(set.contains(id), "{id} should be a member");
        }
        for id in [1u64, 62, 65, 98, 100, 1000] {
            assert!(!set.contains(id), "{id} should not be a member");
        }
        assert_eq!(set.universe(), 100);
        assert_eq!(set.broadcast_bytes(), 16);
    }

    #[test]
    fn broadcast_words_reuses_driver_bitsets() {
        let p = Pipeline::new(2).unwrap();
        let mut words = vec![0u64; 2];
        words[1] = 0b10; // id 65
        let set = p.broadcast_words(words, 128);
        assert!(set.contains(65));
        assert!(!set.contains(64));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn broadcast_set_rejects_out_of_universe_members() {
        let p = Pipeline::new(2).unwrap();
        p.broadcast_set(10, [10u64]);
    }
}
