//! Deterministic, seeded sampling operators.
//!
//! The approximate bounding algorithm (paper §4.3, Theorem 4.6) estimates
//! its thresholds from a `p`-fraction sample of the bound table. For the
//! in-memory and dataflow drivers to agree bit for bit, sample membership
//! cannot depend on sharding, scheduling, or iteration order — so every
//! operator here derives its randomness from a **per-record coin**: a
//! splitmix64 hash of `(seed, key(record))` mapped to `[0, 1)`. Two runs
//! with the same seed and keys produce the same sample on any number of
//! shards or threads, which is the property the determinism suites pin.

use crate::codec::Record;
use crate::{DataflowError, PCollection};

/// splitmix64 finalizer: well-dispersed, order-independent, and stable
/// across platforms. The canonical mixer for every deterministic coin in
/// the workspace (the `submod_dist` sampling coins delegate here so both
/// bounding drivers flip identical coins).
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a `(seed, key)` pair into 64 dispersed bits.
pub fn mix_seed_key(seed: u64, key: u64) -> u64 {
    splitmix64(seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The deterministic sampling coin in `[0, 1)` for `(seed, key)`:
/// the top 53 bits of [`mix_seed_key`] as a dyadic fraction.
pub fn sample_coin(seed: u64, key: u64) -> f64 {
    (mix_seed_key(seed, key) >> 11) as f64 / (1u64 << 53) as f64
}

impl<T: Record> PCollection<T> {
    /// Keeps each record independently with probability
    /// `probability(record)`, decided by the deterministic coin
    /// [`sample_coin`]`(seed, key(record))`.
    ///
    /// Because the coin depends only on the seed and the record's key —
    /// never on sharding or visit order — the sample is identical at any
    /// shard or thread count. Records sharing a key share a fate, so keys
    /// should be unique for an independent Bernoulli sample.
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn sample_bernoulli<K, P>(
        &self,
        seed: u64,
        key: K,
        probability: P,
    ) -> Result<PCollection<T>, DataflowError>
    where
        K: Fn(&T) -> u64 + Send + Sync + 'static,
        P: Fn(&T) -> f64 + Send + Sync + 'static,
    {
        self.filter(move |t| sample_coin(seed, key(t)) < probability(t))
    }

    /// Draws a uniform sample of at most `capacity` records without
    /// replacement: every record gets the deterministic priority
    /// [`mix_seed_key`]`(seed, key(record))` and the `capacity` smallest
    /// priorities win — a distributed reservoir whose outcome is
    /// independent of sharding and thread count (ties break by key, so
    /// keys should be unique).
    ///
    /// Worker memory stays O(`capacity`): each shard keeps a bounded
    /// candidate buffer and the buffers merge pairwise. The winners are
    /// returned sorted by `(priority, key)`.
    ///
    /// # Errors
    ///
    /// Returns an error if reading or spilling a shard fails.
    pub fn sample_reservoir<K>(
        &self,
        seed: u64,
        key: K,
        capacity: usize,
    ) -> Result<PCollection<T>, DataflowError>
    where
        K: Fn(&T) -> u64 + Send + Sync,
    {
        if capacity == 0 {
            return Ok(self.ctx_pipeline().from_vec(Vec::new()));
        }
        let winners = self.aggregate(
            Vec::new(),
            |mut acc: Vec<(u64, u64, T)>, t| {
                let k = key(&t);
                acc.push((mix_seed_key(seed, k), k, t));
                if acc.len() > capacity * 2 {
                    trim(&mut acc, capacity);
                }
                acc
            },
            |mut a, b| {
                a.extend(b);
                trim(&mut a, capacity);
                a
            },
        )?;
        let mut winners = winners;
        trim(&mut winners, capacity);
        Ok(self.ctx_pipeline().from_vec(winners.into_iter().map(|(_, _, t)| t).collect()))
    }

    fn ctx_pipeline(&self) -> crate::Pipeline {
        crate::Pipeline::from_ctx(self.ctx().clone())
    }
}

/// Keeps the `capacity` smallest `(priority, key)` entries, in order.
fn trim<T>(acc: &mut Vec<(u64, u64, T)>, capacity: usize) {
    acc.sort_by_key(|e| (e.0, e.1));
    acc.truncate(capacity);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;

    #[test]
    fn coin_is_deterministic_and_uniform_ish() {
        assert_eq!(sample_coin(7, 42), sample_coin(7, 42));
        assert_ne!(sample_coin(7, 42), sample_coin(8, 42));
        let coins: Vec<f64> = (0..10_000).map(|k| sample_coin(1, k)).collect();
        assert!(coins.iter().all(|c| (0.0..1.0).contains(c)));
        let mean = coins.iter().sum::<f64>() / coins.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "coin mean {mean} far from 0.5");
    }

    #[test]
    fn bernoulli_sample_is_shard_layout_invariant() {
        let p2 = Pipeline::new(2).unwrap();
        let p7 = Pipeline::new(7).unwrap();
        let data: Vec<u64> = (0..5000).collect();
        let mut a = p2
            .from_vec(data.clone())
            .sample_bernoulli(3, |&x| x, |_| 0.3)
            .unwrap()
            .collect()
            .unwrap();
        let mut b =
            p7.from_vec(data).sample_bernoulli(3, |&x| x, |_| 0.3).unwrap().collect().unwrap();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "sample must not depend on sharding");
        let frac = a.len() as f64 / 5000.0;
        assert!((frac - 0.3).abs() < 0.05, "sample fraction {frac} far from p = 0.3");
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let p = Pipeline::new(3).unwrap();
        let pc = p.from_vec((0u64..100).collect());
        assert_eq!(pc.sample_bernoulli(1, |&x| x, |_| 0.0).unwrap().count().unwrap(), 0);
        assert_eq!(pc.sample_bernoulli(1, |&x| x, |_| 1.0).unwrap().count().unwrap(), 100);
    }

    #[test]
    fn reservoir_is_exact_size_and_layout_invariant() {
        let data: Vec<u64> = (0..2000).collect();
        let mut drawn = Vec::new();
        for workers in [1usize, 3, 8] {
            let p = Pipeline::new(workers).unwrap();
            let sample = p
                .from_vec(data.clone())
                .sample_reservoir(9, |&x| x, 50)
                .unwrap()
                .collect()
                .unwrap();
            assert_eq!(sample.len(), 50);
            drawn.push(sample);
        }
        assert_eq!(drawn[0], drawn[1]);
        assert_eq!(drawn[0], drawn[2]);
    }

    #[test]
    fn reservoir_smaller_input_returns_everything() {
        let p = Pipeline::new(2).unwrap();
        let mut out = p
            .from_vec(vec![5u64, 1, 9])
            .sample_reservoir(0, |&x| x, 10)
            .unwrap()
            .collect()
            .unwrap();
        out.sort_unstable();
        assert_eq!(out, vec![1, 5, 9]);
        assert_eq!(
            p.from_vec(vec![5u64]).sample_reservoir(0, |&x| x, 0).unwrap().count().unwrap(),
            0
        );
    }

    #[test]
    fn different_seeds_draw_different_reservoirs() {
        let p = Pipeline::new(4).unwrap();
        let data: Vec<u64> = (0..1000).collect();
        let a =
            p.from_vec(data.clone()).sample_reservoir(1, |&x| x, 20).unwrap().collect().unwrap();
        let b = p.from_vec(data).sample_reservoir(2, |&x| x, 20).unwrap().collect().unwrap();
        assert_ne!(a, b, "seeds 1 and 2 drew the same 20-of-1000 sample");
    }
}
