//! Property-based tests for the core data structures and algorithms.

use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};
use submod_core::{
    greedy_select, naive_greedy_select, AddressablePq, GraphBuilder, NodeId, NodeSet,
    PairwiseObjective, ScoreNormalizer, SimilarityGraph,
};

/// An arbitrary small weighted instance: edge list + utilities.
fn arb_instance(max_nodes: usize) -> impl Strategy<Value = (SimilarityGraph, PairwiseObjective)> {
    (2usize..=max_nodes)
        .prop_flat_map(|n| {
            let edges =
                proptest::collection::vec((0..n as u64, 0..n as u64, 0.01f32..1.0), 0..n * 3);
            let utilities = proptest::collection::vec(0.0f32..1.0, n);
            let alpha = 0.1f64..=0.99;
            (Just(n), edges, utilities, alpha)
        })
        .prop_map(|(n, edges, utilities, alpha)| {
            let mut b = GraphBuilder::new(n);
            for (v, w, s) in edges {
                if v != w {
                    b.add_undirected(v, w, s).expect("valid edge");
                }
            }
            let graph = b.build();
            let objective = PairwiseObjective::from_alpha(alpha, utilities).expect("objective");
            (graph, objective)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The priority queue always pops in non-increasing priority order,
    /// regardless of the interleaved decrease/remove operations.
    #[test]
    fn pq_pops_sorted_under_mutation(
        priorities in proptest::collection::vec(-100.0f64..100.0, 1..120),
        ops in proptest::collection::vec((0usize..120, 0.0f64..10.0, 0u8..3), 0..200),
    ) {
        let n = priorities.len();
        let mut pq = AddressablePq::with_priorities(priorities);
        for (idx, amount, op) in ops {
            let v = (idx % n) as u32;
            match op {
                0 => { if pq.contains(v) { pq.decrease_by(v, amount); } }
                1 => { pq.pop_max(); }
                _ => { pq.remove(v); }
            }
        }
        let mut last = f64::INFINITY;
        while let Some((_, p)) = pq.pop_max() {
            prop_assert!(p <= last + 1e-12, "{p} after {last}");
            last = p;
        }
    }

    /// The queue agrees with a sorted-model reference when only popping.
    #[test]
    fn pq_matches_sorted_model(priorities in proptest::collection::vec(-50.0f64..50.0, 1..100)) {
        let mut expected: Vec<(f64, usize)> =
            priorities.iter().copied().zip(0..).collect();
        // Max priority first; ties by smaller index.
        expected.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut pq = AddressablePq::with_priorities(priorities);
        for (p, i) in expected {
            let (v, got) = pq.pop_max().expect("same length");
            prop_assert_eq!(v as usize, i);
            prop_assert_eq!(got, p);
        }
        prop_assert!(pq.is_empty());
    }

    /// NodeSet behaves like a HashSet under arbitrary insert/remove mixes.
    #[test]
    fn nodeset_matches_hashset(ops in proptest::collection::vec((0u64..256, any::<bool>()), 0..300)) {
        let mut ours = NodeSet::new(256);
        let mut reference: HashSet<u64> = HashSet::new();
        for (id, insert) in ops {
            if insert {
                prop_assert_eq!(ours.insert(NodeId::new(id)), reference.insert(id));
            } else {
                prop_assert_eq!(ours.remove(NodeId::new(id)), reference.remove(&id));
            }
        }
        prop_assert_eq!(ours.len(), reference.len());
        let collected: BTreeSet<u64> = ours.iter().map(|n| n.raw()).collect();
        let expected: BTreeSet<u64> = reference.into_iter().collect();
        prop_assert_eq!(collected, expected);
    }

    /// The pairwise objective is submodular: marginal gains never increase
    /// as the base set grows (the §3 derivation, checked numerically).
    #[test]
    fn objective_has_diminishing_returns((graph, objective) in arb_instance(12)) {
        let n = graph.num_nodes();
        // B ⊂ A: B = {0}, A = {0, 1}; e = n-1 (outside both when n ≥ 3).
        prop_assume!(n >= 3);
        let e = NodeId::from_index(n - 1);
        let small = NodeSet::from_members(n, [NodeId::new(0)]);
        let large = NodeSet::from_members(n, [NodeId::new(0), NodeId::new(1)]);
        let gain_small = objective.marginal_gain(&graph, &small, e);
        let gain_large = objective.marginal_gain(&graph, &large, e);
        prop_assert!(gain_large <= gain_small + 1e-9);
    }

    /// Marginal gains telescope exactly into evaluate().
    #[test]
    fn gains_telescope_to_objective((graph, objective) in arb_instance(14)) {
        let n = graph.num_nodes();
        let k = (n / 2).max(1);
        let selection = greedy_select(&graph, &objective, k).expect("greedy");
        let evaluated = objective.evaluate(&graph, selection.selected());
        prop_assert!(
            (selection.objective_value() - evaluated).abs() < 1e-6,
            "telescoped {} vs evaluated {}", selection.objective_value(), evaluated
        );
    }

    /// The priority-queue greedy equals Algorithm 1 on arbitrary instances.
    #[test]
    fn pq_greedy_equals_naive((graph, objective) in arb_instance(14)) {
        let n = graph.num_nodes();
        for k in [1, n / 2, n] {
            let fast = greedy_select(&graph, &objective, k).expect("pq greedy");
            let slow = naive_greedy_select(&graph, &objective, k).expect("naive greedy");
            prop_assert_eq!(fast.selected(), slow.selected());
        }
    }

    /// Symmetrization is idempotent and only adds edges.
    #[test]
    fn symmetrize_idempotent((graph, _) in arb_instance(12)) {
        let sym = graph.symmetrized();
        prop_assert!(sym.is_symmetric());
        prop_assert_eq!(sym.symmetrized(), sym.clone());
        prop_assert!(sym.num_directed_edges() >= graph.num_directed_edges());
    }

    /// Induced subgraphs never contain foreign nodes and preserve symmetry.
    #[test]
    fn induced_subgraph_is_consistent(
        (graph, _) in arb_instance(12),
        picks in proptest::collection::btree_set(0usize..12, 1..8),
    ) {
        let nodes: Vec<NodeId> = picks
            .into_iter()
            .filter(|&i| i < graph.num_nodes())
            .map(NodeId::from_index)
            .collect();
        prop_assume!(!nodes.is_empty());
        let sub = graph.induced_subgraph(&nodes);
        prop_assert_eq!(sub.num_nodes(), nodes.len());
        prop_assert!(sub.is_symmetric());
        // Every local edge maps to a global edge with the same weight.
        for li in 0..sub.num_nodes() {
            for (lw, s) in sub.edges(NodeId::from_index(li)) {
                let (gv, gw) = (nodes[li], nodes[lw.index()]);
                prop_assert_eq!(graph.edge_weight(gv, gw), Some(s));
            }
        }
    }

    /// Normalization is affine: order-preserving and anchored.
    #[test]
    fn normalizer_is_monotone(
        centralized in -100.0f64..100.0,
        scores in proptest::collection::vec(-100.0f64..100.0, 1..20),
    ) {
        let norm = ScoreNormalizer::new(centralized, &scores);
        prop_assert_eq!(norm.normalize(centralized), 100.0);
        let mut sorted = scores.clone();
        sorted.sort_by(f64::total_cmp);
        for pair in sorted.windows(2) {
            prop_assert!(norm.normalize(pair[0]) <= norm.normalize(pair[1]) + 1e-9);
        }
        for &s in &scores {
            prop_assert!(norm.normalize(s) >= -1e-9);
        }
    }
}
