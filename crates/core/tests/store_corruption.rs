//! Corruption tests for the on-disk CSR graph store.
//!
//! Every failure mode of `SimilarityGraph::open_store` must surface as a
//! typed `GraphError` — never a panic, never UB. These tests take a valid
//! store file and break it one section at a time: truncation, foreign
//! magic, future version, random bit-flips, and each semantic CSR
//! invariant. For semantic corruptions the header checksum is re-fixed
//! after the edit (via `store::payload_checksum`) so the *validator*, not
//! the checksum, is what catches the damage.

use std::path::PathBuf;
use submod_core::store::{payload_checksum, HEADER_LEN, VERSION};
use submod_core::{GraphBuilder, GraphError, SimilarityGraph};

fn sample_graph() -> SimilarityGraph {
    let mut b = GraphBuilder::new(6);
    b.add_undirected(0, 1, 0.5).unwrap();
    b.add_undirected(1, 2, 0.25).unwrap();
    b.add_undirected(2, 3, 0.75).unwrap();
    b.add_undirected(3, 4, 0.1).unwrap();
    b.add_undirected(4, 5, 0.9).unwrap();
    b.add_undirected(0, 5, 0.33).unwrap();
    b.build()
}

/// Writes the sample graph to a fresh temp store and returns its path and
/// bytes.
fn valid_store(name: &str) -> (PathBuf, Vec<u8>) {
    let path = std::env::temp_dir()
        .join(format!("submod-corruption-test-{}-{name}.csr", std::process::id()));
    sample_graph().write_store(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

/// Rewrites the file with `bytes`, after re-fixing the header checksum so
/// semantic validation (not the checksum) judges the content.
fn write_with_fixed_checksum(path: &PathBuf, mut bytes: Vec<u8>) {
    let sum = payload_checksum(&bytes[HEADER_LEN..]);
    bytes[32..40].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(path, &bytes).unwrap();
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
}

/// Byte offset of the offsets section entry for node `v`.
fn offset_pos(v: usize) -> usize {
    HEADER_LEN + v * 8
}

/// Byte offset of neighbor entry `i` in a store over `n` nodes.
fn neighbor_pos(n: usize, i: usize) -> usize {
    HEADER_LEN + (n + 1) * 8 + i * 4
}

/// Byte offset of weight entry `i` in a store over `n` nodes, `e` edges.
fn weight_pos(n: usize, e: usize, i: usize) -> usize {
    neighbor_pos(n, e) + i * 4
}

#[test]
fn valid_store_opens() {
    let (path, _) = valid_store("valid");
    let mapped = SimilarityGraph::open_store(&path).unwrap();
    assert_eq!(mapped, sample_graph());
    cleanup(&path);
}

#[test]
fn truncated_file_is_rejected_at_every_length() {
    let (path, bytes) = valid_store("truncate");
    // Sweep a selection of truncation points: inside the header, at the
    // header boundary, inside each section, and one byte short.
    for cut in [0, 1, 7, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 9, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match SimilarityGraph::open_store(&path) {
            Err(GraphError::Truncated { expected, actual }) => {
                assert_eq!(actual, cut as u64);
                assert!(expected > actual, "cut at {cut}");
            }
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
    cleanup(&path);
}

#[test]
fn oversized_file_is_rejected() {
    let (path, mut bytes) = valid_store("oversize");
    bytes.extend_from_slice(&[0u8; 16]);
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(SimilarityGraph::open_store(&path), Err(GraphError::Truncated { .. })));
    cleanup(&path);
}

#[test]
fn wrong_magic_is_rejected() {
    let (path, mut bytes) = valid_store("magic");
    bytes[0..8].copy_from_slice(b"SUBMODG1"); // the pre-store cache format
    std::fs::write(&path, &bytes).unwrap();
    match SimilarityGraph::open_store(&path) {
        Err(GraphError::BadMagic { found }) => assert_eq!(&found, b"SUBMODG1"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    cleanup(&path);
}

#[test]
fn future_version_is_rejected() {
    let (path, mut bytes) = valid_store("version");
    bytes[8..12].copy_from_slice(&(VERSION + 1).to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    match SimilarityGraph::open_store(&path) {
        Err(GraphError::UnsupportedVersion { found }) => assert_eq!(found, VERSION + 1),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    cleanup(&path);
}

#[test]
fn unknown_flags_are_rejected() {
    let (path, mut bytes) = valid_store("flags");
    bytes[12] |= 0x80;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(SimilarityGraph::open_store(&path), Err(GraphError::UnknownFlags { .. })));
    cleanup(&path);
}

#[test]
fn payload_bit_flips_fail_the_checksum() {
    let (path, bytes) = valid_store("bitflip");
    // Flip one bit in each payload section (offsets, neighbors, weights)
    // WITHOUT re-fixing the header checksum: the checksum must catch it.
    let n = 6;
    let e = sample_graph().num_directed_edges();
    for pos in [offset_pos(2), neighbor_pos(n, 1), weight_pos(n, e, 3)] {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x04;
        std::fs::write(&path, &corrupt).unwrap();
        match SimilarityGraph::open_store(&path) {
            Err(GraphError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed, "flip at byte {pos}");
            }
            other => panic!("flip at byte {pos}: expected ChecksumMismatch, got {other:?}"),
        }
    }
    cleanup(&path);
}

#[test]
fn header_checksum_bit_flip_is_caught() {
    let (path, mut bytes) = valid_store("sumflip");
    bytes[33] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(SimilarityGraph::open_store(&path), Err(GraphError::ChecksumMismatch { .. })));
    cleanup(&path);
}

#[test]
fn non_monotone_offsets_are_rejected() {
    let (path, mut bytes) = valid_store("monotone");
    // Node 2's offset jumps above node 3's.
    let pos = offset_pos(2);
    bytes[pos..pos + 8].copy_from_slice(&100u64.to_le_bytes());
    write_with_fixed_checksum(&path, bytes);
    // 100 also overruns the edge arrays, so either typed error is honest;
    // this store has few edges, so the bounds check fires first.
    match SimilarityGraph::open_store(&path) {
        Err(GraphError::OffsetOutOfBounds { offset: 100, .. })
        | Err(GraphError::NonMonotoneOffsets { .. }) => {}
        other => panic!("expected an offset error, got {other:?}"),
    }
    cleanup(&path);
}

#[test]
fn decreasing_offsets_are_rejected() {
    let (path, bytes) = valid_store("decreasing");
    let mut corrupt = bytes;
    // Swap two interior offsets so the sequence decreases while staying
    // in bounds.
    let a = offset_pos(2);
    let b = offset_pos(3);
    let (va, vb) = (
        u64::from_le_bytes(corrupt[a..a + 8].try_into().unwrap()),
        u64::from_le_bytes(corrupt[b..b + 8].try_into().unwrap()),
    );
    assert!(va < vb, "sample graph must have strictly growing rows here");
    corrupt[a..a + 8].copy_from_slice(&vb.to_le_bytes());
    corrupt[b..b + 8].copy_from_slice(&va.to_le_bytes());
    write_with_fixed_checksum(&path, corrupt);
    assert!(matches!(
        SimilarityGraph::open_store(&path),
        Err(GraphError::NonMonotoneOffsets { .. })
    ));
    cleanup(&path);
}

#[test]
fn terminal_offset_mismatch_is_rejected() {
    let (path, mut bytes) = valid_store("terminal");
    let e = sample_graph().num_directed_edges() as u64;
    let pos = offset_pos(6); // offsets[num_nodes]
    bytes[pos..pos + 8].copy_from_slice(&(e - 1).to_le_bytes());
    write_with_fixed_checksum(&path, bytes);
    assert!(matches!(
        SimilarityGraph::open_store(&path),
        Err(GraphError::EdgeCountMismatch { .. })
    ));
    cleanup(&path);
}

#[test]
fn out_of_bounds_neighbor_is_rejected() {
    let (path, mut bytes) = valid_store("edge-bounds");
    let pos = neighbor_pos(6, 0);
    bytes[pos..pos + 4].copy_from_slice(&999u32.to_le_bytes());
    write_with_fixed_checksum(&path, bytes);
    match SimilarityGraph::open_store(&path) {
        Err(GraphError::EdgeOutOfBounds { neighbor: 999, num_nodes: 6, .. }) => {}
        other => panic!("expected EdgeOutOfBounds, got {other:?}"),
    }
    cleanup(&path);
}

#[test]
fn self_loop_is_rejected() {
    let (path, mut bytes) = valid_store("self-loop");
    // Node 0's first neighbor becomes node 0 itself.
    let pos = neighbor_pos(6, 0);
    bytes[pos..pos + 4].copy_from_slice(&0u32.to_le_bytes());
    write_with_fixed_checksum(&path, bytes);
    assert!(matches!(SimilarityGraph::open_store(&path), Err(GraphError::SelfLoop { node: 0 })));
    cleanup(&path);
}

#[test]
fn unsorted_neighbor_row_is_rejected() {
    let (path, mut bytes) = valid_store("unsorted");
    // Node 0 has neighbors [1, 5]; rewriting the first as 5 makes the row
    // [5, 5] — a duplicate, which strict ascent also forbids.
    let pos = neighbor_pos(6, 0);
    bytes[pos..pos + 4].copy_from_slice(&5u32.to_le_bytes());
    write_with_fixed_checksum(&path, bytes);
    assert!(matches!(
        SimilarityGraph::open_store(&path),
        Err(GraphError::UnsortedNeighbors { node: 0 })
    ));
    cleanup(&path);
}

#[test]
fn non_finite_and_negative_weights_are_rejected() {
    let n = 6;
    let e = sample_graph().num_directed_edges();
    for (name, bad) in
        [("nan", f32::NAN), ("inf", f32::INFINITY), ("neginf", f32::NEG_INFINITY), ("neg", -0.5)]
    {
        let (path, mut bytes) = valid_store(&format!("weight-{name}"));
        let pos = weight_pos(n, e, 2);
        bytes[pos..pos + 4].copy_from_slice(&bad.to_le_bytes());
        write_with_fixed_checksum(&path, bytes);
        match SimilarityGraph::open_store(&path) {
            Err(GraphError::InvalidWeight { weight, .. }) => {
                assert!(weight.is_nan() == bad.is_nan() && (bad.is_nan() || weight == bad));
            }
            other => panic!("{name}: expected InvalidWeight, got {other:?}"),
        }
        cleanup(&path);
    }
}

#[test]
fn non_finite_utility_is_rejected() {
    let path = std::env::temp_dir()
        .join(format!("submod-corruption-test-{}-utility.csr", std::process::id()));
    let g = sample_graph();
    g.write_store_with_utilities(&path, &[1.0; 6]).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let n = 6;
    let e = g.num_directed_edges();
    let pos = weight_pos(n, e, e); // first utility sits right after the weights
    bytes[pos..pos + 4].copy_from_slice(&f32::NAN.to_le_bytes());
    write_with_fixed_checksum(&path, bytes);
    assert!(matches!(
        SimilarityGraph::open_store_with_utilities(&path),
        Err(GraphError::InvalidUtility { node: 0, .. })
    ));
    cleanup(&path);
}

#[test]
fn missing_file_is_an_io_error() {
    let path = std::env::temp_dir()
        .join(format!("submod-corruption-test-{}-missing.csr", std::process::id()));
    assert!(matches!(SimilarityGraph::open_store(&path), Err(GraphError::Io { .. })));
}

#[test]
fn every_single_byte_corruption_is_caught_or_harmless() {
    // Exhaustive single-byte fuzz: flip each byte of the store in turn
    // (without checksum re-fix). Opening must either fail with a typed
    // error or — only when the flip hits a reserved/ignorable byte —
    // yield a graph; it must never panic.
    let (path, bytes) = valid_store("fuzz");
    let original = sample_graph();
    for pos in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xFF;
        std::fs::write(&path, &corrupt).unwrap();
        match SimilarityGraph::open_store(&path) {
            Err(_) => {}
            Ok(g) => {
                // Only a flags-adjacent no-op (there are none: all bits
                // checked) or reserved-byte flip could land here — but
                // reserved bytes are covered by the checksum, so any Ok
                // must be the original graph. Defensive: verify.
                assert_eq!(g, original, "byte {pos} flip silently changed the graph");
                panic!("byte {pos} flip was not detected");
            }
        }
    }
    cleanup(&path);
}
