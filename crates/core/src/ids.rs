use std::fmt;

/// Identifier of a data point (a node of the similarity graph).
///
/// Node ids are dense indices `0..n` within a ground set of size `n`. The
/// distributed layers of the system ship them across simulated machines, so
/// the representation is a fixed-width `u64` as in the paper's memory
/// estimates (§3 "Scaling challenges").
///
/// ```
/// use submod_core::NodeId;
///
/// let v = NodeId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(v.raw(), 7u64);
/// assert_eq!(format!("{v}"), "7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u64);

impl NodeId {
    /// Creates a node id from a raw `u64`.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Creates a node id from a dense `usize` index.
    #[inline]
    pub const fn from_index(index: usize) -> Self {
        NodeId(index as u64)
    }

    /// Returns the raw `u64` value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the id as a dense `usize` index.
    ///
    /// # Panics
    ///
    /// Panics on platforms where the id does not fit a `usize` (not possible
    /// on 64-bit targets).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for NodeId {
    #[inline]
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u64 {
    #[inline]
    fn from(id: NodeId) -> Self {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_between_raw_and_index() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from_index(42), id);
        assert_eq!(u64::from(id), 42);
        assert_eq!(NodeId::from(42u64), id);
    }

    #[test]
    fn orders_by_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn display_is_plain_number() {
        assert_eq!(NodeId::new(9).to_string(), "9");
    }
}
