/// Sentinel for "not in the heap" positions.
const NOT_IN_HEAP: u32 = u32::MAX;

/// Arity of the heap. A 4-ary layout trades slightly more comparisons per
/// sift-down for half the tree depth and better cache behaviour, which
/// matters at the paper's scale (§3 estimates billions of queue entries).
const ARITY: usize = 4;

/// An addressable max-priority queue over dense node indices `0..n`.
///
/// This is the data structure behind the paper's Algorithm 2: all points
/// enter with their utility as priority, the maximum is popped repeatedly,
/// and neighbors' priorities are *decreased in place* via
/// [`Self::decrease_by`] — an operation binary heaps from `std` do not
/// support.
///
/// Ties are broken deterministically toward the smaller index so selections
/// are reproducible run-to-run.
///
/// ```
/// use submod_core::AddressablePq;
///
/// let mut pq = AddressablePq::with_priorities(vec![1.0, 5.0, 3.0]);
/// pq.decrease_by(1, 4.5); // node 1: 5.0 → 0.5
/// assert_eq!(pq.pop_max(), Some((2, 3.0)));
/// assert_eq!(pq.pop_max(), Some((0, 1.0)));
/// assert_eq!(pq.pop_max(), Some((1, 0.5)));
/// assert_eq!(pq.pop_max(), None);
/// ```
#[derive(Clone, Debug)]
pub struct AddressablePq {
    /// Heap slot → node index.
    heap: Vec<u32>,
    /// Node index → heap slot, or `NOT_IN_HEAP`.
    pos: Vec<u32>,
    /// Node index → current priority (kept after removal for inspection).
    prio: Vec<f64>,
}

impl AddressablePq {
    /// Builds a queue containing every index `0..priorities.len()` with the
    /// given initial priorities, in O(n).
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX − 1` priorities are supplied or any
    /// priority is NaN.
    pub fn with_priorities(priorities: Vec<f64>) -> Self {
        assert!(priorities.len() < NOT_IN_HEAP as usize, "priority queue too large");
        assert!(priorities.iter().all(|p| !p.is_nan()), "priorities must not be NaN");
        let n = priorities.len();
        let mut pq = AddressablePq {
            heap: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            prio: priorities,
        };
        // Standard Floyd heap construction.
        for slot in (0..n / ARITY + 1).rev() {
            if slot < n {
                pq.sift_down(slot);
            }
        }
        pq
    }

    /// Number of elements still in the queue.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns `true` if node `v` is still enqueued.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        (v as usize) < self.pos.len() && self.pos[v as usize] != NOT_IN_HEAP
    }

    /// Current priority of node `v`, whether or not it is still enqueued.
    ///
    /// # Panics
    ///
    /// Panics if `v` was never part of the queue.
    #[inline]
    pub fn priority(&self, v: u32) -> f64 {
        self.prio[v as usize]
    }

    /// The maximum element without removing it.
    pub fn peek(&self) -> Option<(u32, f64)> {
        self.heap.first().map(|&v| (v, self.prio[v as usize]))
    }

    /// Removes and returns the element with the largest priority (smallest
    /// index on ties).
    pub fn pop_max(&mut self) -> Option<(u32, f64)> {
        let (&top, _) = self.heap.split_first()?;
        let last = self.heap.pop().expect("non-empty heap has a last element");
        self.pos[top as usize] = NOT_IN_HEAP;
        if top != last {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some((top, self.prio[top as usize]))
    }

    /// Decreases the priority of node `v` by `amount` (Algorithm 2's
    /// `decrease_weight_by`). No-op if `v` has already been popped.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or NaN, or `v` was never enqueued.
    pub fn decrease_by(&mut self, v: u32, amount: f64) {
        assert!(amount >= 0.0, "decrease amount must be non-negative, got {amount}");
        self.prio[v as usize] -= amount;
        let slot = self.pos[v as usize];
        if slot != NOT_IN_HEAP {
            self.sift_down(slot as usize);
        }
    }

    /// Sets the priority of node `v` to an arbitrary new value, restoring
    /// the heap property in either direction. No-op if popped.
    ///
    /// # Panics
    ///
    /// Panics if `new_priority` is NaN or `v` was never enqueued.
    pub fn update(&mut self, v: u32, new_priority: f64) {
        assert!(!new_priority.is_nan(), "priority must not be NaN");
        let old = self.prio[v as usize];
        self.prio[v as usize] = new_priority;
        let slot = self.pos[v as usize];
        if slot == NOT_IN_HEAP {
            return;
        }
        if new_priority > old {
            self.sift_up(slot as usize);
        } else {
            self.sift_down(slot as usize);
        }
    }

    /// Re-inserts a previously popped or removed node with a new priority.
    ///
    /// Lazy greedy uses this to push stale candidates back after
    /// recomputing their true marginal gain.
    ///
    /// # Panics
    ///
    /// Panics if `v` is still enqueued, was never part of the queue, or
    /// `priority` is NaN.
    pub fn reinsert(&mut self, v: u32, priority: f64) {
        assert!(!priority.is_nan(), "priority must not be NaN");
        assert_eq!(self.pos[v as usize], NOT_IN_HEAP, "node {v} is already enqueued");
        self.prio[v as usize] = priority;
        self.pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes node `v` from the queue if present; returns whether it was.
    pub fn remove(&mut self, v: u32) -> bool {
        let slot = self.pos[v as usize];
        if slot == NOT_IN_HEAP {
            return false;
        }
        let slot = slot as usize;
        let last = self.heap.pop().expect("non-empty heap has a last element");
        self.pos[v as usize] = NOT_IN_HEAP;
        if last != v {
            self.heap[slot] = last;
            self.pos[last as usize] = slot as u32;
            self.sift_down(slot);
            self.sift_up(self.pos[last as usize] as usize);
        }
        true
    }

    /// `true` if element at index `a` orders strictly before (above) `b`.
    #[inline]
    fn before(&self, a: u32, b: u32) -> bool {
        let (pa, pb) = (self.prio[a as usize], self.prio[b as usize]);
        pa > pb || (pa == pb && a < b)
    }

    fn sift_up(&mut self, mut slot: usize) {
        let node = self.heap[slot];
        while slot > 0 {
            let parent = (slot - 1) / ARITY;
            if self.before(node, self.heap[parent]) {
                self.heap[slot] = self.heap[parent];
                self.pos[self.heap[slot] as usize] = slot as u32;
                slot = parent;
            } else {
                break;
            }
        }
        self.heap[slot] = node;
        self.pos[node as usize] = slot as u32;
    }

    fn sift_down(&mut self, mut slot: usize) {
        let node = self.heap[slot];
        loop {
            let first_child = slot * ARITY + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let end = (first_child + ARITY).min(self.heap.len());
            let mut best = first_child;
            for child in first_child + 1..end {
                if self.before(self.heap[child], self.heap[best]) {
                    best = child;
                }
            }
            if self.before(self.heap[best], node) {
                self.heap[slot] = self.heap[best];
                self.pos[self.heap[slot] as usize] = slot as u32;
                slot = best;
            } else {
                break;
            }
        }
        self.heap[slot] = node;
        self.pos[node as usize] = slot as u32;
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        for (slot, &node) in self.heap.iter().enumerate() {
            assert_eq!(self.pos[node as usize], slot as u32, "pos/heap mismatch");
            if slot > 0 {
                let parent = (slot - 1) / ARITY;
                assert!(
                    !self.before(node, self.heap[parent]),
                    "heap property violated at slot {slot}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_descending_priority_order() {
        let mut pq = AddressablePq::with_priorities(vec![0.5, 2.0, 1.5, 3.0, 0.1]);
        pq.check_invariants();
        let order: Vec<u32> = std::iter::from_fn(|| pq.pop_max().map(|(v, _)| v)).collect();
        assert_eq!(order, vec![3, 1, 2, 0, 4]);
    }

    #[test]
    fn ties_break_toward_smaller_index() {
        let mut pq = AddressablePq::with_priorities(vec![1.0, 1.0, 1.0]);
        assert_eq!(pq.pop_max(), Some((0, 1.0)));
        assert_eq!(pq.pop_max(), Some((1, 1.0)));
        assert_eq!(pq.pop_max(), Some((2, 1.0)));
    }

    #[test]
    fn decrease_reorders() {
        let mut pq = AddressablePq::with_priorities(vec![5.0, 4.0, 3.0]);
        pq.decrease_by(0, 3.5);
        pq.check_invariants();
        assert_eq!(pq.peek(), Some((1, 4.0)));
        assert_eq!(pq.priority(0), 1.5);
    }

    #[test]
    fn decrease_after_pop_is_noop_for_heap() {
        let mut pq = AddressablePq::with_priorities(vec![5.0, 4.0]);
        assert_eq!(pq.pop_max(), Some((0, 5.0)));
        pq.decrease_by(0, 1.0); // popped: only the stored priority changes
        assert_eq!(pq.priority(0), 4.0);
        assert_eq!(pq.pop_max(), Some((1, 4.0)));
    }

    #[test]
    fn update_can_raise_and_lower() {
        let mut pq = AddressablePq::with_priorities(vec![1.0, 2.0, 3.0]);
        pq.update(0, 10.0);
        pq.check_invariants();
        assert_eq!(pq.peek(), Some((0, 10.0)));
        pq.update(0, -1.0);
        pq.check_invariants();
        assert_eq!(pq.peek(), Some((2, 3.0)));
    }

    #[test]
    fn remove_deletes_arbitrary_elements() {
        let mut pq = AddressablePq::with_priorities(vec![1.0, 2.0, 3.0, 4.0]);
        assert!(pq.remove(2));
        assert!(!pq.remove(2));
        pq.check_invariants();
        let order: Vec<u32> = std::iter::from_fn(|| pq.pop_max().map(|(v, _)| v)).collect();
        assert_eq!(order, vec![3, 1, 0]);
    }

    #[test]
    fn reinsert_after_pop() {
        let mut pq = AddressablePq::with_priorities(vec![3.0, 2.0, 1.0]);
        assert_eq!(pq.pop_max(), Some((0, 3.0)));
        pq.reinsert(0, 1.5);
        pq.check_invariants();
        let order: Vec<u32> = std::iter::from_fn(|| pq.pop_max().map(|(v, _)| v)).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "already enqueued")]
    fn reinsert_of_live_node_panics() {
        let mut pq = AddressablePq::with_priorities(vec![1.0, 2.0]);
        pq.reinsert(0, 5.0);
    }

    #[test]
    fn contains_tracks_membership() {
        let mut pq = AddressablePq::with_priorities(vec![1.0, 2.0]);
        assert!(pq.contains(0) && pq.contains(1));
        pq.pop_max();
        assert!(!pq.contains(1));
        assert!(pq.contains(0));
        assert!(!pq.contains(7));
    }

    #[test]
    fn empty_queue_behaves() {
        let mut pq = AddressablePq::with_priorities(vec![]);
        assert!(pq.is_empty());
        assert_eq!(pq.len(), 0);
        assert_eq!(pq.pop_max(), None);
        assert_eq!(pq.peek(), None);
    }

    #[test]
    fn negative_priorities_are_allowed() {
        let mut pq = AddressablePq::with_priorities(vec![-1.0, -5.0, -0.5]);
        assert_eq!(pq.pop_max(), Some((2, -0.5)));
        pq.decrease_by(0, 10.0);
        assert_eq!(pq.pop_max(), Some((1, -5.0)));
        assert_eq!(pq.pop_max(), Some((0, -11.0)));
    }

    #[test]
    fn large_random_sequence_maintains_invariants() {
        // Deterministic xorshift so the test needs no rand dependency here.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 500;
        let priorities: Vec<f64> = (0..n).map(|_| (next() % 1000) as f64 / 10.0).collect();
        let mut pq = AddressablePq::with_priorities(priorities);
        pq.check_invariants();
        for _ in 0..2000 {
            let v = (next() % n as u64) as u32;
            match next() % 3 {
                0 => {
                    if pq.contains(v) {
                        pq.decrease_by(v, (next() % 50) as f64 / 10.0);
                    }
                }
                1 => {
                    pq.pop_max();
                }
                _ => {
                    pq.remove(v);
                }
            }
            pq.check_invariants();
        }
        // Drain: priorities must come out non-increasing.
        let mut last = f64::INFINITY;
        while let Some((_, p)) = pq.pop_max() {
            assert!(p <= last + 1e-12);
            last = p;
        }
    }
}
