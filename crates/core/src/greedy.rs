//! Centralized greedy maximization of pairwise submodular objectives.
//!
//! Four variants are provided:
//!
//! - [`greedy_select`] — the paper's Algorithm 2: a priority queue seeded
//!   with utilities, with neighbor priorities decreased on every pop. This
//!   is the gold-standard reference every distributed experiment is
//!   normalized against (§6).
//! - [`naive_greedy_select`] — Algorithm 1 verbatim: recomputes every
//!   marginal gain per step, O(n·k). Used as a test oracle.
//! - [`lazy_greedy_select`] — Minoux's lazy greedy, discussed in §3
//!   "Related optimizations": pops a stale candidate, recomputes its true
//!   marginal gain against the current subset, and reinserts unless it still
//!   tops the queue.
//! - [`stochastic_greedy_select`] — stochastic greedy (Mirzasoleiman et
//!   al., 2015): each step scans a random sample of `⌈(n/k)·ln(1/ε)⌉`
//!   remaining candidates.
//!
//! All variants return identical results to Algorithm 1 where their
//! guarantees promise so (the lazy variant exactly, the queue variant
//! exactly, stochastic in expectation), which the test-suite verifies.

use crate::{
    AddressablePq, CoreError, NodeId, NodeSet, PairwiseObjective, Selection, SimilarityGraph,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Options controlling the greedy variants.
///
/// ```
/// use submod_core::GreedyOptions;
///
/// let opts = GreedyOptions::new().record_gains(true);
/// assert!(opts.gains_recorded());
/// ```
#[derive(Clone, Debug)]
pub struct GreedyOptions {
    record_gains: bool,
    allow_negative_gains: bool,
}

impl GreedyOptions {
    /// Default options: gains recorded, negative-gain pops allowed (the
    /// paper's greedy always selects exactly `k` points).
    pub fn new() -> Self {
        GreedyOptions { record_gains: true, allow_negative_gains: true }
    }

    /// Whether to record per-step marginal gains in the [`Selection`].
    pub fn record_gains(mut self, yes: bool) -> Self {
        self.record_gains = yes;
        self
    }

    /// Returns `true` if gains will be recorded.
    pub fn gains_recorded(&self) -> bool {
        self.record_gains
    }

    /// Whether to keep selecting once the best marginal gain turns negative.
    ///
    /// Algorithm 2 always fills the budget; setting this to `false` stops
    /// early instead, which is useful when the objective is non-monotone and
    /// a smaller subset scores higher.
    pub fn allow_negative_gains(mut self, yes: bool) -> Self {
        self.allow_negative_gains = yes;
        self
    }

    /// Returns `true` if negative-gain selections are permitted.
    pub fn negative_gains_allowed(&self) -> bool {
        self.allow_negative_gains
    }
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions::new()
    }
}

fn validate_instance(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
) -> Result<(), CoreError> {
    if objective.num_nodes() != graph.num_nodes() {
        return Err(CoreError::UtilityLengthMismatch {
            utilities: objective.num_nodes(),
            num_nodes: graph.num_nodes(),
        });
    }
    if k > graph.num_nodes() {
        return Err(CoreError::BudgetTooLarge { budget: k, available: graph.num_nodes() });
    }
    Ok(())
}

/// Selects `k` points with the paper's Algorithm 2 (priority-queue greedy).
///
/// All points enter an [`AddressablePq`] with priority `u(v)`. Repeatedly
/// the maximum is popped and added to `S`, and each still-enqueued neighbor
/// `w` has its priority decreased by `(β/α)·s(v, w)`. The popped priority
/// times α is exactly the marginal gain, so the accumulated objective equals
/// `f(S)` without any re-evaluation.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph or `k`
/// exceeds the ground set.
///
/// ```
/// use submod_core::{GraphBuilder, PairwiseObjective, greedy_select};
///
/// # fn main() -> Result<(), submod_core::CoreError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_undirected(0, 1, 1.0)?;
/// let graph = b.build();
/// let obj = PairwiseObjective::from_alpha(0.5, vec![1.0, 0.95, 0.2])?;
/// let sel = greedy_select(&graph, &obj, 2)?;
/// // 0 is picked first; then 2 beats 1 because 1 is similar to 0.
/// assert_eq!(sel.selected().iter().map(|n| n.raw()).collect::<Vec<_>>(), vec![0, 2]);
/// # Ok(())
/// # }
/// ```
pub fn greedy_select(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
) -> Result<Selection, CoreError> {
    greedy_select_with(graph, objective, k, &GreedyOptions::new())
}

/// [`greedy_select`] with explicit [`GreedyOptions`].
///
/// # Errors
///
/// Same conditions as [`greedy_select`].
pub fn greedy_select_with(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    options: &GreedyOptions,
) -> Result<Selection, CoreError> {
    validate_instance(graph, objective, k)?;
    let ratio = objective.ratio();
    let priorities: Vec<f64> = objective.utilities().iter().map(|&u| f64::from(u)).collect();
    let mut pq = AddressablePq::with_priorities(priorities);

    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(if options.record_gains { k } else { 0 });
    let mut value = 0.0f64;

    while selected.len() < k {
        let Some((v, priority)) = pq.pop_max() else { break };
        let gain = objective.alpha() * priority;
        if gain < 0.0 && !options.allow_negative_gains {
            break;
        }
        let vid = NodeId::new(u64::from(v));
        for (w, s) in graph.edges(vid) {
            let w = w.index() as u32;
            if pq.contains(w) {
                pq.decrease_by(w, ratio * f64::from(s));
            }
        }
        selected.push(vid);
        if options.record_gains {
            gains.push(gain);
        }
        value += gain;
    }
    Ok(Selection::new(selected, gains, value))
}

/// Selects `k` points with Algorithm 1 verbatim: each step evaluates the
/// marginal gain of every remaining point. O(n·k·deg) — test oracle only.
///
/// # Errors
///
/// Same conditions as [`greedy_select`].
pub fn naive_greedy_select(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
) -> Result<Selection, CoreError> {
    validate_instance(graph, objective, k)?;
    let n = graph.num_nodes();
    let mut members = NodeSet::new(n);
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut value = 0.0;

    for _ in 0..k {
        let mut best: Option<(NodeId, f64)> = None;
        for i in 0..n {
            let v = NodeId::from_index(i);
            if members.contains(v) {
                continue;
            }
            let gain = objective.marginal_gain(graph, &members, v);
            // Strict > keeps the smallest index on ties, matching the
            // deterministic tie-break of the priority-queue variant.
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((v, gain));
            }
        }
        let Some((v, gain)) = best else { break };
        members.insert(v);
        selected.push(v);
        gains.push(gain);
        value += gain;
    }
    Ok(Selection::new(selected, gains, value))
}

/// Selects `k` points with Minoux's lazy greedy.
///
/// Priorities start at the utilities but are *not* updated when neighbors
/// are selected; instead the top candidate's true marginal gain is
/// recomputed on demand and the candidate is reinserted if it no longer
/// tops the queue. Submodularity guarantees upper bounds only decrease, so
/// the output matches the eager greedy exactly (up to ties).
///
/// The paper (§3) notes this variant can be *slower* for pairwise
/// objectives because deferred updates make later recomputations touch the
/// whole current subset — the Criterion benches quantify that claim.
///
/// # Errors
///
/// Same conditions as [`greedy_select`].
pub fn lazy_greedy_select(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
) -> Result<Selection, CoreError> {
    validate_instance(graph, objective, k)?;
    let priorities: Vec<f64> = objective.utilities().iter().map(|&u| f64::from(u)).collect();
    let mut pq = AddressablePq::with_priorities(priorities);
    let n = graph.num_nodes();
    let mut members = NodeSet::new(n);
    // Step counter at which each node's cached priority was last refreshed.
    let mut fresh_at = vec![0u32; n];
    let mut step = 0u32;

    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut value = 0.0;

    while selected.len() < k {
        let Some((v, cached)) = pq.pop_max() else { break };
        if fresh_at[v as usize] == step {
            // Cached value is current: select it.
            let vid = NodeId::new(u64::from(v));
            members.insert(vid);
            selected.push(vid);
            let gain = objective.alpha() * cached;
            gains.push(gain);
            value += gain;
            step += 1;
            continue;
        }
        // Stale: recompute the true marginal gain (in priority units) and
        // reinsert. If it still tops the queue it is selected next pop.
        let vid = NodeId::new(u64::from(v));
        let gain = objective.marginal_gain(graph, &members, vid);
        let priority = gain / objective.alpha();
        fresh_at[v as usize] = step;
        // Reinsert by pushing back with the updated priority.
        // `remove`+`update` is emulated via a fresh insert: AddressablePq has
        // fixed membership, so instead lower/raise the stored priority and
        // re-add through `update` after re-registering the slot.
        pq.reinsert(v, priority);
    }
    Ok(Selection::new(selected, gains, value))
}

/// Selects up to `k` points with threshold greedy (Badanidiyuru &
/// Vondrák, 2014), the third "related optimization" §3 discusses.
///
/// Thresholds sweep down geometrically from the maximum utility by factors
/// of `(1 − ε)`; each pass adds every remaining point whose current
/// marginal gain meets the threshold. Gives a `(1 − 1/e − ε)` guarantee
/// for monotone objectives in `O((n/ε)·log(n/ε))` gain evaluations.
///
/// # Errors
///
/// Returns an error under the same conditions as [`greedy_select`], or if
/// `epsilon ∉ (0, 1)`.
pub fn threshold_greedy_select(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    epsilon: f64,
) -> Result<Selection, CoreError> {
    validate_instance(graph, objective, k)?;
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(CoreError::EmptyParameter { name: "epsilon" });
    }
    let n = graph.num_nodes();
    if k == 0 || n == 0 {
        return Ok(Selection::empty());
    }
    let max_utility = objective
        .utilities()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max)
        .max(f32::MIN_POSITIVE) as f64;
    let stop = epsilon / n as f64 * max_utility;

    let mut members = NodeSet::new(n);
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut value = 0.0;
    let mut threshold = objective.alpha() * max_utility;
    while selected.len() < k && threshold >= stop {
        for i in 0..n {
            if selected.len() >= k {
                break;
            }
            let v = NodeId::from_index(i);
            if members.contains(v) {
                continue;
            }
            let gain = objective.marginal_gain(graph, &members, v);
            if gain >= threshold {
                members.insert(v);
                selected.push(v);
                gains.push(gain);
                value += gain;
            }
        }
        threshold *= 1.0 - epsilon;
    }
    Ok(Selection::new(selected, gains, value))
}

/// Selects `k` points with stochastic greedy (Mirzasoleiman et al., 2015).
///
/// Each step draws `⌈(n/k)·ln(1/ε)⌉` uniformly random remaining candidates
/// and picks the best of the sample, giving a `(1 − 1/e − ε)` guarantee in
/// expectation for monotone objectives.
///
/// # Errors
///
/// Returns an error under the same conditions as [`greedy_select`], or if
/// `epsilon ∉ (0, 1)`.
pub fn stochastic_greedy_select(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    epsilon: f64,
    seed: u64,
) -> Result<Selection, CoreError> {
    validate_instance(graph, objective, k)?;
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(CoreError::EmptyParameter { name: "epsilon" });
    }
    let n = graph.num_nodes();
    if k == 0 || n == 0 {
        return Ok(Selection::empty());
    }
    let sample_size = (((n as f64 / k as f64) * (1.0 / epsilon).ln()).ceil() as usize).clamp(1, n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut remaining: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let mut members = NodeSet::new(n);
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut value = 0.0;

    while selected.len() < k && !remaining.is_empty() {
        let take = sample_size.min(remaining.len());
        // Partial Fisher–Yates: move `take` random candidates to the front.
        for i in 0..take {
            let j = i + (rand::Rng::gen_range(&mut rng, 0..remaining.len() - i));
            remaining.swap(i, j);
        }
        let mut best: Option<(usize, f64)> = None;
        for (idx, &v) in remaining[..take].iter().enumerate() {
            let gain = objective.marginal_gain(graph, &members, v);
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((idx, gain));
            }
        }
        let (idx, gain) = best.expect("sample is non-empty");
        let v = remaining.swap_remove(idx);
        members.insert(v);
        selected.push(v);
        gains.push(gain);
        value += gain;
    }
    let _ = remaining.choose(&mut rng); // keep RNG stream length stable across k
    Ok(Selection::new(selected, gains, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::Rng;

    fn random_instance(
        n: usize,
        degree: usize,
        alpha: f64,
        seed: u64,
    ) -> (SimilarityGraph, PairwiseObjective) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u64 {
            for _ in 0..degree {
                let w = rng.gen_range(0..n as u64);
                if w != v {
                    b.add_undirected(v, w, rng.gen_range(0.0..1.0)).unwrap();
                }
            }
        }
        let graph = b.build();
        let utilities: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let objective = PairwiseObjective::from_alpha(alpha, utilities).unwrap();
        (graph, objective)
    }

    #[test]
    fn pq_greedy_matches_naive_oracle() {
        for seed in 0..5 {
            let (graph, obj) = random_instance(40, 3, 0.8, seed);
            let fast = greedy_select(&graph, &obj, 15).unwrap();
            let slow = naive_greedy_select(&graph, &obj, 15).unwrap();
            assert_eq!(fast.selected(), slow.selected(), "seed {seed}");
            assert!((fast.objective_value() - slow.objective_value()).abs() < 1e-9);
        }
    }

    #[test]
    fn lazy_greedy_matches_naive_oracle() {
        for seed in 0..5 {
            let (graph, obj) = random_instance(40, 3, 0.8, seed);
            let lazy = lazy_greedy_select(&graph, &obj, 15).unwrap();
            let slow = naive_greedy_select(&graph, &obj, 15).unwrap();
            assert_eq!(lazy.selected(), slow.selected(), "seed {seed}");
        }
    }

    #[test]
    fn accumulated_value_matches_reevaluation() {
        let (graph, obj) = random_instance(60, 4, 0.6, 9);
        let sel = greedy_select(&graph, &obj, 30).unwrap();
        let reeval = obj.evaluate(&graph, sel.selected());
        assert!(
            (sel.objective_value() - reeval).abs() < 1e-6,
            "telescoped {} vs re-evaluated {reeval}",
            sel.objective_value()
        );
    }

    #[test]
    fn greedy_respects_budget_and_uniqueness() {
        let (graph, obj) = random_instance(50, 3, 0.9, 3);
        let sel = greedy_select(&graph, &obj, 20).unwrap();
        assert_eq!(sel.len(), 20);
        let mut ids: Vec<u64> = sel.selected().iter().map(|n| n.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20, "no duplicates");
    }

    #[test]
    fn k_zero_and_k_full() {
        let (graph, obj) = random_instance(10, 2, 0.9, 1);
        assert!(greedy_select(&graph, &obj, 0).unwrap().is_empty());
        let all = greedy_select(&graph, &obj, 10).unwrap();
        assert_eq!(all.len(), 10);
        let total = obj.evaluate(&graph, all.selected());
        assert!((all.objective_value() - total).abs() < 1e-6);
    }

    #[test]
    fn budget_too_large_is_an_error() {
        let (graph, obj) = random_instance(10, 2, 0.9, 1);
        assert!(matches!(
            greedy_select(&graph, &obj, 11),
            Err(CoreError::BudgetTooLarge { budget: 11, available: 10 })
        ));
    }

    #[test]
    fn mismatched_objective_is_an_error() {
        let (graph, _) = random_instance(10, 2, 0.9, 1);
        let obj = PairwiseObjective::from_alpha(0.9, vec![1.0; 9]).unwrap();
        assert!(matches!(
            greedy_select(&graph, &obj, 2),
            Err(CoreError::UtilityLengthMismatch { .. })
        ));
    }

    #[test]
    fn gains_are_nonincreasing_for_monotone_instances() {
        // Submodularity ⇒ greedy marginal gains never increase.
        let (graph, obj) = random_instance(50, 3, 0.9, 11);
        let sel = greedy_select(&graph, &obj, 25).unwrap();
        for pair in sel.gains().windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9, "gains must be non-increasing: {pair:?}");
        }
    }

    #[test]
    fn stop_on_negative_gain_option() {
        // Utilities of zero with strong similarities: every pick after the
        // first few has negative gain.
        let mut b = GraphBuilder::new(4);
        for v in 0..4u64 {
            for w in v + 1..4 {
                b.add_undirected(v, w, 1.0).unwrap();
            }
        }
        let graph = b.build();
        let obj = PairwiseObjective::new(1.0, 1.0, vec![0.1; 4]).unwrap();
        let opts = GreedyOptions::new().allow_negative_gains(false);
        let sel = greedy_select_with(&graph, &obj, 4, &opts).unwrap();
        assert!(sel.len() < 4, "selection must stop before negative gains");
        let full = greedy_select(&graph, &obj, 4).unwrap();
        assert_eq!(full.len(), 4, "default fills the budget regardless");
    }

    #[test]
    fn stochastic_greedy_close_to_greedy() {
        let (graph, obj) = random_instance(200, 4, 0.9, 21);
        let exact = greedy_select(&graph, &obj, 20).unwrap();
        let stochastic = stochastic_greedy_select(&graph, &obj, 20, 0.05, 77).unwrap();
        assert_eq!(stochastic.len(), 20);
        let ratio = obj.evaluate(&graph, stochastic.selected()) / exact.objective_value();
        assert!(ratio > 0.85, "stochastic greedy quality ratio {ratio} too low");
    }

    #[test]
    fn stochastic_greedy_is_seed_deterministic() {
        let (graph, obj) = random_instance(100, 3, 0.9, 5);
        let a = stochastic_greedy_select(&graph, &obj, 10, 0.1, 3).unwrap();
        let b = stochastic_greedy_select(&graph, &obj, 10, 0.1, 3).unwrap();
        assert_eq!(a.selected(), b.selected());
    }

    #[test]
    fn stochastic_greedy_rejects_bad_epsilon() {
        let (graph, obj) = random_instance(10, 2, 0.9, 5);
        assert!(stochastic_greedy_select(&graph, &obj, 2, 0.0, 0).is_err());
        assert!(stochastic_greedy_select(&graph, &obj, 2, 1.0, 0).is_err());
    }

    #[test]
    fn threshold_greedy_close_to_greedy() {
        let (graph, obj) = random_instance(200, 4, 0.9, 31);
        let exact = greedy_select(&graph, &obj, 20).unwrap();
        let thresh = threshold_greedy_select(&graph, &obj, 20, 0.05).unwrap();
        assert!(!thresh.is_empty());
        let ratio = obj.evaluate(&graph, thresh.selected()) / exact.objective_value();
        assert!(ratio > 0.85, "threshold greedy quality ratio {ratio} too low");
    }

    #[test]
    fn threshold_greedy_rejects_bad_epsilon() {
        let (graph, obj) = random_instance(10, 2, 0.9, 5);
        assert!(threshold_greedy_select(&graph, &obj, 2, 0.0).is_err());
        assert!(threshold_greedy_select(&graph, &obj, 2, 1.0).is_err());
    }

    #[test]
    fn threshold_greedy_respects_budget() {
        let (graph, obj) = random_instance(50, 3, 0.9, 8);
        let sel = threshold_greedy_select(&graph, &obj, 10, 0.1).unwrap();
        assert!(sel.len() <= 10);
        let mut ids: Vec<u64> = sel.selected().iter().map(|n| n.raw()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sel.len());
    }

    #[test]
    fn isolated_points_selected_by_utility_order() {
        let graph = SimilarityGraph::empty(5);
        let obj = PairwiseObjective::from_alpha(0.9, vec![0.1, 0.5, 0.3, 0.9, 0.7]).unwrap();
        let sel = greedy_select(&graph, &obj, 3).unwrap();
        let ids: Vec<u64> = sel.selected().iter().map(|n| n.raw()).collect();
        assert_eq!(ids, vec![3, 4, 1]);
    }
}
