use crate::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The result of a subset-selection run.
///
/// Stores the selected points in selection order, the marginal gain realized
/// at each step, and the final objective value. Selection order matters: for
/// the greedy algorithms the prefix of length `j` is itself the greedy
/// solution of budget `j`.
///
/// ```
/// use submod_core::{NodeId, Selection};
///
/// let sel = Selection::new(vec![NodeId::new(2), NodeId::new(0)], vec![1.5, 0.5], 2.0);
/// assert_eq!(sel.len(), 2);
/// assert_eq!(sel.objective_value(), 2.0);
/// assert_eq!(sel.selected()[0], NodeId::new(2));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    selected: Vec<NodeId>,
    gains: Vec<f64>,
    objective_value: f64,
}

impl Selection {
    /// Creates a selection from its parts.
    ///
    /// # Panics
    ///
    /// Panics if `gains` is non-empty and differs in length from `selected`.
    pub fn new(selected: Vec<NodeId>, gains: Vec<f64>, objective_value: f64) -> Self {
        assert!(
            gains.is_empty() || gains.len() == selected.len(),
            "per-step gains must align with selected points"
        );
        Selection { selected, gains, objective_value }
    }

    /// An empty selection with objective value 0.
    pub fn empty() -> Self {
        Selection { selected: Vec::new(), gains: Vec::new(), objective_value: 0.0 }
    }

    /// Selected node ids in selection order.
    #[inline]
    pub fn selected(&self) -> &[NodeId] {
        &self.selected
    }

    /// Marginal gain realized at each selection step (may be empty when the
    /// producing algorithm does not track per-step gains).
    #[inline]
    pub fn gains(&self) -> &[f64] {
        &self.gains
    }

    /// Final objective value `f(S)` as accounted by the producing algorithm.
    #[inline]
    pub fn objective_value(&self) -> f64 {
        self.objective_value
    }

    /// Number of selected points.
    #[inline]
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// Returns `true` if nothing was selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Consumes the selection, returning the selected ids.
    pub fn into_selected(self) -> Vec<NodeId> {
        self.selected
    }

    /// Uniformly subsamples the selection down to `k` points (paper §4.2 and
    /// Algorithm 6's final step use this when a phase overshoots the budget).
    ///
    /// Gains are dropped because they no longer align with a greedy prefix.
    /// If the selection already has `≤ k` points it is returned unchanged.
    pub fn subsample(self, k: usize, seed: u64) -> Selection {
        if self.selected.len() <= k {
            return self;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ids = self.selected;
        ids.shuffle(&mut rng);
        ids.truncate(k);
        Selection { selected: ids, gains: Vec::new(), objective_value: f64::NAN }
    }
}

impl Default for Selection {
    fn default() -> Self {
        Selection::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u64]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn accessors_return_parts() {
        let sel = Selection::new(ids(&[5, 3]), vec![2.0, 1.0], 3.0);
        assert_eq!(sel.selected(), &ids(&[5, 3])[..]);
        assert_eq!(sel.gains(), &[2.0, 1.0]);
        assert_eq!(sel.objective_value(), 3.0);
        assert!(!sel.is_empty());
    }

    #[test]
    fn empty_selection() {
        let sel = Selection::empty();
        assert!(sel.is_empty());
        assert_eq!(sel.len(), 0);
        assert_eq!(sel.objective_value(), 0.0);
        assert_eq!(Selection::default(), sel);
    }

    #[test]
    fn subsample_reduces_to_k() {
        let sel = Selection::new(ids(&[0, 1, 2, 3, 4, 5]), vec![], 10.0);
        let sub = sel.subsample(3, 7);
        assert_eq!(sub.len(), 3);
        // Members must come from the original selection, without duplicates.
        let mut raw: Vec<u64> = sub.selected().iter().map(|n| n.raw()).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), 3);
        assert!(raw.iter().all(|&r| r < 6));
    }

    #[test]
    fn subsample_is_deterministic_per_seed() {
        let sel = Selection::new(ids(&[0, 1, 2, 3, 4, 5, 6, 7]), vec![], 0.0);
        let a = sel.clone().subsample(4, 42);
        let b = sel.subsample(4, 42);
        assert_eq!(a.selected(), b.selected());
    }

    #[test]
    fn subsample_noop_when_small_enough() {
        let sel = Selection::new(ids(&[1, 2]), vec![1.0, 0.5], 1.5);
        let same = sel.clone().subsample(5, 0);
        assert_eq!(same, sel);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_gains_panic() {
        let _ = Selection::new(ids(&[1]), vec![1.0, 2.0], 0.0);
    }
}
