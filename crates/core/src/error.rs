use std::error::Error;
use std::fmt;

/// Errors produced by the core selection primitives.
///
/// All public fallible functions in this crate return `Result<_, CoreError>`.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A node id referenced a node outside the ground set.
    NodeOutOfBounds {
        /// The offending node index.
        node: u64,
        /// The number of nodes in the ground set.
        num_nodes: usize,
    },
    /// An edge weight was negative, NaN, or infinite.
    InvalidWeight {
        /// The offending weight.
        weight: f32,
    },
    /// A self-loop edge `(v, v)` was supplied.
    SelfLoop {
        /// The node with the self-loop.
        node: u64,
    },
    /// The balancing parameters were invalid (negative, NaN, or `α = 0`).
    InvalidBalance {
        /// The utility coefficient α.
        alpha: f64,
        /// The diversity coefficient β.
        beta: f64,
    },
    /// A utility value was NaN or infinite.
    InvalidUtility {
        /// The node whose utility is invalid.
        node: u64,
        /// The offending utility.
        utility: f32,
    },
    /// The number of utilities did not match the graph size.
    UtilityLengthMismatch {
        /// Number of utilities provided.
        utilities: usize,
        /// Number of nodes expected.
        num_nodes: usize,
    },
    /// A requested subset size exceeded the ground set.
    BudgetTooLarge {
        /// The requested cardinality `k`.
        budget: usize,
        /// The available ground set size.
        available: usize,
    },
    /// A parameter that must be positive was zero.
    EmptyParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} is out of bounds for ground set of {num_nodes} nodes")
            }
            CoreError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} is not a finite non-negative number")
            }
            CoreError::SelfLoop { node } => write!(f, "self-loop on node {node} is not allowed"),
            CoreError::InvalidBalance { alpha, beta } => {
                write!(f, "balance parameters alpha={alpha}, beta={beta} are invalid")
            }
            CoreError::InvalidUtility { node, utility } => {
                write!(f, "utility {utility} of node {node} is not finite")
            }
            CoreError::UtilityLengthMismatch { utilities, num_nodes } => {
                write!(f, "{utilities} utilities provided for {num_nodes} nodes")
            }
            CoreError::BudgetTooLarge { budget, available } => {
                write!(f, "budget {budget} exceeds available ground set of {available} nodes")
            }
            CoreError::EmptyParameter { name } => {
                write!(f, "parameter `{name}` must be positive")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = CoreError::NodeOutOfBounds { node: 5, num_nodes: 3 };
        let msg = err.to_string();
        assert!(msg.contains('5') && msg.contains('3'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
