//! Core building blocks for pairwise submodular subset selection.
//!
//! This crate implements the centralized half of the MLSys 2025 paper
//! *"On Distributed Larger-Than-Memory Subset Selection With Pairwise
//! Submodular Functions"* (Böther et al.):
//!
//! - [`SimilarityGraph`]: a compact CSR similarity graph over data points,
//!   typically a symmetrized k-nearest-neighbor graph in embedding space.
//!   Backed either by owned vectors or by a read-only `mmap` of an
//!   on-disk [`store`] file, so the ground set can be larger than memory.
//! - [`PairwiseObjective`]: the function class
//!   `f(S) = α·Σ_{v∈S} u(v) − β·Σ_{{v,w}∈E, v,w∈S} s(v,w)` (paper §3),
//!   including the monotonicity offset of Appendix A.
//! - [`AddressablePq`]: an addressable max-priority queue with
//!   `decrease_by`, the substrate of the paper's Algorithm 2.
//! - [`greedy`]: the centralized greedy (Algorithms 1/2) and the lazy /
//!   stochastic variants discussed as "related optimizations" in §3.
//!
//! # Example
//!
//! ```
//! use submod_core::{GraphBuilder, PairwiseObjective, greedy_select};
//!
//! # fn main() -> Result<(), submod_core::CoreError> {
//! // A 4-point instance: two similar pairs.
//! let mut builder = GraphBuilder::new(4);
//! builder.add_undirected(0, 1, 0.9)?;
//! builder.add_undirected(2, 3, 0.8)?;
//! let graph = builder.build();
//!
//! let objective = PairwiseObjective::from_alpha(0.9, vec![1.0, 0.9, 0.8, 0.7])?;
//! let selection = greedy_select(&graph, &objective, 2)?;
//! // Greedy prefers one point from each similar pair.
//! assert_eq!(selection.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod ids;
mod nodeset;
mod normalize;
mod objective;
mod pq;
mod selection;

pub mod greedy;
pub mod store;

pub use error::CoreError;
pub use graph::{GraphBuilder, SimilarityGraph};
pub use greedy::{
    greedy_select, greedy_select_with, lazy_greedy_select, naive_greedy_select,
    stochastic_greedy_select, threshold_greedy_select, GreedyOptions,
};
pub use ids::NodeId;
pub use nodeset::NodeSet;
pub use normalize::ScoreNormalizer;
pub use objective::PairwiseObjective;
pub use pq::AddressablePq;
pub use selection::Selection;
pub use store::GraphError;
