//! The on-disk CSR graph store: a compact binary format plus a read-only
//! `mmap` loader.
//!
//! The paper's headline claim is *larger-than-memory* selection; after the
//! drivers went engine-resident the k-NN graph itself was the last
//! process-resident piece. This module makes the ground set disk-resident:
//! the symmetrized, parallel-edge-deduplicated CSR adjacency is written
//! once and then memory-mapped read-only, so the OS pages rows in on
//! demand, many concurrent selections share one immutable mapping, and the
//! expensive graph build amortizes to zero across runs.
//!
//! # Binary layout (version 1, little-endian)
//!
//! ```text
//! offset  size              field
//! 0       8                 magic  b"SUBMCSR1"
//! 8       4                 version (u32, = 1)
//! 12      4                 flags   (u32: bit0 symmetric, bit1 has-utilities)
//! 16      8                 num_nodes (u64)
//! 24      8                 num_edges (u64, directed CSR entries)
//! 32      8                 checksum  (u64, FNV-1a over every payload byte)
//! 40      24                reserved (zero)
//! 64      (n+1)·8           offsets   (u64 each, row v = [offsets[v], offsets[v+1]))
//! …       e·4               neighbors (u32 dense node ids, sorted per row)
//! …       e·4               weights   (f32, finite and non-negative)
//! …       n·4               utilities (f32, only if bit1 of flags is set)
//! ```
//!
//! Every section starts at a file offset aligned to its element size
//! (the header is 64 bytes and `mmap` regions are page-aligned), so the
//! loader reinterprets the mapping in place — *zero-copy* — after a single
//! validation sweep. Validation is exhaustive and typed: a malformed store
//! surfaces as a [`GraphError`], never as UB or a panic.

use crate::graph::SimilarityGraph;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// First 8 bytes of every store file.
pub const MAGIC: [u8; 8] = *b"SUBMCSR1";
/// Current (and only) format version.
pub const VERSION: u32 = 1;
/// Bytes of header before the offsets section.
pub const HEADER_LEN: usize = 64;

const FLAG_SYMMETRIC: u32 = 1;
const FLAG_UTILITIES: u32 = 2;
const KNOWN_FLAGS: u32 = FLAG_SYMMETRIC | FLAG_UTILITIES;

/// Errors produced while writing, opening, or validating an on-disk graph
/// store.
///
/// Every failure mode of the `mmap` path is a first-class variant: I/O,
/// truncation, a foreign or future file, payload corruption, and each CSR
/// invariant violation. `Io` keeps the rendered OS error so the enum stays
/// `Clone + PartialEq` for tests.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An OS-level read/write/map failure.
    Io {
        /// What was being done.
        context: &'static str,
        /// Rendered underlying error.
        detail: String,
    },
    /// The file is shorter (or longer) than the header-declared sections.
    Truncated {
        /// Byte length the header demands.
        expected: u64,
        /// Byte length actually on disk.
        actual: u64,
    },
    /// The first 8 bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes found instead.
        found: [u8; 8],
    },
    /// The version field named a format this build does not read.
    UnsupportedVersion {
        /// The version found.
        found: u32,
    },
    /// The flags field had bits this version does not define.
    UnknownFlags {
        /// The flags found.
        found: u32,
    },
    /// A reserved header byte was non-zero (corruption, or a future field
    /// this version cannot interpret).
    ReservedNonZero {
        /// File offset of the non-zero byte.
        position: usize,
    },
    /// The payload bytes do not hash to the stored checksum (bit rot or a
    /// partial write).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum of the bytes on disk.
        computed: u64,
    },
    /// More nodes than the `u32` neighbor encoding can address.
    TooManyNodes {
        /// Node count in the header.
        num_nodes: u64,
    },
    /// `offsets[v+1] < offsets[v]`.
    NonMonotoneOffsets {
        /// First node whose row start exceeds its row end.
        node: usize,
    },
    /// An offset pointed past the edge arrays.
    OffsetOutOfBounds {
        /// Node whose offset overruns.
        node: usize,
        /// The offending offset value.
        offset: u64,
        /// Number of edge entries actually present.
        num_edges: u64,
    },
    /// `offsets[num_nodes]` did not equal the header's edge count.
    EdgeCountMismatch {
        /// Terminal offset value.
        offsets_end: u64,
        /// Edge count the header declared.
        num_edges: u64,
    },
    /// A neighbor id referenced a node outside `0..num_nodes`.
    EdgeOutOfBounds {
        /// Row containing the bad edge.
        node: usize,
        /// The out-of-range neighbor id.
        neighbor: u32,
        /// Number of nodes in the store.
        num_nodes: usize,
    },
    /// A neighbor row was not strictly ascending (unsorted or duplicated).
    UnsortedNeighbors {
        /// Row that violates the order.
        node: usize,
    },
    /// A row contained its own node id.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// An edge weight was NaN, infinite, or negative.
    InvalidWeight {
        /// Row containing the bad weight.
        node: usize,
        /// The offending weight.
        weight: f32,
    },
    /// A stored utility was NaN or infinite.
    InvalidUtility {
        /// Index of the bad utility.
        node: usize,
        /// The offending utility.
        utility: f32,
    },
    /// Utilities were requested but the store was written without them.
    MissingUtilities,
    /// The number of utilities handed to the writer did not match the
    /// graph's node count.
    UtilityCountMismatch {
        /// Utilities provided.
        utilities: usize,
        /// Nodes in the graph.
        num_nodes: usize,
    },
    /// A section was not aligned for its element type. Unreachable for
    /// files this crate writes (the layout is aligned by construction);
    /// kept so a hand-crafted file still fails closed.
    Misaligned {
        /// Which section was misaligned.
        section: &'static str,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Io { context, detail } => {
                write!(f, "i/o failure while {context}: {detail}")
            }
            GraphError::Truncated { expected, actual } => {
                write!(f, "store file is {actual} bytes but the header demands {expected}")
            }
            GraphError::BadMagic { found } => {
                write!(f, "not a graph store (magic {found:02x?})")
            }
            GraphError::UnsupportedVersion { found } => {
                write!(f, "store version {found} is not supported (this build reads {VERSION})")
            }
            GraphError::UnknownFlags { found } => {
                write!(f, "store flags {found:#x} contain bits this version does not define")
            }
            GraphError::ReservedNonZero { position } => {
                write!(f, "reserved header byte at offset {position} is non-zero")
            }
            GraphError::ChecksumMismatch { stored, computed } => {
                write!(f, "payload checksum {computed:#018x} does not match stored {stored:#018x}")
            }
            GraphError::TooManyNodes { num_nodes } => {
                write!(f, "{num_nodes} nodes exceed the u32 neighbor id space")
            }
            GraphError::NonMonotoneOffsets { node } => {
                write!(f, "offsets are not monotone at node {node}")
            }
            GraphError::OffsetOutOfBounds { node, offset, num_edges } => {
                write!(f, "offset {offset} of node {node} exceeds the {num_edges} stored edges")
            }
            GraphError::EdgeCountMismatch { offsets_end, num_edges } => {
                write!(f, "terminal offset {offsets_end} does not match edge count {num_edges}")
            }
            GraphError::EdgeOutOfBounds { node, neighbor, num_nodes } => {
                write!(f, "node {node} lists neighbor {neighbor} outside 0..{num_nodes}")
            }
            GraphError::UnsortedNeighbors { node } => {
                write!(f, "neighbor row of node {node} is not strictly ascending")
            }
            GraphError::SelfLoop { node } => write!(f, "node {node} lists itself as a neighbor"),
            GraphError::InvalidWeight { node, weight } => {
                write!(f, "weight {weight} of node {node} is not a finite non-negative number")
            }
            GraphError::InvalidUtility { node, utility } => {
                write!(f, "utility {utility} of node {node} is not finite")
            }
            GraphError::MissingUtilities => {
                write!(f, "store was written without a utilities section")
            }
            GraphError::UtilityCountMismatch { utilities, num_nodes } => {
                write!(f, "{utilities} utilities provided for a graph of {num_nodes} nodes")
            }
            GraphError::Misaligned { section } => {
                write!(f, "section `{section}` is not aligned for its element type")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl GraphError {
    fn io(context: &'static str, err: std::io::Error) -> Self {
        GraphError::Io { context, detail: err.to_string() }
    }
}

/// Folds a primary failure and its failed fallback into one `io::Error`
/// so both causes survive into the rendered [`GraphError::Io`] detail.
fn io_pair(primary: std::io::Error, fallback: std::io::Error) -> std::io::Error {
    std::io::Error::new(primary.kind(), format!("{primary}; owned-buffer fallback: {fallback}"))
}

/// FNV-1a 64-bit hash of the payload bytes (everything after the header).
///
/// Part of the format contract: corruption tests recompute it after
/// altering a section so the alteration is judged by the *semantic*
/// validator rather than caught here first.
pub fn payload_checksum(payload: &[u8]) -> u64 {
    let mut state = 0xCBF2_9CE4_8422_2325u64;
    for &b in payload {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x0000_0100_0000_01B3);
    }
    state
}

/// Streaming FNV-1a accumulator for the writer (identical output to
/// [`payload_checksum`] without materializing the payload).
struct Checksum(u64);

impl Checksum {
    fn new() -> Self {
        Checksum(0xCBF2_9CE4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Byte length a version-1 store with these counts must have, or `None`
/// if the counts are so large the length overflows `u64` (only reachable
/// from a corrupt header — no real file can be that long).
fn expected_len(num_nodes: u64, num_edges: u64, has_utilities: bool) -> Option<u64> {
    let offsets = num_nodes.checked_add(1)?.checked_mul(8)?;
    let edges = num_edges.checked_mul(8)?;
    let utilities = if has_utilities { num_nodes.checked_mul(4)? } else { 0 };
    (HEADER_LEN as u64).checked_add(offsets)?.checked_add(edges)?.checked_add(utilities)
}

/// Writes a validated CSR triple (plus optional utilities) as a store file.
///
/// The caller guarantees the arrays already satisfy the CSR invariants
/// (they come from a live [`SimilarityGraph`]); utilities are validated
/// here because they enter from outside the graph.
pub(crate) fn write_store(
    path: &Path,
    offsets: &[u64],
    neighbors: &[u32],
    weights: &[f32],
    symmetric: bool,
    utilities: Option<&[f32]>,
) -> Result<(), GraphError> {
    let _span = submod_obs::span_full("store.write");
    let num_nodes = offsets.len() - 1;
    if num_nodes as u64 > u64::from(u32::MAX) {
        return Err(GraphError::TooManyNodes { num_nodes: num_nodes as u64 });
    }
    if let Some(utilities) = utilities {
        if utilities.len() != num_nodes {
            return Err(GraphError::UtilityCountMismatch { utilities: utilities.len(), num_nodes });
        }
        for (node, &u) in utilities.iter().enumerate() {
            if !u.is_finite() {
                return Err(GraphError::InvalidUtility { node, utility: u });
            }
        }
    }

    // Pre-pass: checksum the payload exactly as it will be laid out.
    let mut sum = Checksum::new();
    for &o in offsets {
        sum.update(&o.to_le_bytes());
    }
    for &n in neighbors {
        sum.update(&n.to_le_bytes());
    }
    for &w in weights {
        sum.update(&w.to_le_bytes());
    }
    if let Some(utilities) = utilities {
        for &u in utilities {
            sum.update(&u.to_le_bytes());
        }
    }

    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| GraphError::io("creating the store directory", e))?;
        }
    }
    let file = File::create(path).map_err(|e| GraphError::io("creating the store file", e))?;
    let mut w = BufWriter::new(file);
    let wr = |w: &mut BufWriter<File>, bytes: &[u8]| {
        w.write_all(bytes).map_err(|e| GraphError::io("writing the store file", e))
    };

    let mut flags = 0u32;
    if symmetric {
        flags |= FLAG_SYMMETRIC;
    }
    if utilities.is_some() {
        flags |= FLAG_UTILITIES;
    }
    wr(&mut w, &MAGIC)?;
    wr(&mut w, &VERSION.to_le_bytes())?;
    wr(&mut w, &flags.to_le_bytes())?;
    wr(&mut w, &(num_nodes as u64).to_le_bytes())?;
    wr(&mut w, &(neighbors.len() as u64).to_le_bytes())?;
    wr(&mut w, &sum.0.to_le_bytes())?;
    wr(&mut w, &[0u8; 24])?;
    for &o in offsets {
        wr(&mut w, &o.to_le_bytes())?;
    }
    for &n in neighbors {
        wr(&mut w, &n.to_le_bytes())?;
    }
    for &x in weights {
        wr(&mut w, &x.to_le_bytes())?;
    }
    if let Some(utilities) = utilities {
        for &u in utilities {
            wr(&mut w, &u.to_le_bytes())?;
        }
    }
    w.flush().map_err(|e| GraphError::io("flushing the store file", e))?;
    let payload = std::mem::size_of_val(offsets)
        + std::mem::size_of_val(neighbors)
        + std::mem::size_of_val(weights)
        + utilities.map_or(0, std::mem::size_of_val);
    submod_obs::counter!("store.writes").incr();
    submod_obs::counter!("store.written_bytes").add((HEADER_LEN + payload) as u64);
    Ok(())
}

/// A validated read-only mapping of a store file.
///
/// The heavy lifting lives in [`submod_mman::CsrView`], which validated
/// each section's bounds and alignment once at open and cached the typed
/// slices — so these accessors are bare pointer/length loads that inline
/// into the per-edge graph-traversal loops above.
#[derive(Debug)]
pub(crate) struct MappedCsr {
    view: submod_mman::CsrView,
}

impl MappedCsr {
    /// The `(num_nodes + 1)` row offsets.
    #[inline]
    pub(crate) fn offsets(&self) -> &[u64] {
        self.view.offsets()
    }

    /// All neighbor ids, concatenated row-major.
    #[inline]
    pub(crate) fn neighbors(&self) -> &[u32] {
        self.view.neighbors()
    }

    /// All edge weights, aligned with [`Self::neighbors`].
    #[inline]
    pub(crate) fn weights(&self) -> &[f32] {
        self.view.weights()
    }

    /// Bytes of the backing file.
    pub(crate) fn file_bytes(&self) -> usize {
        self.view.file_len()
    }
}

/// Opens and fully validates a store file.
///
/// Returns the mapped CSR sections plus the utilities (copied out — they
/// are `O(nodes)`, dwarfed by the `O(edges)` arrays that stay mapped).
pub(crate) fn open_store(path: &Path) -> Result<(MappedCsr, Option<Vec<f32>>), GraphError> {
    use submod_obs::faults::{self, FaultSite};
    let _span = submod_obs::span_full("store.open");
    // Injected transient open faults self-clear, so a bounded retry always
    // recovers; injected permanent faults exhaust the attempts and surface
    // as a typed error like any real open failure would.
    let file = {
        let mut opened = None;
        for attempt in 0..faults::MAX_IO_ATTEMPTS {
            if let Some(err) = faults::inject_io(FaultSite::StoreOpen) {
                if faults::is_injected_transient(&err) && attempt + 1 < faults::MAX_IO_ATTEMPTS {
                    faults::backoff(attempt);
                    continue;
                }
                return Err(GraphError::io("opening the store file", err));
            }
            opened =
                Some(File::open(path).map_err(|e| GraphError::io("opening the store file", e))?);
            break;
        }
        opened.expect("the open loop either returns an error or opens the file")
    };
    // A failed mmap (no mmap support, address-space exhaustion, or an
    // injected mmap-open fault) degrades to reading the file into an owned
    // buffer: the run proceeds at the cost of residency, and the switch is
    // recorded — never silent.
    let mmap = match submod_mman::Mmap::map_readonly(&file) {
        Ok(mmap) => mmap,
        Err(map_err) => {
            submod_obs::counter!("store.mmap_open_fallbacks").incr();
            submod_mman::Mmap::read_owned(&file).map_err(|read_err| {
                GraphError::io(
                    "mapping the store file (and the owned-buffer fallback)",
                    io_pair(map_err, read_err),
                )
            })?
        }
    };
    let bytes: &[u8] = &mmap;
    submod_obs::counter!("store.opens").incr();
    submod_obs::counter!("store.mapped_bytes").add(bytes.len() as u64);

    if bytes.len() < HEADER_LEN {
        return Err(GraphError::Truncated {
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    let mut magic = [0u8; 8];
    magic.copy_from_slice(&bytes[0..8]);
    if magic != MAGIC {
        return Err(GraphError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(GraphError::UnsupportedVersion { found: version });
    }
    let flags = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if flags & !KNOWN_FLAGS != 0 {
        return Err(GraphError::UnknownFlags { found: flags });
    }
    let num_nodes = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let num_edges = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let stored_sum = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
    if let Some(off) = bytes[40..HEADER_LEN].iter().position(|&b| b != 0) {
        // The reserved region is outside the payload checksum, so it gets
        // its own explicit zero check.
        return Err(GraphError::ReservedNonZero { position: 40 + off });
    }
    if num_nodes > u64::from(u32::MAX) {
        return Err(GraphError::TooManyNodes { num_nodes });
    }
    let has_utilities = flags & FLAG_UTILITIES != 0;
    let expected = expected_len(num_nodes, num_edges, has_utilities)
        .ok_or(GraphError::Truncated { expected: u64::MAX, actual: bytes.len() as u64 })?;
    if bytes.len() as u64 != expected {
        return Err(GraphError::Truncated { expected, actual: bytes.len() as u64 });
    }

    let computed = payload_checksum(&bytes[HEADER_LEN..]);
    if computed != stored_sum {
        return Err(GraphError::ChecksumMismatch { stored: stored_sum, computed });
    }

    let n = num_nodes as usize;
    let e = num_edges as usize;
    let offsets_range = HEADER_LEN..HEADER_LEN + (n + 1) * 8;
    let neighbors_range = offsets_range.end..offsets_range.end + e * 4;
    let weights_range = neighbors_range.end..neighbors_range.end + e * 4;
    let utilities_range =
        weights_range.end..weights_range.end + if has_utilities { n * 4 } else { 0 };

    let offsets = submod_mman::u64_slice(&bytes[offsets_range.clone()])
        .ok_or(GraphError::Misaligned { section: "offsets" })?;
    let neighbors = submod_mman::u32_slice(&bytes[neighbors_range.clone()])
        .ok_or(GraphError::Misaligned { section: "neighbors" })?;
    let weights = submod_mman::f32_slice(&bytes[weights_range.clone()])
        .ok_or(GraphError::Misaligned { section: "weights" })?;

    validate_csr(offsets, neighbors, weights)?;

    let utilities = if has_utilities {
        let raw = submod_mman::f32_slice(&bytes[utilities_range])
            .ok_or(GraphError::Misaligned { section: "utilities" })?;
        for (node, &u) in raw.iter().enumerate() {
            if !u.is_finite() {
                return Err(GraphError::InvalidUtility { node, utility: u });
            }
        }
        Some(raw.to_vec())
    } else {
        None
    };

    let view = submod_mman::CsrView::new(mmap, offsets_range, neighbors_range, weights_range)
        .map_err(|section| GraphError::Misaligned { section })?;
    Ok((MappedCsr { view }, utilities))
}

/// Checks every CSR invariant the rest of the workspace relies on:
/// monotone in-bounds offsets, strictly ascending in-bounds neighbor rows
/// without self-loops, and finite non-negative weights.
///
/// Shared by the store loader and [`SimilarityGraph::from_csr_parts`], so
/// an on-disk row is held to exactly the standard an in-memory row is.
pub(crate) fn validate_csr(
    offsets: &[u64],
    neighbors: &[u32],
    weights: &[f32],
) -> Result<(), GraphError> {
    let num_nodes = offsets.len() - 1;
    let num_edges = neighbors.len() as u64;
    if num_nodes as u64 > u64::from(u32::MAX) {
        return Err(GraphError::TooManyNodes { num_nodes: num_nodes as u64 });
    }
    if neighbors.len() != weights.len() {
        return Err(GraphError::EdgeCountMismatch {
            offsets_end: neighbors.len() as u64,
            num_edges: weights.len() as u64,
        });
    }
    if offsets[0] != 0 {
        return Err(GraphError::NonMonotoneOffsets { node: 0 });
    }
    for v in 0..num_nodes {
        if offsets[v + 1] < offsets[v] {
            return Err(GraphError::NonMonotoneOffsets { node: v });
        }
        if offsets[v + 1] > num_edges {
            return Err(GraphError::OffsetOutOfBounds {
                node: v + 1,
                offset: offsets[v + 1],
                num_edges,
            });
        }
    }
    if offsets[num_nodes] != num_edges {
        return Err(GraphError::EdgeCountMismatch { offsets_end: offsets[num_nodes], num_edges });
    }
    for v in 0..num_nodes {
        let row = &neighbors[offsets[v] as usize..offsets[v + 1] as usize];
        let mut prev: Option<u32> = None;
        for &w in row {
            if w as usize >= num_nodes {
                return Err(GraphError::EdgeOutOfBounds { node: v, neighbor: w, num_nodes });
            }
            if w as usize == v {
                return Err(GraphError::SelfLoop { node: v });
            }
            if let Some(p) = prev {
                if w <= p {
                    return Err(GraphError::UnsortedNeighbors { node: v });
                }
            }
            prev = Some(w);
        }
    }
    for (i, &w) in weights.iter().enumerate() {
        if !(w.is_finite() && w >= 0.0) {
            // Binary-search the owning row for a precise report.
            let node = offsets.partition_point(|&o| o <= i as u64).saturating_sub(1);
            return Err(GraphError::InvalidWeight { node, weight: w });
        }
    }
    Ok(())
}

/// `true` when `SUBMOD_GRAPH_STORE=mmap` forces every built graph through
/// a temporary on-disk store (the CI determinism knob). Read once per
/// process, like the kernel dispatch override.
pub(crate) fn force_mmap() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("SUBMOD_GRAPH_STORE").map(|v| v.eq_ignore_ascii_case("mmap")).unwrap_or(false)
    })
}

/// Removes a temp store file on drop, so a panic or early return between
/// write and unlink cannot leak it into the temp dir.
struct TempStoreGuard {
    path: std::path::PathBuf,
}

impl Drop for TempStoreGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Writes `graph` to a fresh temp file, reopens it memory-mapped, and
/// unlinks the file (the mapping keeps it alive). Used by the
/// `SUBMOD_GRAPH_STORE=mmap` forcing knob. A failure here keeps the
/// original in-memory graph — the run proceeds on the backing the knob
/// exists to exclude, and the degradation is recorded via the
/// `store.forced_store_fallbacks` counter plus a stderr note, never
/// silently.
pub(crate) fn reopen_via_temp_store(graph: SimilarityGraph) -> SimilarityGraph {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let guard = TempStoreGuard {
        path: std::env::temp_dir().join(format!(
            "submod-forced-store-{}-{}.csr",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        )),
    };
    let reopened =
        graph.write_store(&guard.path).and_then(|()| SimilarityGraph::open_store(&guard.path));
    match reopened {
        Ok(mapped) => mapped,
        Err(err) => {
            submod_obs::counter!("store.forced_store_fallbacks").incr();
            eprintln!(
                "SUBMOD_GRAPH_STORE=mmap: forced store round-trip failed ({err}); \
                 continuing with the in-memory backing"
            );
            graph
        }
    }
}
