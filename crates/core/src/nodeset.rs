use crate::NodeId;

/// A fixed-capacity bitset over dense node indices.
///
/// Membership tests are the innermost operation of both the greedy update
/// loop and the bounding algorithm, so the representation is a flat word
/// array rather than a hash set.
///
/// ```
/// use submod_core::{NodeId, NodeSet};
///
/// let mut set = NodeSet::new(10);
/// set.insert(NodeId::new(3));
/// set.insert(NodeId::new(7));
/// assert!(set.contains(NodeId::new(3)));
/// assert!(!set.contains(NodeId::new(4)));
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![NodeId::new(3), NodeId::new(7)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set able to hold node indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeSet { words: vec![0; capacity.div_ceil(64)], capacity, len: 0 }
    }

    /// Creates a set from an iterator of members.
    ///
    /// # Panics
    ///
    /// Panics if a member index is `>= capacity`.
    pub fn from_members<I: IntoIterator<Item = NodeId>>(capacity: usize, members: I) -> Self {
        let mut set = NodeSet::new(capacity);
        for id in members {
            set.insert(id);
        }
        set
    }

    /// Number of indices the set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The backing bit words: id `i` is bit `i % 64` of word `i / 64`.
    ///
    /// Exposed so distributed drivers can broadcast the set to workers
    /// without re-walking its members.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of members currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `id`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `id.index() >= capacity`.
    #[inline]
    pub fn insert(&mut self, id: NodeId) -> bool {
        let i = id.index();
        assert!(i < self.capacity, "node {i} out of bitset capacity {}", self.capacity);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `id`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, id: NodeId) -> bool {
        let i = id.index();
        if i >= self.capacity {
            return false;
        }
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let present = *word & mask != 0;
        *word &= !mask;
        self.len -= usize::from(present);
        present
    }

    /// Returns `true` if `id` is a member. Out-of-capacity ids are absent.
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.index();
        i < self.capacity && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Removes all members, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates members in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word_idx: 0, current: self.words.first().copied().unwrap_or(0) }
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Collects members, sizing capacity to the largest member + 1.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let members: Vec<NodeId> = iter.into_iter().collect();
        let capacity = members.iter().map(|id| id.index() + 1).max().unwrap_or(0);
        NodeSet::from_members(capacity, members)
    }
}

impl Extend<NodeId> for NodeSet {
    /// Inserts members; panics if any exceeds the capacity.
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// Iterator over the members of a [`NodeSet`] in increasing order.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId::from_index(self.word_idx * 64 + bit));
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u64]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut set = NodeSet::new(130);
        assert!(set.insert(NodeId::new(0)));
        assert!(set.insert(NodeId::new(64)));
        assert!(set.insert(NodeId::new(129)));
        assert!(!set.insert(NodeId::new(64)));
        assert_eq!(set.len(), 3);
        assert!(set.contains(NodeId::new(129)));
        assert!(set.remove(NodeId::new(64)));
        assert!(!set.remove(NodeId::new(64)));
        assert_eq!(set.len(), 2);
        assert!(!set.contains(NodeId::new(64)));
    }

    #[test]
    fn iteration_is_sorted() {
        let set = NodeSet::from_members(200, ids(&[150, 3, 64, 65, 0]));
        let collected: Vec<u64> = set.iter().map(NodeId::raw).collect();
        assert_eq!(collected, vec![0, 3, 64, 65, 150]);
    }

    #[test]
    fn clear_resets_everything() {
        let mut set = NodeSet::from_members(10, ids(&[1, 2, 3]));
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.iter().count(), 0);
        assert_eq!(set.capacity(), 10);
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let set: NodeSet = ids(&[5, 9]).into_iter().collect();
        assert_eq!(set.capacity(), 10);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn contains_out_of_capacity_is_false() {
        let set = NodeSet::new(8);
        assert!(!set.contains(NodeId::new(1000)));
    }

    #[test]
    #[should_panic(expected = "out of bitset capacity")]
    fn insert_out_of_capacity_panics() {
        let mut set = NodeSet::new(8);
        set.insert(NodeId::new(8));
    }

    #[test]
    fn empty_set_iterates_nothing() {
        let set = NodeSet::new(0);
        assert_eq!(set.iter().count(), 0);
    }
}
