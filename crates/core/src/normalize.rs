/// Score normalization used throughout the paper's evaluation (§6):
/// within a parameter group (dataset, α/β, target size k), the centralized
/// greedy objective maps to **100 %** and the lowest observed objective to
/// **0 %**. Scores above the centralized reference exceed 100 % (e.g.
/// Table 2's `100.55 %`).
///
/// ```
/// use submod_core::ScoreNormalizer;
///
/// let norm = ScoreNormalizer::new(200.0, &[120.0, 160.0, 200.0]);
/// assert_eq!(norm.normalize(120.0), 0.0);
/// assert_eq!(norm.normalize(160.0), 50.0);
/// assert_eq!(norm.normalize(200.0), 100.0);
/// assert_eq!(norm.normalize(204.0), 105.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScoreNormalizer {
    centralized: f64,
    worst: f64,
}

impl ScoreNormalizer {
    /// Creates a normalizer from the centralized-greedy score and every
    /// observed score in the parameter group (the centralized score itself
    /// is always included as an observation).
    pub fn new(centralized: f64, observed: &[f64]) -> Self {
        let worst = observed.iter().copied().fold(centralized, f64::min);
        ScoreNormalizer { centralized, worst }
    }

    /// The raw centralized-greedy score (the 100 % anchor).
    pub fn centralized(&self) -> f64 {
        self.centralized
    }

    /// The raw worst observed score (the 0 % anchor).
    pub fn worst(&self) -> f64 {
        self.worst
    }

    /// Maps a raw objective value to the normalized percentage scale.
    ///
    /// When the group is degenerate (all scores equal), every score maps to
    /// 100 % — interpreting "no spread" as "everything matched centralized".
    pub fn normalize(&self, score: f64) -> f64 {
        let span = self.centralized - self.worst;
        if span.abs() < f64::EPSILON * self.centralized.abs().max(1.0) {
            return 100.0;
        }
        (score - self.worst) / span * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_anchors() {
        let n = ScoreNormalizer::new(10.0, &[4.0, 7.0, 10.0]);
        assert_eq!(n.normalize(4.0), 0.0);
        assert_eq!(n.normalize(10.0), 100.0);
        assert!((n.normalize(7.0) - 50.0).abs() < 1e-9);
        assert_eq!(n.centralized(), 10.0);
        assert_eq!(n.worst(), 4.0);
    }

    #[test]
    fn scores_above_centralized_exceed_100() {
        let n = ScoreNormalizer::new(10.0, &[5.0]);
        assert!((n.normalize(10.5) - 110.0).abs() < 1e-9);
    }

    #[test]
    fn centralized_is_always_an_observation() {
        // Worst observed above centralized: centralized itself anchors 0 %.
        let n = ScoreNormalizer::new(10.0, &[12.0]);
        assert_eq!(n.worst(), 10.0);
        assert_eq!(n.normalize(10.0), 100.0);
    }

    #[test]
    fn degenerate_group_maps_to_100() {
        let n = ScoreNormalizer::new(10.0, &[10.0, 10.0]);
        assert_eq!(n.normalize(10.0), 100.0);
    }

    #[test]
    fn negative_scores_are_supported() {
        let n = ScoreNormalizer::new(-1.0, &[-5.0, -3.0]);
        assert_eq!(n.normalize(-5.0), 0.0);
        assert_eq!(n.normalize(-1.0), 100.0);
        assert!((n.normalize(-3.0) - 50.0).abs() < 1e-9);
    }
}
