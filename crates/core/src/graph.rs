use crate::store::{self, GraphError};
use crate::{CoreError, NodeId};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// A compact CSR (compressed sparse row) similarity graph.
///
/// Nodes are dense indices `0..n`; each node stores a sorted list of
/// `(neighbor, similarity)` pairs. The paper (§6) builds a 10-nearest-
/// neighbor cosine-similarity graph and symmetrizes it; [`SimilarityGraph`]
/// is that structure, and [`GraphBuilder`] the way to construct it from an
/// edge stream.
///
/// The objective treats edges as *undirected*: a symmetric graph stores both
/// directions and [`crate::PairwiseObjective::evaluate`] counts each
/// undirected edge once.
///
/// # Backings
///
/// The CSR arrays live behind one of two backings, invisible to every
/// consumer: **owned** heap vectors (the result of [`GraphBuilder::build`])
/// or a **memory-mapped** read-only store file ([`Self::open_store`]). The
/// on-disk form is what makes selection *larger than memory*: the arrays
/// stay in the page cache, many shards share one immutable mapping, and
/// opening a prebuilt graph is O(validation), not O(rebuild). Both backings
/// expose bit-identical arrays, so selections are bitwise-equal regardless
/// of where the graph lives (see `crates/dist/tests/store_differential.rs`).
///
/// Neighbor ids are stored as dense `u32` (4 B/edge instead of 8) — the
/// node count is capped at `u32::MAX`, far beyond what a single mapping
/// holds in practice.
///
/// ```
/// use submod_core::{GraphBuilder, NodeId};
///
/// # fn main() -> Result<(), submod_core::CoreError> {
/// let mut builder = GraphBuilder::new(3);
/// builder.add_undirected(0, 1, 0.5)?;
/// builder.add_directed(1, 2, 0.25)?;
/// let graph = builder.build().symmetrized();
///
/// assert_eq!(graph.num_nodes(), 3);
/// assert_eq!(graph.degree(NodeId::new(1)), 2);
/// assert!(graph.is_symmetric());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SimilarityGraph {
    backing: Backing,
}

/// Where the CSR arrays live. Cloning a mapped graph clones an [`Arc`], so
/// the distributed backends hand every shard the same mapping.
#[derive(Clone, Debug)]
enum Backing {
    Owned { offsets: Vec<u64>, neighbors: Vec<u32>, weights: Vec<f32> },
    Mapped(Arc<store::MappedCsr>),
}

impl PartialEq for SimilarityGraph {
    /// Structural equality on the CSR arrays — a mapped graph equals the
    /// owned graph it was written from.
    fn eq(&self, other: &Self) -> bool {
        self.csr_parts() == other.csr_parts()
    }
}

impl SimilarityGraph {
    /// Creates a graph with `num_nodes` nodes and no edges.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` exceeds the `u32` neighbor id space.
    pub fn empty(num_nodes: usize) -> Self {
        assert!(
            num_nodes as u64 <= u64::from(u32::MAX),
            "num_nodes {num_nodes} exceeds the u32 neighbor id space"
        );
        SimilarityGraph {
            backing: Backing::Owned {
                offsets: vec![0; num_nodes + 1],
                neighbors: Vec::new(),
                weights: Vec::new(),
            },
        }
    }

    /// The raw CSR triple `(offsets, neighbors, weights)`, whichever
    /// backing holds it.
    #[inline]
    fn parts(&self) -> (&[u64], &[u32], &[f32]) {
        match &self.backing {
            Backing::Owned { offsets, neighbors, weights } => (offsets, neighbors, weights),
            Backing::Mapped(m) => (m.offsets(), m.neighbors(), m.weights()),
        }
    }

    /// Row bounds of node `v` as `start..end` into the edge arrays.
    #[inline]
    fn row(&self, v: NodeId) -> std::ops::Range<usize> {
        let offsets = self.parts().0;
        offsets[v.index()] as usize..offsets[v.index() + 1] as usize
    }

    /// Number of nodes in the ground set.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.parts().0.len() - 1
    }

    /// Number of stored directed edges.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.parts().1.len()
    }

    /// Number of undirected edges in a symmetric graph (directed count / 2).
    ///
    /// Only meaningful when [`Self::is_symmetric`] holds.
    #[inline]
    pub fn num_undirected_edges(&self) -> usize {
        self.num_directed_edges() / 2
    }

    /// Out-degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.row(v).len()
    }

    /// Dense neighbor ids of node `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        let r = self.row(v);
        &self.parts().1[r]
    }

    /// Similarity weights aligned with [`Self::neighbors`].
    #[inline]
    pub fn weights(&self, v: NodeId) -> &[f32] {
        let r = self.row(v);
        &self.parts().2[r]
    }

    /// Iterates `(neighbor, similarity)` pairs of node `v`.
    #[inline]
    pub fn edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f32)> + '_ {
        self.neighbors(v)
            .iter()
            .map(|&w| NodeId::new(u64::from(w)))
            .zip(self.weights(v).iter().copied())
    }

    /// Sum of similarity weights incident to `v` (its *weighted degree*).
    ///
    /// This is the `Σ_j s(v, j)` term of the minimum utility (Def. 4.1) and
    /// of the monotonicity offset δ (Appendix A).
    pub fn weighted_degree(&self, v: NodeId) -> f64 {
        self.weights(v).iter().map(|&w| f64::from(w)).sum()
    }

    /// Maximum weighted degree over all nodes (0.0 for an empty graph).
    pub fn max_weighted_degree(&self) -> f64 {
        (0..self.num_nodes())
            .map(|i| self.weighted_degree(NodeId::from_index(i)))
            .fold(0.0, f64::max)
    }

    /// Minimum degree `k_g` over all nodes (Theorem 4.6's exponent).
    pub fn min_degree(&self) -> usize {
        (0..self.num_nodes()).map(|i| self.degree(NodeId::from_index(i))).min().unwrap_or(0)
    }

    /// Average degree over all nodes.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.num_directed_edges() as f64 / self.num_nodes() as f64
    }

    /// Smallest and largest non-zero edge weight `[a, b]` (Theorem 4.6).
    ///
    /// Returns `None` if the graph has no edges.
    pub fn weight_range(&self) -> Option<(f32, f32)> {
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &w in self.parts().2 {
            if w > 0.0 {
                min = min.min(w);
                max = max.max(w);
            }
        }
        (min <= max).then_some((min, max))
    }

    /// Returns the weight of edge `(v, w)` if present.
    pub fn edge_weight(&self, v: NodeId, w: NodeId) -> Option<f32> {
        let target = u32::try_from(w.raw()).ok()?;
        let nbrs = self.neighbors(v);
        nbrs.binary_search(&target).ok().map(|pos| self.weights(v)[pos])
    }

    /// Returns `true` if every edge `(v, w)` has a matching `(w, v)` with the
    /// same weight.
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.num_nodes() {
            let v = NodeId::from_index(i);
            for (w, s) in self.edges(v) {
                match self.edge_weight(w, v) {
                    Some(back) if back == s => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Returns the symmetric closure: the union of both edge directions,
    /// keeping the larger weight when both directions exist with different
    /// weights.
    ///
    /// This mirrors the paper's §6 step "we symmetrize the graph, such that
    /// datapoints have a varying amount of, but at least k, neighbors".
    pub fn symmetrized(&self) -> SimilarityGraph {
        let mut edges: Vec<(NodeId, NodeId, f32)> =
            Vec::with_capacity(self.num_directed_edges() * 2);
        for i in 0..self.num_nodes() {
            let v = NodeId::from_index(i);
            for (w, s) in self.edges(v) {
                edges.push((v, w, s));
                edges.push((w, v, s));
            }
        }
        Self::from_directed_edges_internal(self.num_nodes(), edges)
    }

    /// Exposes the raw CSR arrays `(offsets, neighbors, weights)` for
    /// serialization. Offsets are `u64` file offsets and neighbors dense
    /// `u32` ids — exactly the on-disk store section types, whichever
    /// backing currently holds them.
    pub fn csr_parts(&self) -> (&[u64], &[u32], &[f32]) {
        self.parts()
    }

    /// Rebuilds an owned graph from raw CSR arrays produced by
    /// [`Self::csr_parts`].
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the arrays violate any CSR invariant
    /// (offsets not monotone or out of range, mismatched lengths,
    /// self-loops, invalid weights, or unsorted neighbor rows) — the same
    /// validation a store file passes at open.
    pub fn from_csr_parts(
        offsets: Vec<u64>,
        neighbors: Vec<u32>,
        weights: Vec<f32>,
    ) -> Result<Self, GraphError> {
        if offsets.is_empty() {
            return Err(GraphError::NonMonotoneOffsets { node: 0 });
        }
        store::validate_csr(&offsets, &neighbors, &weights)?;
        Ok(SimilarityGraph { backing: Backing::Owned { offsets, neighbors, weights } })
    }

    /// Logical size of the CSR arrays in bytes, independent of backing.
    ///
    /// For an owned graph this is heap memory; for a mapped graph it is
    /// the page-cache footprint if every page were resident (the "graph
    /// bytes" the larger-than-memory experiment compares RSS against).
    pub fn memory_bytes(&self) -> usize {
        let (offsets, neighbors, weights) = self.parts();
        std::mem::size_of_val(offsets)
            + std::mem::size_of_val(neighbors)
            + std::mem::size_of_val(weights)
    }

    /// Process-heap bytes held by this graph: [`Self::memory_bytes`] when
    /// owned, 0 when the arrays live in a read-only file mapping.
    pub fn heap_bytes(&self) -> usize {
        match &self.backing {
            Backing::Owned { .. } => self.memory_bytes(),
            Backing::Mapped(_) => 0,
        }
    }

    /// `true` when the CSR arrays are backed by a read-only store mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// Writes this graph as an on-disk store file (see [`crate::store`]).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] on I/O failure.
    pub fn write_store(&self, path: &Path) -> Result<(), GraphError> {
        let (offsets, neighbors, weights) = self.parts();
        store::write_store(path, offsets, neighbors, weights, self.is_symmetric(), None)
    }

    /// Writes this graph plus a per-node utility vector as one store file
    /// (the k-NN disk cache bundles both).
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] on I/O failure, a utility count mismatch,
    /// or a non-finite utility.
    pub fn write_store_with_utilities(
        &self,
        path: &Path,
        utilities: &[f32],
    ) -> Result<(), GraphError> {
        let (offsets, neighbors, weights) = self.parts();
        store::write_store(path, offsets, neighbors, weights, self.is_symmetric(), Some(utilities))
    }

    /// Opens a store file as a read-only memory-mapped graph.
    ///
    /// Zero-copy: the CSR arrays are served straight from the mapping
    /// after a full validation sweep. A utilities section, if present, is
    /// ignored — use [`Self::open_store_with_utilities`] to read it.
    ///
    /// # Errors
    ///
    /// Returns a typed [`GraphError`] for every malformed-file mode:
    /// truncation, wrong magic/version, checksum mismatch, non-monotone or
    /// out-of-bounds offsets, out-of-bounds/unsorted/self-loop neighbor
    /// rows, and NaN/infinite/negative weights. Never panics on bad input.
    pub fn open_store(path: &Path) -> Result<Self, GraphError> {
        let (mapped, _utilities) = store::open_store(path)?;
        Ok(SimilarityGraph { backing: Backing::Mapped(Arc::new(mapped)) })
    }

    /// Opens a store file written with utilities, returning both.
    ///
    /// # Errors
    ///
    /// Same as [`Self::open_store`], plus [`GraphError::MissingUtilities`]
    /// if the file has no utilities section.
    pub fn open_store_with_utilities(path: &Path) -> Result<(Self, Vec<f32>), GraphError> {
        let (mapped, utilities) = store::open_store(path)?;
        let utilities = utilities.ok_or(GraphError::MissingUtilities)?;
        Ok((SimilarityGraph { backing: Backing::Mapped(Arc::new(mapped)) }, utilities))
    }

    /// Bytes of the backing store file for a mapped graph (header included),
    /// or `None` for an owned graph.
    pub fn store_file_bytes(&self) -> Option<usize> {
        match &self.backing {
            Backing::Owned { .. } => None,
            Backing::Mapped(m) => Some(m.file_bytes()),
        }
    }

    /// Builds the subgraph induced by `nodes`, relabeling to local dense
    /// indices `0..nodes.len()` in the given order.
    ///
    /// Edges to nodes outside `nodes` are discarded — exactly the
    /// information loss the distributed greedy algorithm (paper §4.4)
    /// incurs when it partitions the ground set ("we discard any
    /// neighborhood relation across partitions").
    ///
    /// Returns the local graph; `nodes[local]` recovers the global id.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> SimilarityGraph {
        let local: HashMap<NodeId, u32> =
            nodes.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();
        let mut offsets: Vec<u64> = Vec::with_capacity(nodes.len() + 1);
        let mut neighbors: Vec<u32> = Vec::new();
        let mut weights: Vec<f32> = Vec::new();
        offsets.push(0);
        for &v in nodes {
            let start = neighbors.len();
            for (w, s) in self.edges(v) {
                if let Some(&lw) = local.get(&w) {
                    neighbors.push(lw);
                    weights.push(s);
                }
            }
            // Re-sort locally: global neighbor order does not imply local order.
            let mut pairs: Vec<(u32, f32)> =
                neighbors[start..].iter().copied().zip(weights[start..].iter().copied()).collect();
            pairs.sort_by_key(|&(id, _)| id);
            for (slot, (id, s)) in pairs.into_iter().enumerate() {
                neighbors[start + slot] = id;
                weights[start + slot] = s;
            }
            offsets.push(neighbors.len() as u64);
        }
        SimilarityGraph { backing: Backing::Owned { offsets, neighbors, weights } }
    }

    fn from_directed_edges_internal(
        num_nodes: usize,
        mut edges: Vec<(NodeId, NodeId, f32)>,
    ) -> SimilarityGraph {
        assert!(
            num_nodes as u64 <= u64::from(u32::MAX),
            "num_nodes {num_nodes} exceeds the u32 neighbor id space"
        );
        edges.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(b.2.total_cmp(&a.2)));
        // Deduplicate keeping the max weight (first after the sort above).
        edges.dedup_by_key(|e| (e.0, e.1));

        let mut offsets = vec![0u64; num_nodes + 1];
        for &(v, _, _) in &edges {
            offsets[v.index() + 1] += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let mut neighbors: Vec<u32> = Vec::with_capacity(edges.len());
        let mut weights: Vec<f32> = Vec::with_capacity(edges.len());
        for (_, w, s) in edges {
            neighbors.push(w.raw() as u32);
            weights.push(s);
        }
        let graph = SimilarityGraph { backing: Backing::Owned { offsets, neighbors, weights } };
        if store::force_mmap() {
            // SUBMOD_GRAPH_STORE=mmap: route every built graph through a
            // temporary on-disk store so the whole suite exercises the
            // mapped backing.
            store::reopen_via_temp_store(graph)
        } else {
            graph
        }
    }
}

/// Incremental builder for [`SimilarityGraph`].
///
/// Collects an edge stream, validates it (finite non-negative weights, no
/// self-loops, ids in bounds), deduplicates parallel edges keeping the
/// largest weight, and produces the CSR form.
///
/// ```
/// use submod_core::GraphBuilder;
///
/// # fn main() -> Result<(), submod_core::CoreError> {
/// let mut builder = GraphBuilder::new(4);
/// builder.add_undirected(0, 1, 0.9)?;
/// builder.add_undirected(0, 1, 0.4)?; // duplicate: max weight wins
/// let graph = builder.build();
/// assert_eq!(graph.num_directed_edges(), 2);
/// assert_eq!(graph.weights(submod_core::NodeId::new(0)), &[0.9]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, f32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph over `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` exceeds the `u32` neighbor id space.
    pub fn new(num_nodes: usize) -> Self {
        assert!(
            num_nodes as u64 <= u64::from(u32::MAX),
            "num_nodes {num_nodes} exceeds the u32 neighbor id space"
        );
        GraphBuilder { num_nodes, edges: Vec::new() }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges added so far (before deduplication).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn validate(&self, v: u64, w: u64, weight: f32) -> Result<(), CoreError> {
        if !(weight.is_finite() && weight >= 0.0) {
            return Err(CoreError::InvalidWeight { weight });
        }
        if v == w {
            return Err(CoreError::SelfLoop { node: v });
        }
        for node in [v, w] {
            if node as usize >= self.num_nodes {
                return Err(CoreError::NodeOutOfBounds { node, num_nodes: self.num_nodes });
            }
        }
        Ok(())
    }

    /// Adds a directed edge `v → w` with similarity `weight`.
    ///
    /// # Errors
    ///
    /// Returns an error if the weight is not a finite non-negative number,
    /// the edge is a self-loop, or an endpoint is out of bounds.
    pub fn add_directed(&mut self, v: u64, w: u64, weight: f32) -> Result<&mut Self, CoreError> {
        self.validate(v, w, weight)?;
        self.edges.push((NodeId::new(v), NodeId::new(w), weight));
        Ok(self)
    }

    /// Adds both directions `v ↔ w` with similarity `weight`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::add_directed`].
    pub fn add_undirected(&mut self, v: u64, w: u64, weight: f32) -> Result<&mut Self, CoreError> {
        self.validate(v, w, weight)?;
        self.edges.push((NodeId::new(v), NodeId::new(w), weight));
        self.edges.push((NodeId::new(w), NodeId::new(v), weight));
        Ok(self)
    }

    /// Finishes the build, consuming the accumulated edges.
    pub fn build(&mut self) -> SimilarityGraph {
        SimilarityGraph::from_directed_edges_internal(
            self.num_nodes,
            std::mem::take(&mut self.edges),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diamond() -> SimilarityGraph {
        // 0-1, 1-2, 2-3, 3-0 ring plus a 0-2 chord.
        let mut b = GraphBuilder::new(4);
        b.add_undirected(0, 1, 0.1).unwrap();
        b.add_undirected(1, 2, 0.2).unwrap();
        b.add_undirected(2, 3, 0.3).unwrap();
        b.add_undirected(3, 0, 0.4).unwrap();
        b.add_undirected(0, 2, 0.5).unwrap();
        b.build()
    }

    fn temp_store(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("submod-graph-test-{}-{name}.csr", std::process::id()))
    }

    #[test]
    fn csr_layout_is_sorted_per_node() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_directed_edges(), 10);
        assert_eq!(g.num_undirected_edges(), 5);
        assert_eq!(g.neighbors(NodeId::new(0)), &[1, 2, 3]);
        assert_eq!(g.weights(NodeId::new(0)), &[0.1, 0.5, 0.4]);
    }

    #[test]
    fn weighted_degree_sums_similarities() {
        let g = diamond();
        let wd = g.weighted_degree(NodeId::new(0));
        assert!((wd - 1.0).abs() < 1e-6, "0.1 + 0.5 + 0.4 = 1.0, got {wd}");
        assert!((g.max_weighted_degree() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_and_avg_degree() {
        let g = diamond();
        assert_eq!(g.min_degree(), 2);
        assert!((g.avg_degree() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn weight_range_covers_extremes() {
        let g = diamond();
        assert_eq!(g.weight_range(), Some((0.1, 0.5)));
        assert_eq!(SimilarityGraph::empty(3).weight_range(), None);
    }

    #[test]
    fn symmetry_detection() {
        let g = diamond();
        assert!(g.is_symmetric());
        let mut b = GraphBuilder::new(3);
        b.add_directed(0, 1, 0.5).unwrap();
        let asym = b.build();
        assert!(!asym.is_symmetric());
        assert!(asym.symmetrized().is_symmetric());
    }

    #[test]
    fn symmetrize_unions_directions() {
        let mut b = GraphBuilder::new(3);
        b.add_directed(0, 1, 0.5).unwrap();
        b.add_directed(1, 0, 0.7).unwrap(); // conflicting back edge: max wins
        b.add_directed(1, 2, 0.2).unwrap();
        let g = b.build().symmetrized();
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(1)), Some(0.7));
        assert_eq!(g.edge_weight(NodeId::new(1), NodeId::new(0)), Some(0.7));
        assert_eq!(g.edge_weight(NodeId::new(2), NodeId::new(1)), Some(0.2));
        assert_eq!(g.num_undirected_edges(), 2);
    }

    #[test]
    fn duplicate_edges_keep_max_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_directed(0, 1, 0.3).unwrap();
        b.add_directed(0, 1, 0.9).unwrap();
        b.add_directed(0, 1, 0.5).unwrap();
        let g = b.build();
        assert_eq!(g.num_directed_edges(), 1);
        assert_eq!(g.weights(NodeId::new(0)), &[0.9]);
    }

    #[test]
    fn rejects_invalid_input() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.add_directed(0, 0, 0.5).unwrap_err(), CoreError::SelfLoop { node: 0 });
        assert_eq!(
            b.add_directed(0, 5, 0.5).unwrap_err(),
            CoreError::NodeOutOfBounds { node: 5, num_nodes: 3 }
        );
        assert!(matches!(b.add_directed(0, 1, -1.0).unwrap_err(), CoreError::InvalidWeight { .. }));
        assert!(matches!(
            b.add_directed(0, 1, f32::NAN).unwrap_err(),
            CoreError::InvalidWeight { .. }
        ));
    }

    #[test]
    fn induced_subgraph_drops_cross_edges() {
        let g = diamond();
        // Take {0, 2, 3}: edges 0-2 (0.5), 2-3 (0.3), 3-0 (0.4) survive; 0-1 and 1-2 drop.
        let nodes = [NodeId::new(3), NodeId::new(0), NodeId::new(2)];
        let sub = g.induced_subgraph(&nodes);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_undirected_edges(), 3);
        // local 0 = global 3, local 1 = global 0, local 2 = global 2.
        assert_eq!(sub.edge_weight(NodeId::new(0), NodeId::new(1)), Some(0.4));
        assert_eq!(sub.edge_weight(NodeId::new(1), NodeId::new(2)), Some(0.5));
        assert_eq!(sub.edge_weight(NodeId::new(0), NodeId::new(2)), Some(0.3));
        assert!(sub.is_symmetric());
    }

    #[test]
    fn induced_subgraph_of_disjoint_nodes_is_edgeless() {
        let g = diamond();
        let sub = g.induced_subgraph(&[NodeId::new(1)]);
        assert_eq!(sub.num_nodes(), 1);
        assert_eq!(sub.num_directed_edges(), 0);
    }

    #[test]
    fn empty_graph_behaves() {
        let g = SimilarityGraph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.degree(NodeId::new(4)), 0);
        assert_eq!(g.min_degree(), 0);
        assert!(g.is_symmetric());
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn csr_parts_roundtrip() {
        let g = diamond();
        let (offsets, neighbors, weights) = g.csr_parts();
        let rebuilt =
            SimilarityGraph::from_csr_parts(offsets.to_vec(), neighbors.to_vec(), weights.to_vec())
                .unwrap();
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn from_csr_parts_rejects_inconsistent_arrays() {
        // Wrong terminal offset.
        assert!(SimilarityGraph::from_csr_parts(vec![0, 2], vec![1], vec![0.5]).is_err());
        // Self-loop.
        assert!(SimilarityGraph::from_csr_parts(vec![0, 1], vec![0], vec![0.5]).is_err());
        // Out-of-bounds neighbor.
        assert!(SimilarityGraph::from_csr_parts(vec![0, 1], vec![9], vec![0.5]).is_err());
        // Negative weight.
        assert!(SimilarityGraph::from_csr_parts(vec![0, 1, 1], vec![1], vec![-0.5]).is_err());
        // Unsorted neighbor row.
        assert!(
            SimilarityGraph::from_csr_parts(vec![0, 2, 2, 2], vec![2, 1], vec![0.5, 0.5]).is_err()
        );
    }

    #[test]
    fn edge_weight_lookup() {
        let g = diamond();
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(2)), Some(0.5));
        assert_eq!(g.edge_weight(NodeId::new(1), NodeId::new(3)), None);
        // An id outside the u32 encoding can never be present.
        assert_eq!(g.edge_weight(NodeId::new(0), NodeId::new(u64::MAX)), None);
    }

    #[test]
    fn store_roundtrip_is_exact_and_mapped() {
        // Under SUBMOD_GRAPH_STORE=mmap the builder output is itself
        // mapped, so materialize an explicitly owned copy to cover both
        // backings regardless of the knob.
        let built = diamond();
        let (o, n, w) = built.csr_parts();
        let g = SimilarityGraph::from_csr_parts(o.to_vec(), n.to_vec(), w.to_vec()).unwrap();
        let path = temp_store("roundtrip");
        g.write_store(&path).unwrap();
        let mapped = SimilarityGraph::open_store(&path).unwrap();
        assert!(mapped.is_mapped());
        assert!(!g.is_mapped());
        assert_eq!(mapped, g);
        assert_eq!(mapped.csr_parts(), g.csr_parts());
        assert_eq!(mapped.heap_bytes(), 0);
        assert_eq!(g.heap_bytes(), g.memory_bytes());
        assert_eq!(mapped.memory_bytes(), g.memory_bytes());
        assert!(mapped.store_file_bytes().unwrap() > mapped.memory_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_roundtrip_with_utilities() {
        let g = diamond();
        let utilities = vec![0.5, 1.5, 2.5, 3.5];
        let path = temp_store("utilities");
        g.write_store_with_utilities(&path, &utilities).unwrap();
        let (mapped, read) = SimilarityGraph::open_store_with_utilities(&path).unwrap();
        assert_eq!(mapped, g);
        assert_eq!(read, utilities);
        // The plain open ignores the utilities section.
        assert_eq!(SimilarityGraph::open_store(&path).unwrap(), g);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_without_utilities_reports_missing() {
        let g = diamond();
        let path = temp_store("missing-utilities");
        g.write_store(&path).unwrap();
        assert_eq!(
            SimilarityGraph::open_store_with_utilities(&path).unwrap_err(),
            GraphError::MissingUtilities
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_rejects_mismatched_utilities() {
        let g = diamond();
        let path = temp_store("bad-utilities");
        assert!(matches!(
            g.write_store_with_utilities(&path, &[1.0]).unwrap_err(),
            GraphError::UtilityCountMismatch { utilities: 1, num_nodes: 4 }
        ));
        assert!(matches!(
            g.write_store_with_utilities(&path, &[1.0, f32::NAN, 0.0, 0.0]).unwrap_err(),
            GraphError::InvalidUtility { node: 1, .. }
        ));
    }

    #[test]
    fn empty_graph_store_roundtrip() {
        let g = SimilarityGraph::empty(3);
        let path = temp_store("empty");
        g.write_store(&path).unwrap();
        let mapped = SimilarityGraph::open_store(&path).unwrap();
        assert_eq!(mapped, g);
        assert_eq!(mapped.num_directed_edges(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_graph_shares_one_mapping_across_clones() {
        let g = diamond();
        let path = temp_store("clones");
        g.write_store(&path).unwrap();
        let mapped = SimilarityGraph::open_store(&path).unwrap();
        let clone = mapped.clone();
        // Clones alias the same mapping: identical slices at identical addresses.
        assert_eq!(mapped.csr_parts().1.as_ptr(), clone.csr_parts().1.as_ptr());
        let _ = std::fs::remove_file(&path);
    }
}
