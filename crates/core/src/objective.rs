use crate::{CoreError, NodeId, NodeSet, SimilarityGraph};

/// The pairwise submodular objective of the paper (§3):
///
/// ```text
/// f(S) = α · Σ_{v∈S} u(v)  −  β · Σ_{{v,w}∈E, v,w∈S} s(v,w)
/// ```
///
/// with balancing parameters `α, β ≥ 0` and per-node utilities `u(v)`.
/// Each *undirected* edge inside `S` is penalized once; the similarity graph
/// stores both directions, so [`Self::evaluate`] halves the directed sum.
///
/// Such functions are always submodular for non-negative `β` and
/// similarities (§3). They are monotone when `α·u(v) ≥ β·Σ_j s(v,j)` for all
/// nodes; when that fails, [`Self::monotonicity_offset`] produces the
/// constant δ of Appendix A that restores monotonicity.
///
/// ```
/// use submod_core::{GraphBuilder, PairwiseObjective, NodeId};
///
/// # fn main() -> Result<(), submod_core::CoreError> {
/// let mut builder = GraphBuilder::new(2);
/// builder.add_undirected(0, 1, 0.5)?;
/// let graph = builder.build();
/// let objective = PairwiseObjective::from_alpha(0.9, vec![1.0, 2.0])?;
///
/// let both = [NodeId::new(0), NodeId::new(1)];
/// // f({0,1}) = 0.9·(1+2) − 0.1·0.5 = 2.65
/// assert!((objective.evaluate(&graph, &both) - 2.65).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PairwiseObjective {
    alpha: f64,
    beta: f64,
    utilities: Vec<f32>,
}

impl PairwiseObjective {
    /// Creates an objective with explicit `α`, `β`, and utilities.
    ///
    /// # Errors
    ///
    /// Returns an error if `α ≤ 0`, `β < 0`, either is non-finite, or any
    /// utility is non-finite.
    pub fn new(alpha: f64, beta: f64, utilities: Vec<f32>) -> Result<Self, CoreError> {
        if !(alpha.is_finite() && beta.is_finite() && alpha > 0.0 && beta >= 0.0) {
            return Err(CoreError::InvalidBalance { alpha, beta });
        }
        for (i, &u) in utilities.iter().enumerate() {
            if !u.is_finite() {
                return Err(CoreError::InvalidUtility { node: i as u64, utility: u });
            }
        }
        Ok(PairwiseObjective { alpha, beta, utilities })
    }

    /// Creates an objective with the paper's convention `β = 1 − α` (§6).
    ///
    /// # Errors
    ///
    /// Returns an error if `α ∉ (0, 1]` or any utility is non-finite.
    pub fn from_alpha(alpha: f64, utilities: Vec<f32>) -> Result<Self, CoreError> {
        if !(alpha.is_finite() && alpha > 0.0 && alpha <= 1.0) {
            return Err(CoreError::InvalidBalance { alpha, beta: 1.0 - alpha });
        }
        Self::new(alpha, 1.0 - alpha, utilities)
    }

    /// The utility coefficient α.
    #[inline]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The diversity coefficient β.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The ratio `β / α` that scales similarity sums into utility units.
    ///
    /// Priorities in Algorithm 2, as well as U_min / U_max / U_exp
    /// (Defs. 4.1, 4.2, 4.5), are expressed as `u(v) − (β/α)·Σ s`.
    #[inline]
    pub fn ratio(&self) -> f64 {
        self.beta / self.alpha
    }

    /// Number of nodes the objective is defined over.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.utilities.len()
    }

    /// Utility `u(v)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn utility(&self, v: NodeId) -> f64 {
        f64::from(self.utilities[v.index()])
    }

    /// All utilities, aligned with node indices.
    #[inline]
    pub fn utilities(&self) -> &[f32] {
        &self.utilities
    }

    /// Evaluates `f(S)` for the subset `subset` on `graph`.
    ///
    /// Nodes may appear in any order; duplicates are ignored. The pair term
    /// counts each undirected edge with both endpoints in `S` exactly once.
    ///
    /// # Panics
    ///
    /// Panics if the graph size differs from the utility vector or a node is
    /// out of bounds.
    pub fn evaluate(&self, graph: &SimilarityGraph, subset: &[NodeId]) -> f64 {
        assert_eq!(
            graph.num_nodes(),
            self.utilities.len(),
            "graph and objective must cover the same ground set"
        );
        let members = NodeSet::from_members(graph.num_nodes(), subset.iter().copied());
        self.evaluate_members(graph, &members)
    }

    /// Evaluates `f(S)` given a membership bitset (avoids re-building it).
    pub fn evaluate_members(&self, graph: &SimilarityGraph, members: &NodeSet) -> f64 {
        let mut unary = 0.0f64;
        let mut pair_directed = 0.0f64;
        for v in members.iter() {
            unary += self.utility(v);
            for (w, s) in graph.edges(v) {
                if members.contains(w) {
                    pair_directed += f64::from(s);
                }
            }
        }
        self.alpha * unary - self.beta * pair_directed / 2.0
    }

    /// Marginal gain `f(S ∪ {v}) − f(S)` for `v ∉ S`.
    ///
    /// Equals `α·u(v) − β·Σ_{w∈S, (v,w)∈E} s(v,w)`; linear in the already-
    /// selected neighbors, which is what makes Algorithm 2's priority-queue
    /// updates cheap.
    pub fn marginal_gain(&self, graph: &SimilarityGraph, members: &NodeSet, v: NodeId) -> f64 {
        let mut sim = 0.0f64;
        for (w, s) in graph.edges(v) {
            if members.contains(w) {
                sim += f64::from(s);
            }
        }
        self.alpha * self.utility(v) - self.beta * sim
    }

    /// Checks the monotonicity condition of §3: for every node,
    /// `α·u(v) ≥ β·Σ_j s(v,j)`.
    pub fn is_monotone_on(&self, graph: &SimilarityGraph) -> bool {
        (0..graph.num_nodes()).all(|i| {
            let v = NodeId::from_index(i);
            self.alpha * self.utility(v) >= self.beta * graph.weighted_degree(v) - 1e-12
        })
    }

    /// The constant offset `δ = (β/α)·max_l Σ_j s(l,j)` of Appendix A.
    ///
    /// Adding δ to every utility makes the objective monotone while leaving
    /// the greedy selection order unchanged; the approximation guarantee
    /// shifts to `f(S) + kδ ≥ (1 − 1/e)(f(S_OPT) + kδ)`.
    pub fn monotonicity_offset(&self, graph: &SimilarityGraph) -> f64 {
        self.ratio() * graph.max_weighted_degree()
    }

    /// Returns a copy with `offset` added to every utility (Appendix A).
    ///
    /// # Errors
    ///
    /// Returns an error if the shifted utilities are non-finite.
    pub fn with_utility_offset(&self, offset: f64) -> Result<Self, CoreError> {
        let utilities =
            self.utilities.iter().map(|&u| (f64::from(u) + offset) as f32).collect::<Vec<_>>();
        Self::new(self.alpha, self.beta, utilities)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> SimilarityGraph {
        let mut b = GraphBuilder::new(3);
        b.add_undirected(0, 1, 0.6).unwrap();
        b.add_undirected(1, 2, 0.4).unwrap();
        b.add_undirected(0, 2, 0.2).unwrap();
        b.build()
    }

    fn ids(raw: &[u64]) -> Vec<NodeId> {
        raw.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn evaluate_counts_each_undirected_edge_once() {
        let g = triangle();
        let f = PairwiseObjective::new(1.0, 1.0, vec![1.0, 1.0, 1.0]).unwrap();
        assert!((f.evaluate(&g, &ids(&[0])) - 1.0).abs() < 1e-9);
        assert!((f.evaluate(&g, &ids(&[0, 1])) - (2.0 - 0.6)).abs() < 1e-6);
        assert!((f.evaluate(&g, &ids(&[0, 1, 2])) - (3.0 - 1.2)).abs() < 1e-6);
        assert_eq!(f.evaluate(&g, &[]), 0.0);
    }

    #[test]
    fn duplicates_in_subset_are_ignored() {
        let g = triangle();
        let f = PairwiseObjective::new(1.0, 1.0, vec![1.0, 1.0, 1.0]).unwrap();
        assert_eq!(f.evaluate(&g, &ids(&[0, 0, 1])), f.evaluate(&g, &ids(&[0, 1])));
    }

    #[test]
    fn marginal_gain_matches_evaluate_difference() {
        let g = triangle();
        let f = PairwiseObjective::from_alpha(0.7, vec![0.9, 0.5, 0.3]).unwrap();
        let members = NodeSet::from_members(3, ids(&[0]));
        let direct = f.marginal_gain(&g, &members, NodeId::new(1));
        let via_eval = f.evaluate(&g, &ids(&[0, 1])) - f.evaluate(&g, &ids(&[0]));
        assert!((direct - via_eval).abs() < 1e-9);
    }

    #[test]
    fn submodularity_diminishing_returns() {
        // For pairwise objectives the gain of adding e to A ⊇ B never
        // exceeds the gain of adding e to B (paper §3 derivation).
        let g = triangle();
        let f = PairwiseObjective::from_alpha(0.5, vec![1.0, 1.0, 1.0]).unwrap();
        let small = NodeSet::from_members(3, ids(&[0]));
        let large = NodeSet::from_members(3, ids(&[0, 1]));
        let gain_small = f.marginal_gain(&g, &small, NodeId::new(2));
        let gain_large = f.marginal_gain(&g, &large, NodeId::new(2));
        assert!(gain_large <= gain_small + 1e-12);
    }

    #[test]
    fn monotonicity_check_and_offset() {
        let g = triangle();
        // Low α makes the pair term dominate: non-monotone.
        let f = PairwiseObjective::from_alpha(0.1, vec![0.1, 0.1, 0.1]).unwrap();
        assert!(!f.is_monotone_on(&g));
        let delta = f.monotonicity_offset(&g);
        let fixed = f.with_utility_offset(delta).unwrap();
        assert!(fixed.is_monotone_on(&g));
        // The offset is (β/α)·max weighted degree = 9 · 1.0.
        assert!((delta - 9.0 * 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            PairwiseObjective::new(0.0, 0.5, vec![]),
            Err(CoreError::InvalidBalance { .. })
        ));
        assert!(matches!(
            PairwiseObjective::new(0.5, -0.1, vec![]),
            Err(CoreError::InvalidBalance { .. })
        ));
        assert!(matches!(
            PairwiseObjective::from_alpha(1.5, vec![]),
            Err(CoreError::InvalidBalance { .. })
        ));
        assert!(matches!(
            PairwiseObjective::new(0.5, 0.5, vec![f32::NAN]),
            Err(CoreError::InvalidUtility { .. })
        ));
    }

    #[test]
    fn ratio_is_beta_over_alpha() {
        let f = PairwiseObjective::from_alpha(0.8, vec![]).unwrap();
        assert!((f.ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn beta_zero_reduces_to_modular_sum() {
        let g = triangle();
        let f = PairwiseObjective::new(2.0, 0.0, vec![1.0, 2.0, 3.0]).unwrap();
        assert!((f.evaluate(&g, &ids(&[0, 1, 2])) - 12.0).abs() < 1e-9);
        assert!(f.is_monotone_on(&g));
    }
}
