//! Read-only memory-mapped file views.
//!
//! This crate is the one place the workspace talks to `mmap(2)`: it maps a
//! file read-only, hands out the bytes as a plain `&[u8]`, and provides the
//! checked byte→typed-slice reinterpretations (`u64`/`u32`/`f32`) the
//! on-disk CSR graph store needs for zero-copy loading. Everything above
//! this crate — including `submod_core`, which keeps
//! `#![forbid(unsafe_code)]` — consumes only the safe surface.
//!
//! ## Why the `unsafe` here is sound
//!
//! 1. The mapping is created with `PROT_READ` + `MAP_PRIVATE` from a file
//!    descriptor the caller opened; the kernel guarantees the returned
//!    region is valid for `len` bytes until `munmap`.
//! 2. [`Mmap`] owns the region exclusively: the pointer never leaks, the
//!    struct is not `Clone`, and `Drop` is the only place that unmaps, so
//!    every `&[u8]` borrowed from a live `Mmap` points at mapped memory.
//! 3. `Send`/`Sync` are sound because the mapping is immutable
//!    (`PROT_READ`) and the raw pointer is only read through shared
//!    borrows.
//! 4. The typed-slice casts check length *and* alignment before
//!    `from_raw_parts`, and every target type (`u64`, `u32`, `f32`) is a
//!    plain-old-data type for which any bit pattern is a valid value.
//! 5. [`CsrView`] caches section pointers *into the mapping it owns*;
//!    the mapped region's address never changes while the view is alive
//!    (the view is not self-referential — see its type docs), so the
//!    once-validated pointers remain valid for every later accessor
//!    call.
//!
//! A file truncated *after* mapping can still SIGBUS on access — the POSIX
//! caveat every mmap consumer shares. The store layer mitigates it by
//! validating the whole mapping right after open (which also faults pages
//! in sequentially), so later random access never touches a page that was
//! not readable at open time.

#![warn(missing_docs)]

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// Maps `len` bytes of `file` read-only. `len` must be non-zero.
    pub(crate) fn map(file: &File, len: usize) -> io::Result<*const u8> {
        // SAFETY: all arguments are plain values; the kernel validates the
        // fd and length and reports failure via MAP_FAILED.
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(ptr as *const u8)
    }

    /// Unmaps a region previously returned by [`map`].
    pub(crate) fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: called exactly once, from Drop, with the pointer and
        // length the kernel handed out.
        unsafe {
            munmap(ptr as *mut c_void, len);
        }
    }
}

/// A read-only memory mapping of an entire file.
///
/// On Unix this is a real `mmap(2)` region, so opening a multi-gigabyte
/// store is O(1) and the OS pages bytes in on demand (and reclaims them
/// under pressure — the mapping is clean and file-backed). On other
/// platforms it degrades to reading the file into an owned buffer, which
/// keeps the API portable at the cost of residency.
///
/// ```no_run
/// # fn main() -> std::io::Result<()> {
/// let file = std::fs::File::open("graph.csr")?;
/// let map = submod_mman::Mmap::map_readonly(&file)?;
/// let bytes: &[u8] = &map;
/// # let _ = bytes; Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Mmap {
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    /// An empty file: nothing to map (`mmap` rejects zero lengths).
    Empty,
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Bytes read into an owned buffer — the non-Unix path, and the
    /// graceful-degradation fallback when `mmap(2)` itself fails.
    Owned(Vec<u8>),
}

// SAFETY: the region is immutable (PROT_READ) and only ever read through
// shared borrows; the raw pointer is not exposed (module docs, point 3).
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the whole of `file` read-only.
    ///
    /// # Errors
    ///
    /// Returns the underlying OS error if the file's length cannot be
    /// queried or the mapping fails.
    pub fn map_readonly(file: &File) -> io::Result<Mmap> {
        use submod_obs::faults::{self, FaultSite};
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mmap { backing: Backing::Empty });
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        // Injected transient faults are retried here (they self-clear);
        // injected permanent and mmap-open faults surface as `Err`, and
        // the store layer degrades to an owned backing.
        for attempt in 0..faults::MAX_IO_ATTEMPTS {
            if let Some(err) = faults::inject_io(FaultSite::MmanMap) {
                if faults::is_injected_transient(&err) && attempt + 1 < faults::MAX_IO_ATTEMPTS {
                    faults::backoff(attempt);
                    continue;
                }
                return Err(err);
            }
            break;
        }
        #[cfg(unix)]
        {
            let ptr = sys::map(file, len)?;
            submod_obs::counter!("mman.maps").incr();
            submod_obs::counter!("mman.mapped_bytes").add(len as u64);
            Ok(Mmap { backing: Backing::Mapped { ptr, len } })
        }
        #[cfg(not(unix))]
        {
            Self::read_owned(file)
        }
    }

    /// Reads the whole of `file` into an owned buffer behind the same
    /// `Mmap` interface — the graceful-degradation path when
    /// [`Mmap::map_readonly`] fails (e.g. a filesystem without mmap
    /// support, or an injected fault). Trades residency for
    /// availability; callers surface the switch via the
    /// `store.mmap_open_fallbacks` counter.
    ///
    /// # Errors
    ///
    /// Returns the underlying OS error if the file cannot be read.
    pub fn read_owned(file: &File) -> io::Result<Mmap> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        let len = f.metadata()?.len();
        if len == 0 {
            return Ok(Mmap { backing: Backing::Empty });
        }
        f.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::with_capacity(len as usize);
        f.read_to_end(&mut buf)?;
        submod_obs::counter!("mman.owned_reads").incr();
        submod_obs::counter!("mman.owned_bytes").add(buf.len() as u64);
        Ok(Mmap { backing: Backing::Owned(buf) })
    }

    /// The mapped bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Empty => &[],
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: ptr/len describe a live PROT_READ mapping owned
                // by self (module docs, point 2).
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Owned(buf) => buf,
        }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// `true` if the mapped file was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            sys::unmap(ptr, len);
        }
    }
}

/// A mapping plus pre-validated typed views of its three CSR sections.
///
/// [`CsrView::new`] runs the bounds/alignment checks exactly once and
/// caches each section as a raw `(pointer, length)` pair, so the
/// accessors compile down to a bare `slice::from_raw_parts` — small
/// enough to inline into the graph-traversal hot loops that call them
/// per edge. Re-deriving the slices through [`u64_slice`] & friends on
/// every call costs a length/alignment check plus an `expect` per
/// access, which is measurable in tight selection loops.
///
/// ## Why the cached pointers stay valid
///
/// The pointers point *into the mapping the view owns*, not into the
/// view itself, so this is not a self-referential struct: the mapped
/// region (or, on non-Unix, the owned buffer's heap allocation) never
/// moves when the `CsrView` does, and it outlives every accessor borrow
/// because the view keeps the [`Mmap`] alive. The mapping is immutable
/// (`PROT_READ`), so `Send`/`Sync` are inherited by the same argument
/// as for [`Mmap`].
#[derive(Debug)]
pub struct CsrView {
    offsets: (*const u64, usize),
    neighbors: (*const u32, usize),
    weights: (*const f32, usize),
    mmap: Mmap,
}

// SAFETY: the cached pointers target the immutable PROT_READ region (or
// the never-mutated owned buffer) owned by `self.mmap`, and are only
// read through shared borrows — same argument as `Mmap` itself.
unsafe impl Send for CsrView {}
unsafe impl Sync for CsrView {}

impl CsrView {
    /// Builds a view over three byte ranges of `mmap`, validating each
    /// range's bounds, length, and alignment once.
    ///
    /// # Errors
    ///
    /// Returns the name of the offending section if a range is out of
    /// bounds, ragged for its element size, or misaligned.
    pub fn new(
        mmap: Mmap,
        offsets: std::ops::Range<usize>,
        neighbors: std::ops::Range<usize>,
        weights: std::ops::Range<usize>,
    ) -> Result<CsrView, &'static str> {
        let bytes = mmap.as_bytes();
        let o = bytes.get(offsets).and_then(u64_slice).ok_or("offsets")?;
        let n = bytes.get(neighbors).and_then(u32_slice).ok_or("neighbors")?;
        let w = bytes.get(weights).and_then(f32_slice).ok_or("weights")?;
        // Raw pointers end the borrows of `mmap`, letting it move into
        // the struct; the allocation they target is address-stable.
        let (offsets, neighbors, weights) =
            ((o.as_ptr(), o.len()), (n.as_ptr(), n.len()), (w.as_ptr(), w.len()));
        Ok(CsrView { offsets, neighbors, weights, mmap })
    }

    /// The validated `u64` offsets section.
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        // SAFETY: pointer/length were validated against the live mapping
        // in `new` and the region is immutable and owned by `self.mmap`.
        unsafe { std::slice::from_raw_parts(self.offsets.0, self.offsets.1) }
    }

    /// The validated `u32` neighbors section.
    #[inline]
    pub fn neighbors(&self) -> &[u32] {
        // SAFETY: as for `offsets`.
        unsafe { std::slice::from_raw_parts(self.neighbors.0, self.neighbors.1) }
    }

    /// The validated `f32` weights section.
    #[inline]
    pub fn weights(&self) -> &[f32] {
        // SAFETY: as for `offsets`.
        unsafe { std::slice::from_raw_parts(self.weights.0, self.weights.1) }
    }

    /// Length of the whole underlying mapping in bytes.
    pub fn file_len(&self) -> usize {
        self.mmap.len()
    }
}

/// Reinterprets `bytes` as a `u64` slice.
///
/// Returns `None` unless the length is a multiple of 8 and the start is
/// 8-byte aligned (mmap regions are page-aligned, so sections placed at
/// 8-aligned file offsets always qualify).
pub fn u64_slice(bytes: &[u8]) -> Option<&[u64]> {
    cast_slice(bytes)
}

/// Reinterprets `bytes` as a `u32` slice (length multiple of 4, 4-aligned).
pub fn u32_slice(bytes: &[u8]) -> Option<&[u32]> {
    cast_slice(bytes)
}

/// Reinterprets `bytes` as an `f32` slice (length multiple of 4, 4-aligned).
///
/// Any bit pattern is a valid `f32` (including NaNs), so the cast itself is
/// always value-sound; semantic validation is the caller's job.
pub fn f32_slice(bytes: &[u8]) -> Option<&[f32]> {
    cast_slice(bytes)
}

/// The checked reinterpretation shared by the typed views above.
///
/// Only instantiated for `u64`/`u32`/`f32` via the public wrappers — all
/// plain-old-data types valid for every bit pattern (module docs, point 4).
fn cast_slice<T: Copy>(bytes: &[u8]) -> Option<&[T]> {
    let size = std::mem::size_of::<T>();
    if !bytes.len().is_multiple_of(size)
        || !(bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<T>())
    {
        return None;
    }
    // SAFETY: alignment and length were just checked; T is POD (the
    // private helper is only reachable through the u64/u32/f32 wrappers).
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("submod-mman-{}-{name}", std::process::id()))
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_path("contents");
        let mut f = File::create(&path).unwrap();
        f.write_all(b"hello mapping").unwrap();
        drop(f);
        let map = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, b"hello mapping");
        assert_eq!(map.len(), 13);
        drop(map);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        File::create(&path).unwrap();
        let map = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapping_survives_unlink() {
        // The store writes to a temp file, maps it, then deletes it; the
        // mapping must stay readable (standard Unix semantics).
        let path = temp_path("unlink");
        std::fs::write(&path, [1u8, 2, 3, 4]).unwrap();
        let map = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&*map, &[1, 2, 3, 4]);
    }

    #[test]
    fn typed_views_roundtrip() {
        let values: Vec<u64> = (0..17).map(|i| i * 0x0101_0101_0101_0101).collect();
        let mut bytes = Vec::new();
        for v in &values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = temp_path("typed");
        std::fs::write(&path, &bytes).unwrap();
        let map = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        assert_eq!(u64_slice(&map).unwrap(), values.as_slice());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn misaligned_or_ragged_views_are_rejected() {
        let path = temp_path("ragged");
        std::fs::write(&path, [0u8; 12]).unwrap();
        let map = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        // 12 bytes is not a multiple of 8.
        assert!(u64_slice(&map).is_none());
        // A view starting 1 byte in is misaligned for u32.
        assert!(u32_slice(&map[1..9]).is_none());
        // An aligned 8-byte window works for u32 and u64 alike.
        assert!(u32_slice(&map[0..8]).is_some());
        assert!(u64_slice(&map[0..8]).is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn f32_views_accept_any_bits() {
        let path = temp_path("f32bits");
        std::fs::write(&path, f32::NAN.to_le_bytes()).unwrap();
        let map = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        let floats = f32_slice(&map).unwrap();
        assert_eq!(floats.len(), 1);
        assert!(floats[0].is_nan());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mmap_is_send_and_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<Mmap>();
        assert_traits::<CsrView>();
    }

    #[test]
    fn csr_view_caches_validated_sections() {
        // 2×u64 offsets, 2×u32 neighbors, 2×f32 weights, back to back.
        let mut bytes = Vec::new();
        for v in [0u64, 2] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for v in [1u32, 3] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for v in [0.5f32, 0.25] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = temp_path("csrview");
        std::fs::write(&path, &bytes).unwrap();
        let map = Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
        let view = CsrView::new(map, 0..16, 16..24, 24..32).unwrap();
        assert_eq!(view.offsets(), &[0, 2]);
        assert_eq!(view.neighbors(), &[1, 3]);
        assert_eq!(view.weights(), &[0.5, 0.25]);
        assert_eq!(view.file_len(), 32);
        // Moving the view must not invalidate the cached pointers.
        let moved = Box::new(view);
        assert_eq!(moved.neighbors(), &[1, 3]);
    }

    #[test]
    fn csr_view_rejects_bad_sections() {
        let path = temp_path("csrview-bad");
        std::fs::write(&path, [0u8; 32]).unwrap();
        let open = || Mmap::map_readonly(&File::open(&path).unwrap()).unwrap();
        // Out of bounds.
        assert_eq!(CsrView::new(open(), 0..16, 16..24, 24..40).unwrap_err(), "weights");
        // Ragged length for u64.
        assert_eq!(CsrView::new(open(), 0..12, 12..24, 24..32).unwrap_err(), "offsets");
        // Misaligned start for u32.
        assert_eq!(CsrView::new(open(), 0..16, 17..25, 28..32).unwrap_err(), "neighbors");
        let _ = std::fs::remove_file(&path);
    }
}
