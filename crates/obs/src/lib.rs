//! Workspace-wide observability: a lock-cheap metrics registry plus
//! scoped span timing, with chrome-trace and flat JSON/CSV exporters —
//! and **zero external dependencies** (the build environment is
//! vendored-only, so no `tracing` crate).
//!
//! # The three trace modes
//!
//! Everything span-shaped is gated by `SUBMOD_TRACE`:
//!
//! | `SUBMOD_TRACE` | [`span`] | [`span_full`] | metrics registry |
//! |----------------|----------|---------------|------------------|
//! | `off` (default)| no-op    | no-op         | recorded         |
//! | `spans`        | recorded | no-op         | recorded         |
//! | `full`         | recorded | recorded      | recorded         |
//!
//! The gate is a *branch on a static*: one relaxed atomic load and a
//! compare, so the `off` path costs near-zero (the `obs_overhead`
//! benchmark and CI's `bench-diff --trace-overhead` gate assert it).
//! The metrics registry itself is always live — it is the single source
//! of truth behind `BoundingStats`/`GreedyStats` mirrors and
//! `experiments ltm --report-memory`, which must work without any env
//! knob — but every recording site sits at *flush* granularity (once
//! per shard / pass / block), never per record.
//!
//! # Determinism
//!
//! Counters are sharded across a fixed array of cache-line-padded
//! atomics indexed by a per-thread slot; snapshots **sum** the shards,
//! and `u64` addition is commutative, so a snapshot taken after a
//! barrier is bitwise-identical at any thread count and merge order.
//! Snapshots iterate a `BTreeMap`, so export order is the metric-name
//! order — deterministic by construction. Spans only *time* work; no
//! control flow ever reads a span or a metric, so selections are
//! bitwise-identical across all three modes (the facade determinism
//! suite pins this).
//!
//! # Span nesting across pool workers
//!
//! [`span`] guards nest through a thread-local parent id.
//! `submod_exec` captures [`current_span`] when a task is spawned and
//! replays it with [`with_parent`] on the worker that runs the task, so
//! a `knn.build` span on the driver thread is the parent of every block
//! task's span regardless of which worker stole it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Trace mode
// ---------------------------------------------------------------------------

/// The tracing level, resolved from `SUBMOD_TRACE` (or [`set_mode`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// No spans recorded. The hot-path cost is one atomic load + branch.
    Off,
    /// Coarse spans ([`span`]) recorded; fine-grained ones skipped.
    Spans,
    /// Every span recorded, including [`span_full`] fine-grained ones.
    Full,
}

impl TraceMode {
    /// Parses the `SUBMOD_TRACE` value; unknown strings mean [`TraceMode::Off`].
    pub fn parse(s: &str) -> TraceMode {
        match s.trim().to_ascii_lowercase().as_str() {
            "spans" => TraceMode::Spans,
            "full" => TraceMode::Full,
            _ => TraceMode::Off,
        }
    }

    /// The mode's canonical env-knob spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Spans => "spans",
            TraceMode::Full => "full",
        }
    }
}

const MODE_UNINIT: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

#[cold]
fn init_mode() -> u8 {
    let resolved = match std::env::var("SUBMOD_TRACE") {
        Ok(v) => TraceMode::parse(&v),
        Err(_) => TraceMode::Off,
    };
    let raw = resolved as u8;
    // First writer wins against a concurrent `set_mode`.
    let _ = MODE.compare_exchange(MODE_UNINIT, raw, Ordering::Relaxed, Ordering::Relaxed);
    MODE.load(Ordering::Relaxed)
}

#[inline]
fn mode_raw() -> u8 {
    let raw = MODE.load(Ordering::Relaxed);
    if raw == MODE_UNINIT {
        return init_mode();
    }
    raw
}

/// The active trace mode (lazily resolved from `SUBMOD_TRACE`).
#[inline]
pub fn mode() -> TraceMode {
    match mode_raw() {
        1 => TraceMode::Spans,
        2 => TraceMode::Full,
        _ => TraceMode::Off,
    }
}

/// Overrides the trace mode programmatically (tests, benchmarks, and the
/// `experiments profile` subcommand, which forces `full`).
pub fn set_mode(mode: TraceMode) {
    MODE.store(mode as u8, Ordering::Relaxed);
}

/// Returns `true` when coarse spans ([`span`]) are recorded.
#[inline]
pub fn spans_enabled() -> bool {
    mode_raw() >= TraceMode::Spans as u8 && mode_raw() != MODE_UNINIT
}

/// Returns `true` when fine-grained spans ([`span_full`]) are recorded.
#[inline]
pub fn full_enabled() -> bool {
    mode_raw() == TraceMode::Full as u8
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// Counter shard count: enough that 8-thread increments rarely collide,
/// small enough that snapshots stay a handful of loads.
const SHARDS: usize = 16;

/// One cache line per shard so concurrent increments don't false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn shard_index() -> usize {
    THREAD_SHARD.with(|s| {
        let cached = s.get();
        if cached != usize::MAX {
            return cached;
        }
        let idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
        s.set(idx);
        idx
    })
}

/// A monotonically-increasing `u64` metric, sharded per thread.
///
/// [`Counter::value`] sums the shards; `u64` addition is commutative, so
/// the sum is independent of which thread incremented which shard.
#[derive(Debug)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    fn new() -> Self {
        Counter { shards: Default::default() }
    }

    /// Adds `n` to the calling thread's shard (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The deterministic merged total across shards (wrapping, like the
    /// underlying `fetch_add`s).
    pub fn value(&self) -> u64 {
        self.shards.iter().fold(0u64, |acc, s| acc.wrapping_add(s.0.load(Ordering::Relaxed)))
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write / running-max `u64` metric (peak bytes, RSS, depths).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Folds `v` into a running maximum.
    #[inline]
    pub fn fetch_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Histogram bucket count: powers of 4 from 1 to 4^15, plus overflow.
const HIST_BUCKETS: usize = 17;

/// Upper bound (inclusive) of histogram bucket `i`: `4^i`, last = ∞.
fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        4u64.pow(i as u32)
    }
}

/// A fixed-bucket histogram (bounds `4^i`), sharded like [`Counter`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [[PaddedU64; HIST_BUCKETS]; 1],
    sum: Counter,
}

impl Histogram {
    fn new() -> Self {
        Histogram { buckets: Default::default(), sum: Counter::new() }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        let mut idx = HIST_BUCKETS - 1;
        for i in 0..HIST_BUCKETS - 1 {
            if v <= bucket_bound(i) {
                idx = i;
                break;
            }
        }
        self.buckets[0][idx].0.fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
    }

    /// Deterministic per-bucket counts (bounds from [`HistogramSnapshot`]).
    pub fn counts(&self) -> Vec<u64> {
        self.buckets[0].iter().map(|b| b.0.load(Ordering::Relaxed)).collect()
    }

    /// Sum of every recorded value.
    pub fn sum(&self) -> u64 {
        self.sum.value()
    }

    fn reset(&self) {
        for b in &self.buckets[0] {
            b.0.store(0, Ordering::Relaxed);
        }
        self.sum.reset();
    }
}

#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Interns `name` and returns its counter. The lookup takes a mutex —
/// cache the handle at hot call sites (see the [`counter!`] macro).
pub fn counter(name: &str) -> &'static Counter {
    let mut map = registry().counters.lock().expect("counter registry");
    if let Some(c) = map.get(name) {
        return c;
    }
    let leaked: &'static Counter = Box::leak(Box::new(Counter::new()));
    map.insert(name.to_string(), leaked);
    leaked
}

/// Interns `name` and returns its gauge (mutex lookup — cache handles).
pub fn gauge(name: &str) -> &'static Gauge {
    let mut map = registry().gauges.lock().expect("gauge registry");
    if let Some(g) = map.get(name) {
        return g;
    }
    let leaked: &'static Gauge = Box::leak(Box::new(Gauge::default()));
    map.insert(name.to_string(), leaked);
    leaked
}

/// Interns `name` and returns its histogram (mutex lookup — cache handles).
pub fn histogram(name: &str) -> &'static Histogram {
    let mut map = registry().histograms.lock().expect("histogram registry");
    if let Some(h) = map.get(name) {
        return h;
    }
    let leaked: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    map.insert(name.to_string(), leaked);
    leaked
}

/// Caches a [`Counter`] handle per call site: the registry mutex is taken
/// once, every later hit is a single `OnceLock` load.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// Caches a [`Gauge`] handle per call site (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Caches a [`Histogram`] handle per call site (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name))
    }};
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (`4^i`; the last is `u64::MAX` = ∞).
    pub bounds: Vec<u64>,
    /// Observation counts per bucket.
    pub counts: Vec<u64>,
    /// Sum of every recorded value.
    pub sum: u64,
}

/// A deterministic point-in-time view of the whole registry, ordered by
/// metric name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Snapshots every registered metric. Deterministic given quiesced
/// writers: shard sums are order-independent and the maps are sorted.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("counter registry")
        .iter()
        .map(|(name, c)| (name.clone(), c.value()))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .expect("gauge registry")
        .iter()
        .map(|(name, g)| (name.clone(), g.value()))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("histogram registry")
        .iter()
        .map(|(name, h)| {
            (
                name.clone(),
                HistogramSnapshot {
                    bounds: (0..HIST_BUCKETS).map(bucket_bound).collect(),
                    counts: h.counts(),
                    sum: h.sum(),
                },
            )
        })
        .collect();
    MetricsSnapshot { counters, gauges, histograms }
}

/// Zeroes every registered metric (handles stay valid) without touching
/// buffered spans — use between measured phases when the span stream
/// should keep accumulating toward one final trace export (the
/// `experiments ltm` budget sweeps do exactly this).
pub fn reset_metrics() {
    let reg = registry();
    for c in reg.counters.lock().expect("counter registry").values() {
        c.reset();
    }
    for g in reg.gauges.lock().expect("gauge registry").values() {
        g.set(0);
    }
    for h in reg.histograms.lock().expect("histogram registry").values() {
        h.reset();
    }
}

/// Zeroes every registered metric (handles stay valid) and discards
/// buffered spans — the between-phases reset for tests and `experiments`.
pub fn reset() {
    reset_metrics();
    let _ = take_spans();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One finished span, in microseconds since the process trace epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (dot-separated, e.g. `knn.build`).
    pub name: &'static str,
    /// Unique span id (never 0).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Small sequential id of the recording thread.
    pub tid: u64,
    /// Start, µs since the trace epoch.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct ThreadBuf {
    tid: u64,
    events: Mutex<Vec<SpanEvent>>,
}

/// Every thread's buffer, registered on first span so draining works
/// even while `submod_exec`'s process-lifetime workers stay parked (a
/// TLS destructor would never run for them).
fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_BUF: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

fn record_event(event: SpanEvent) {
    LOCAL_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        let buf = slot.get_or_insert_with(|| {
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(Vec::new()),
            });
            buffers().lock().expect("span buffers").push(buf.clone());
            buf
        });
        let mut event = event;
        event.tid = buf.tid;
        buf.events.lock().expect("span buffer").push(event);
    });
}

/// RAII timing guard from [`span`] / [`span_full`]; records on drop.
#[must_use = "a span guard times its scope; dropping it immediately records nothing"]
pub struct SpanGuard {
    name: &'static str,
    id: u64,
    parent: u64,
    start: Option<Instant>,
}

impl SpanGuard {
    const INACTIVE: SpanGuard = SpanGuard { name: "", id: 0, parent: 0, start: None };

    /// The span's id (0 for an inactive guard).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        CURRENT_SPAN.set(self.parent);
        let start_us = start.duration_since(epoch()).as_micros() as u64;
        let dur_us = start.elapsed().as_micros() as u64;
        record_event(SpanEvent {
            name: self.name,
            id: self.id,
            parent: self.parent,
            tid: 0,
            start_us,
            dur_us,
        });
    }
}

fn start_span(name: &'static str) -> SpanGuard {
    let _ = epoch();
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT_SPAN.replace(id);
    SpanGuard { name, id, parent, start: Some(Instant::now()) }
}

/// Opens a coarse span (phases, passes, rounds, shuffles). No-op unless
/// `SUBMOD_TRACE` is `spans` or `full`.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !spans_enabled() {
        return SpanGuard::INACTIVE;
    }
    start_span(name)
}

/// Opens a fine-grained span (per knn block, per store section). No-op
/// unless `SUBMOD_TRACE=full`.
#[inline]
pub fn span_full(name: &'static str) -> SpanGuard {
    if !full_enabled() {
        return SpanGuard::INACTIVE;
    }
    start_span(name)
}

/// The innermost open span's id on this thread (0 = none / tracing off).
/// `submod_exec` captures this at task spawn.
#[inline]
pub fn current_span() -> u64 {
    if !spans_enabled() {
        return 0;
    }
    CURRENT_SPAN.with(Cell::get)
}

/// Runs `f` with `parent` as this thread's current span, so spans opened
/// inside nest under it — the worker half of cross-pool propagation.
/// `parent == 0` runs `f` untouched.
#[inline]
pub fn with_parent<R>(parent: u64, f: impl FnOnce() -> R) -> R {
    if parent == 0 {
        return f();
    }
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_SPAN.set(self.0);
        }
    }
    let prev = CURRENT_SPAN.replace(parent);
    let _restore = Restore(prev);
    f()
}

/// Drains every thread's buffered spans, sorted by (start, id).
pub fn take_spans() -> Vec<SpanEvent> {
    let mut out = Vec::new();
    for buf in buffers().lock().expect("span buffers").iter() {
        out.append(&mut buf.events.lock().expect("span buffer"));
    }
    out.sort_by_key(|e| (e.start_us, e.id));
    out
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Serializes spans as Chrome Trace Event Format JSON — loadable in
/// `chrome://tracing` and <https://ui.perfetto.dev> ("X" complete
/// events; parent ids ride in `args` for tooling).
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(e.name, &mut out);
        out.push_str(&format!(
            "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\
             \"args\":{{\"id\":{},\"parent\":{}}}}}",
            e.start_us, e.dur_us, e.tid, e.id, e.parent
        ));
    }
    out.push_str("]}");
    out
}

/// Drains buffered spans and writes them to `path` as chrome-trace JSON.
///
/// # Errors
///
/// Returns any I/O error from writing the file.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<Vec<SpanEvent>> {
    let events = take_spans();
    std::fs::write(path, chrome_trace_json(&events))?;
    Ok(events)
}

/// Serializes a metrics snapshot as flat JSON (name-sorted).
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, &mut out);
        out.push_str(&format!("\":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, &mut out);
        out.push_str(&format!("\":{v}"));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(name, &mut out);
        out.push_str("\":{\"sum\":");
        out.push_str(&h.sum.to_string());
        out.push_str(",\"counts\":[");
        for (j, c) in h.counts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("]}");
    }
    out.push_str("}}");
    out
}

/// Serializes a metrics snapshot as `kind,name,value` CSV (name-sorted;
/// histograms emit one `le_<bound>` row per bucket).
pub fn metrics_csv(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("kind,name,value\n");
    for (name, v) in &snap.counters {
        out.push_str(&format!("counter,{name},{v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("gauge,{name},{v}\n"));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!("histogram,{name}.sum,{}\n", h.sum));
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            if *count == 0 {
                continue;
            }
            let label = if *bound == u64::MAX { "inf".to_string() } else { bound.to_string() };
            out.push_str(&format!("histogram,{name}.le_{label},{count}\n"));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Process RSS (the one place /proc/self/status is parsed)
// ---------------------------------------------------------------------------

/// Current resident-set size from `/proc/self/status`, in KiB (`None`
/// off Linux or if the field is missing).
pub fn current_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

/// Samples the process RSS into the registry: sets `process.rss_kib`,
/// folds `process.rss_peak_kib` as a running max. Returns the sample.
pub fn sample_rss() -> Option<u64> {
    let rss = current_rss_kib()?;
    gauge!("process.rss_kib").set(rss);
    gauge!("process.rss_peak_kib").fetch_max(rss);
    Some(rss)
}

/// Marks the current RSS as `process.rss_baseline_kib` and restarts the
/// peak from it, so `rss_peak_kib − rss_baseline_kib` is the growth of
/// the region that follows (the `ltm` steady-state meter).
pub fn mark_rss_baseline() -> Option<u64> {
    let rss = current_rss_kib()?;
    gauge!("process.rss_baseline_kib").set(rss);
    gauge!("process.rss_kib").set(rss);
    gauge!("process.rss_peak_kib").set(rss);
    Some(rss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(TraceMode::parse("off"), TraceMode::Off);
        assert_eq!(TraceMode::parse("SPANS"), TraceMode::Spans);
        assert_eq!(TraceMode::parse(" full "), TraceMode::Full);
        assert_eq!(TraceMode::parse("garbage"), TraceMode::Off);
        assert_eq!(TraceMode::Full.as_str(), "full");
    }

    #[test]
    fn counters_merge_and_reset() {
        let c = counter("test.counters_merge");
        c.add(5);
        c.incr();
        assert_eq!(c.value(), 6);
        assert!(std::ptr::eq(c, counter("test.counters_merge")), "interned handle is stable");
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn gauge_set_and_max() {
        let g = gauge("test.gauge_set_max");
        g.set(10);
        g.fetch_max(7);
        assert_eq!(g.value(), 10);
        g.fetch_max(12);
        assert_eq!(g.value(), 12);
    }

    #[test]
    fn histogram_buckets_values() {
        let h = histogram("test.hist_buckets");
        h.record(1); // bucket 0 (≤ 1)
        h.record(3); // bucket 1 (≤ 4)
        h.record(5); // bucket 2 (≤ 16)
        h.record(u64::MAX); // overflow bucket
        let counts = h.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[HIST_BUCKETS - 1], 1);
        assert_eq!(h.sum(), 9u64.wrapping_add(u64::MAX));
    }

    #[test]
    fn snapshot_is_name_sorted() {
        counter("test.snap.b").incr();
        counter("test.snap.a").incr();
        let snap = snapshot();
        let names: Vec<&String> =
            snap.counters.keys().filter(|k| k.starts_with("test.snap.")).collect();
        assert_eq!(names, ["test.snap.a", "test.snap.b"]);
    }

    #[test]
    fn spans_record_and_nest_when_enabled() {
        set_mode(TraceMode::Spans);
        let _ = take_spans();
        {
            let outer = span("test.outer");
            let outer_id = outer.id();
            assert_eq!(current_span(), outer_id);
            {
                let _inner = span("test.inner");
                assert_ne!(current_span(), outer_id);
            }
            assert_eq!(current_span(), outer_id);
            // Fine-grained spans are skipped below `full`.
            assert_eq!(span_full("test.fine").id(), 0);
        }
        assert_eq!(current_span(), 0);
        let events = take_spans();
        let inner = events.iter().find(|e| e.name == "test.inner").expect("inner recorded");
        let outer = events.iter().find(|e| e.name == "test.outer").expect("outer recorded");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert!(outer.dur_us >= inner.dur_us);
        set_mode(TraceMode::Off);
        assert_eq!(span("test.off").id(), 0);
        assert!(take_spans().is_empty());
    }

    #[test]
    fn with_parent_propagates_and_restores() {
        set_mode(TraceMode::Spans);
        let _ = take_spans();
        let parent_id;
        {
            let parent = span("test.parent");
            parent_id = parent.id();
            with_parent(parent_id + 1000, || {
                assert_eq!(CURRENT_SPAN.with(Cell::get), parent_id + 1000);
            });
            assert_eq!(current_span(), parent_id);
        }
        // parent == 0 is the identity.
        assert_eq!(with_parent(0, || 42), 42);
        let _ = take_spans();
        set_mode(TraceMode::Off);
    }

    #[test]
    fn chrome_trace_shape() {
        let events = vec![
            SpanEvent { name: "a.b", id: 1, parent: 0, tid: 1, start_us: 10, dur_us: 5 },
            SpanEvent { name: "c\"d", id: 2, parent: 1, tid: 2, start_us: 11, dur_us: 1 },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"a.b\""));
        assert!(json.contains("\\\"")); // quote escaped
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"parent\":1"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn metrics_exports_are_well_formed() {
        counter("test.export.c").add(3);
        gauge("test.export.g").set(7);
        histogram("test.export.h").record(2);
        let snap = snapshot();
        let json = metrics_json(&snap);
        assert!(json.contains("\"test.export.c\":3"));
        assert!(json.contains("\"test.export.g\":7"));
        assert!(json.contains("\"test.export.h\""));
        let csv = metrics_csv(&snap);
        assert!(csv.contains("counter,test.export.c,3"));
        assert!(csv.contains("gauge,test.export.g,7"));
        assert!(csv.contains("histogram,test.export.h.le_4,1"));
    }

    #[test]
    fn rss_sampling_populates_gauges() {
        if mark_rss_baseline().is_none() {
            return; // not on Linux
        }
        let _big = vec![0u8; 4 << 20];
        sample_rss().expect("rss readable");
        let snap = snapshot();
        assert!(snap.gauges["process.rss_kib"] > 0);
        assert!(snap.gauges["process.rss_peak_kib"] >= snap.gauges["process.rss_baseline_kib"]);
    }
}
