//! Deterministic seeded fault injection for the whole workspace.
//!
//! The plan is configured once per process from `SUBMOD_FAULTS` (or
//! programmatically via [`override_plan`] in tests) and consulted by the
//! layers that touch the outside world: dataflow spill I/O, graph-store
//! opens, `submod_mman` mappings, `submod_exec` regions, and the
//! journal's round-boundary hook. Every decision is a pure function of
//! the plan seed and a per-site draw counter — rerunning the same binary
//! with the same plan injects the same faults at the same sites, which is
//! what makes the fault-injection suites reproducible.
//!
//! # Knob
//!
//! `SUBMOD_FAULTS=<mode>[:<seed>[:<rate>]]`, parsed once per process:
//!
//! | mode            | behaviour                                                        |
//! |-----------------|------------------------------------------------------------------|
//! | `off`           | nothing injected (the default, and a branch on one atomic load)  |
//! | `transient-io`  | I/O sites fail with a retriable error; the next attempt succeeds |
//! | `permanent-io`  | the first triggered I/O site is poisoned and fails forever       |
//! | `mmap-open`     | every `submod_mman` mapping fails permanently (fallback paths)   |
//! | `panic`         | one seeded panic inside a `submod_exec` region                   |
//! | `crash-round-N` | `process::abort()` after round `N`'s journal sync                |
//!
//! Transient faults are **self-clearing**: a site that just injected a
//! failure never injects one on the immediately following attempt (a
//! per-thread suppression bit), so a bounded retry loop always converges
//! — the suite under `SUBMOD_FAULTS=transient-io` is green by
//! construction, not by luck.
//!
//! Injected errors are ordinary [`std::io::Error`]s carrying the
//! [`INJECTED_MARKER`] in their message: [`is_injected_transient`] is how
//! retry loops distinguish "retry this" from a real (or permanent) error.

use std::cell::Cell;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Fault sites the workspace instruments, in draw-counter order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultSite {
    /// A write into a dataflow spill file.
    SpillWrite = 0,
    /// A read out of a dataflow spill file.
    SpillRead = 1,
    /// Creating or opening a dataflow spill file.
    SpillOpen = 2,
    /// Opening a graph-store file.
    StoreOpen = 3,
    /// A `submod_mman` mapping attempt.
    MmanMap = 4,
    /// Entry into a `submod_exec` parallel region.
    ExecRegion = 5,
    /// A journal append or sync.
    JournalWrite = 6,
}

/// Number of instrumented sites.
pub const FAULT_SITES: usize = 7;

impl FaultSite {
    /// Stable human-readable name (used in injected error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SpillWrite => "spill-write",
            FaultSite::SpillRead => "spill-read",
            FaultSite::SpillOpen => "spill-open",
            FaultSite::StoreOpen => "store-open",
            FaultSite::MmanMap => "mman-map",
            FaultSite::ExecRegion => "exec-region",
            FaultSite::JournalWrite => "journal-write",
        }
    }
}

/// What a plan injects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultMode {
    /// Nothing is injected.
    Off,
    /// Retriable I/O failures; the attempt after an injection succeeds.
    TransientIo,
    /// The first triggered I/O site poisons itself and fails forever.
    PermanentIo,
    /// Every mapping attempt fails permanently (exercises owned-backing
    /// fallbacks).
    MmapOpen,
    /// One seeded panic inside an exec region.
    Panic,
    /// `process::abort()` right after round `N`'s journal sync.
    CrashRound(u64),
}

/// A full fault plan: the mode plus the deterministic draw parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// What to inject.
    pub mode: FaultMode,
    /// Seed of the per-site draw sequence.
    pub seed: u64,
    /// Probability a draw triggers, in `[0, 1]`.
    pub rate: f64,
}

impl FaultPlan {
    /// The inert plan.
    pub fn off() -> FaultPlan {
        FaultPlan { mode: FaultMode::Off, seed: 0, rate: 0.0 }
    }

    /// Parses `<mode>[:<seed>[:<rate>]]` (the `SUBMOD_FAULTS` syntax).
    /// Unknown or malformed specs parse as [`FaultPlan::off`] — a fault
    /// knob must never take the process down on a typo.
    pub fn parse(spec: &str) -> FaultPlan {
        let mut parts = spec.split(':');
        let mode = match parts.next().unwrap_or("").trim() {
            "transient-io" => FaultMode::TransientIo,
            "permanent-io" => FaultMode::PermanentIo,
            "mmap-open" => FaultMode::MmapOpen,
            "panic" => FaultMode::Panic,
            other => {
                if let Some(n) = other.strip_prefix("crash-round-") {
                    match n.parse::<u64>() {
                        Ok(round) => FaultMode::CrashRound(round),
                        Err(_) => return FaultPlan::off(),
                    }
                } else {
                    return FaultPlan::off();
                }
            }
        };
        let seed = parts.next().and_then(|s| s.trim().parse::<u64>().ok()).unwrap_or(0xFA17);
        let rate = parts
            .next()
            .and_then(|s| s.trim().parse::<f64>().ok())
            .filter(|r| r.is_finite() && (0.0..=1.0).contains(r))
            .unwrap_or(0.02);
        FaultPlan { mode, seed, rate }
    }
}

/// Marker substring carried by every injected error message.
pub const INJECTED_MARKER: &str = "submod injected fault";

// Encoded plan state. MODE doubles as the init latch: `MODE_UNSET` means
// "read SUBMOD_FAULTS on first use".
const MODE_UNSET: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);
static SEED: AtomicU64 = AtomicU64::new(0);
static RATE_BITS: AtomicU64 = AtomicU64::new(0);
static CRASH_ROUND: AtomicU64 = AtomicU64::new(0);
/// Bumped by every plan override so per-thread suppression state resets.
static EPOCH: AtomicU64 = AtomicU64::new(0);
/// Per-site draw counters (the deterministic sequence position).
static DRAWS: [AtomicU64; FAULT_SITES] = [const { AtomicU64::new(0) }; FAULT_SITES];
/// Per-site sticky poison bits (permanent modes).
static POISONED: [AtomicBool; FAULT_SITES] = [const { AtomicBool::new(false) }; FAULT_SITES];
/// One-shot latch for the panic mode.
static PANIC_FIRED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// `(epoch, per-site suppression bits)`: a site that just injected a
    /// transient fault on this thread skips its next draw.
    static SUPPRESS: Cell<(u64, u8)> = const { Cell::new((0, 0)) };
}

fn encode_mode(mode: FaultMode) -> u8 {
    match mode {
        FaultMode::Off => 0,
        FaultMode::TransientIo => 1,
        FaultMode::PermanentIo => 2,
        FaultMode::MmapOpen => 3,
        FaultMode::Panic => 4,
        FaultMode::CrashRound(_) => 5,
    }
}

fn install(plan: FaultPlan) {
    SEED.store(plan.seed, Ordering::Relaxed);
    RATE_BITS.store(plan.rate.to_bits(), Ordering::Relaxed);
    if let FaultMode::CrashRound(round) = plan.mode {
        CRASH_ROUND.store(round, Ordering::Relaxed);
    }
    for draw in &DRAWS {
        draw.store(0, Ordering::Relaxed);
    }
    for poison in &POISONED {
        poison.store(false, Ordering::Relaxed);
    }
    PANIC_FIRED.store(false, Ordering::Relaxed);
    EPOCH.fetch_add(1, Ordering::Relaxed);
    // Mode last: it is the flag every fast path branches on.
    MODE.store(encode_mode(plan.mode), Ordering::Release);
}

fn mode_byte() -> u8 {
    let mode = MODE.load(Ordering::Acquire);
    if mode != MODE_UNSET {
        return mode;
    }
    let plan = std::env::var("SUBMOD_FAULTS")
        .map(|s| FaultPlan::parse(&s))
        .unwrap_or_else(|_| FaultPlan::off());
    install(plan);
    MODE.load(Ordering::Acquire)
}

/// The active mode.
pub fn mode() -> FaultMode {
    match mode_byte() {
        1 => FaultMode::TransientIo,
        2 => FaultMode::PermanentIo,
        3 => FaultMode::MmapOpen,
        4 => FaultMode::Panic,
        5 => FaultMode::CrashRound(CRASH_ROUND.load(Ordering::Relaxed)),
        _ => FaultMode::Off,
    }
}

/// splitmix64 — the workspace's standard deterministic mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether draw `n` of `site` triggers under the current seed/rate.
fn draw_triggers(site: FaultSite, n: u64) -> bool {
    let seed = SEED.load(Ordering::Relaxed);
    let rate = f64::from_bits(RATE_BITS.load(Ordering::Relaxed));
    let h = mix(seed ^ (site as u64).wrapping_mul(0x9E37_79B9) ^ n.rotate_left(17));
    // Top 53 bits → uniform in [0, 1).
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < rate
}

fn suppressed(site: FaultSite) -> bool {
    let epoch = EPOCH.load(Ordering::Relaxed);
    SUPPRESS.with(|cell| {
        let (e, bits) = cell.get();
        if e != epoch {
            cell.set((epoch, 0));
            return false;
        }
        let bit = 1u8 << (site as usize);
        if bits & bit != 0 {
            cell.set((epoch, bits & !bit));
            true
        } else {
            false
        }
    })
}

fn suppress_next(site: FaultSite) {
    let epoch = EPOCH.load(Ordering::Relaxed);
    SUPPRESS.with(|cell| {
        let (e, bits) = cell.get();
        let bits = if e == epoch { bits } else { 0 };
        cell.set((epoch, bits | 1u8 << (site as usize)));
    });
}

fn injected_error(site: FaultSite, transient: bool, n: u64) -> io::Error {
    crate::counter("faults.injected").incr();
    let message = format!(
        "{INJECTED_MARKER}: {} I/O error at site {} (draw {n})",
        if transient { "transient" } else { "permanent" },
        site.name()
    );
    if transient {
        io::Error::new(io::ErrorKind::Interrupted, message)
    } else {
        io::Error::other(message)
    }
}

/// Consults the plan at an I/O site. `None` means proceed; `Some(err)`
/// means the operation must fail with `err` *instead of running*.
///
/// Transient injections set the per-thread suppression bit, so the
/// caller's immediate retry succeeds. Permanent injections poison the
/// site: every later call fails too (a disk that died stays dead).
pub fn inject_io(site: FaultSite) -> Option<io::Error> {
    match mode_byte() {
        1 => {
            // transient-io
            if suppressed(site) {
                return None;
            }
            let n = DRAWS[site as usize].fetch_add(1, Ordering::Relaxed);
            if draw_triggers(site, n) {
                suppress_next(site);
                return Some(injected_error(site, true, n));
            }
            None
        }
        2 => {
            // permanent-io
            if POISONED[site as usize].load(Ordering::Relaxed) {
                return Some(injected_error(site, false, u64::MAX));
            }
            let n = DRAWS[site as usize].fetch_add(1, Ordering::Relaxed);
            if draw_triggers(site, n) {
                POISONED[site as usize].store(true, Ordering::Relaxed);
                return Some(injected_error(site, false, n));
            }
            None
        }
        3 if site == FaultSite::MmanMap => {
            // mmap-open: every mapping attempt fails, permanently.
            let n = DRAWS[site as usize].fetch_add(1, Ordering::Relaxed);
            Some(injected_error(site, false, n))
        }
        _ => None,
    }
}

/// Consults the plan at an exec-region entry; panics exactly once per
/// plan when the seeded draw triggers.
pub fn inject_panic(site: FaultSite) {
    if mode_byte() != 4 {
        return;
    }
    let n = DRAWS[site as usize].fetch_add(1, Ordering::Relaxed);
    if draw_triggers(site, n)
        && PANIC_FIRED.compare_exchange(false, true, Ordering::Relaxed, Ordering::Relaxed).is_ok()
    {
        crate::counter("faults.injected").incr();
        panic!("{INJECTED_MARKER}: panic at site {} (draw {n})", site.name());
    }
}

/// Aborts the process when the plan says "crash after round `round`".
/// Called by the journal integration right after the round's fsync — the
/// on-disk journal is complete up to this boundary, which is exactly the
/// state a real crash would leave behind.
pub fn maybe_crash_after_round(round: u64) {
    if mode_byte() == 5 && CRASH_ROUND.load(Ordering::Relaxed) == round {
        eprintln!("{INJECTED_MARKER}: simulated crash after round {round}");
        std::process::abort();
    }
}

/// `true` when `err` is an injected *transient* fault — the only class a
/// retry loop should retry (real errors and permanent injections must
/// surface immediately).
pub fn is_injected_transient(err: &io::Error) -> bool {
    err.kind() == io::ErrorKind::Interrupted
        && err.get_ref().is_some_and(|inner| inner.to_string().contains(INJECTED_MARKER))
}

/// Maximum attempts a transient-I/O retry loop makes (the first attempt
/// plus up to three retries).
pub const MAX_IO_ATTEMPTS: usize = 4;

/// Bounded exponential backoff between transient-I/O retries: 0, then
/// 1 ms, 2 ms, 4 ms. Also charges the `faults.retries` counter — the
/// observable proof that degraded operation was retried, never silent.
pub fn backoff(attempt: usize) {
    crate::counter("faults.retries").incr();
    if attempt > 0 {
        std::thread::sleep(std::time::Duration::from_millis(1u64 << (attempt - 1).min(4)));
    }
}

/// The standard retry-aware gate for an instrumented I/O site: injected
/// transient faults are retried (with [`backoff`]) until they self-clear,
/// a permanent injection exhausts the attempts and surfaces as the final
/// error, and no fault means proceed. Callers run the real operation only
/// after this returns `Ok(())`.
pub fn check_io(site: FaultSite) -> io::Result<()> {
    for attempt in 0..MAX_IO_ATTEMPTS {
        match inject_io(site) {
            Some(err) if is_injected_transient(&err) && attempt + 1 < MAX_IO_ATTEMPTS => {
                backoff(attempt);
            }
            Some(err) => return Err(err),
            None => return Ok(()),
        }
    }
    unreachable!("the retry loop always returns within MAX_IO_ATTEMPTS")
}

static PLAN_LOCK: OnceLock<Mutex<()>> = OnceLock::new();

/// Guard returned by [`override_plan`]; restores the previous plan (and
/// releases the cross-test serialization lock) on drop.
pub struct PlanGuard {
    previous: FaultPlan,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for PlanGuard {
    fn drop(&mut self) {
        install(self.previous);
    }
}

/// Installs `plan` for the current process, returning a guard that
/// restores the previous plan on drop. Serialized by a global mutex so
/// concurrent tests never interleave plans; a poisoned lock (a panicking
/// fault test is the *point*) is recovered, not propagated.
pub fn override_plan(plan: FaultPlan) -> PlanGuard {
    let lock = PLAN_LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let previous = mode_with_params();
    install(plan);
    PlanGuard { previous, _lock: lock }
}

fn mode_with_params() -> FaultPlan {
    FaultPlan {
        mode: mode(),
        seed: SEED.load(Ordering::Relaxed),
        rate: f64::from_bits(RATE_BITS.load(Ordering::Relaxed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_knob_matrix() {
        assert_eq!(FaultPlan::parse("off").mode, FaultMode::Off);
        assert_eq!(FaultPlan::parse("transient-io").mode, FaultMode::TransientIo);
        assert_eq!(FaultPlan::parse("permanent-io:9:0.5").seed, 9);
        assert!((FaultPlan::parse("permanent-io:9:0.5").rate - 0.5).abs() < 1e-12);
        assert_eq!(FaultPlan::parse("mmap-open").mode, FaultMode::MmapOpen);
        assert_eq!(FaultPlan::parse("panic:3").mode, FaultMode::Panic);
        assert_eq!(FaultPlan::parse("crash-round-4").mode, FaultMode::CrashRound(4));
        // Typos and junk degrade to off, never panic.
        assert_eq!(FaultPlan::parse("explode").mode, FaultMode::Off);
        assert_eq!(FaultPlan::parse("crash-round-x").mode, FaultMode::Off);
        assert_eq!(FaultPlan::parse("transient-io:nope:2.0").seed, 0xFA17);
        assert!((FaultPlan::parse("transient-io:1:7.5").rate - 0.02).abs() < 1e-12);
    }

    #[test]
    fn transient_faults_self_clear() {
        let _guard = override_plan(FaultPlan { mode: FaultMode::TransientIo, seed: 11, rate: 1.0 });
        // Rate 1.0: every draw triggers, but each injection suppresses the
        // next attempt — fail, succeed, fail, succeed.
        assert!(inject_io(FaultSite::SpillWrite).is_some());
        assert!(inject_io(FaultSite::SpillWrite).is_none());
        assert!(inject_io(FaultSite::SpillWrite).is_some());
        assert!(inject_io(FaultSite::SpillWrite).is_none());
        // Suppression is per-site: a different site still faults.
        assert!(inject_io(FaultSite::SpillWrite).is_some());
        assert!(inject_io(FaultSite::SpillRead).is_some());
    }

    #[test]
    fn permanent_faults_stick() {
        let _guard = override_plan(FaultPlan { mode: FaultMode::PermanentIo, seed: 5, rate: 1.0 });
        let first = inject_io(FaultSite::StoreOpen).expect("rate 1.0 must trigger");
        assert!(!is_injected_transient(&first));
        for _ in 0..3 {
            assert!(inject_io(FaultSite::StoreOpen).is_some(), "poisoned site stays failed");
        }
    }

    #[test]
    fn injected_errors_are_recognizable() {
        let _guard = override_plan(FaultPlan { mode: FaultMode::TransientIo, seed: 3, rate: 1.0 });
        let err = inject_io(FaultSite::JournalWrite).expect("rate 1.0 must trigger");
        assert!(is_injected_transient(&err));
        assert!(err.to_string().contains(INJECTED_MARKER));
        // A real interrupted error without the marker is not "injected".
        let real = io::Error::new(io::ErrorKind::Interrupted, "spurious wakeup");
        assert!(!is_injected_transient(&real));
    }

    #[test]
    fn off_mode_injects_nothing() {
        let _guard = override_plan(FaultPlan::off());
        for _ in 0..64 {
            assert!(inject_io(FaultSite::SpillWrite).is_none());
        }
        inject_panic(FaultSite::ExecRegion); // must not panic
        maybe_crash_after_round(1); // must not abort
    }

    #[test]
    fn draws_are_deterministic_for_a_seed() {
        let sequence = |seed: u64| -> Vec<bool> {
            let _guard = override_plan(FaultPlan { mode: FaultMode::PermanentIo, seed, rate: 0.3 });
            // Permanent mode pins no suppression state; read the raw draw
            // sequence up to (and including) the first trigger.
            (0..32).map(|n| draw_triggers(FaultSite::SpillRead, n)).collect()
        };
        assert_eq!(sequence(42), sequence(42));
        assert_ne!(sequence(42), sequence(43), "different seeds must differ somewhere");
    }

    #[test]
    fn panic_mode_fires_exactly_once() {
        let _guard = override_plan(FaultPlan { mode: FaultMode::Panic, seed: 1, rate: 1.0 });
        let result = std::panic::catch_unwind(|| inject_panic(FaultSite::ExecRegion));
        assert!(result.is_err(), "rate 1.0 must panic on the first draw");
        // The latch has fired: later draws stay quiet.
        inject_panic(FaultSite::ExecRegion);
    }
}
