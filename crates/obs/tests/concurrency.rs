//! Deterministic-merge suite: concurrent counter/histogram increments at
//! 1/2/8 threads must produce identical snapshots regardless of thread
//! count or interleaving — shard sums commute, so the totals are exact.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Barrier;

use proptest::prelude::*;

/// Unique metric names per proptest case (the registry is process-global
/// and proptest reruns cases, so names must not collide across cases).
fn fresh_name(prefix: &str) -> String {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    format!("{prefix}.{}", NEXT.fetch_add(1, Ordering::Relaxed))
}

/// Splits `values` round-robin over `threads` threads, each adding its
/// slice to the counter and recording it into the histogram, then
/// returns (counter total, histogram counts, histogram sum).
fn run_at(
    threads: usize,
    values: &[u64],
    counter_name: &str,
    hist_name: &str,
) -> (u64, Vec<u64>, u64) {
    let counter = submod_obs::counter(counter_name);
    let hist = submod_obs::histogram(hist_name);
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for v in values.iter().skip(t).step_by(threads) {
                    counter.add(*v);
                    hist.record(*v);
                }
            });
        }
    });
    (counter.value(), hist.counts(), hist.sum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The merged totals at 2 and 8 threads equal the single-threaded
    /// ground truth, value for value and bucket for bucket.
    #[test]
    fn concurrent_merge_is_thread_count_invariant(
        values in proptest::collection::vec(0u64..1u64 << 40, 1..200),
    ) {
        let base = fresh_name("t.merge");
        let mut reference = None;
        for threads in [1usize, 2, 8] {
            let got = run_at(
                threads,
                &values,
                &format!("{base}.c{threads}"),
                &format!("{base}.h{threads}"),
            );
            match &reference {
                None => {
                    let expected: u64 = values.iter().sum();
                    prop_assert_eq!(got.0, expected);
                    prop_assert_eq!(got.2, expected);
                    reference = Some(got);
                }
                Some(r) => prop_assert_eq!(&got, r),
            }
        }
    }

    /// Snapshots expose exactly the merged values under sorted names.
    #[test]
    fn snapshot_reflects_concurrent_increments(
        values in proptest::collection::vec(1u64..1u64 << 20, 1..64),
    ) {
        let name = fresh_name("t.snap");
        run_at(8, &values, &name, &format!("{name}.h"));
        let snap = submod_obs::snapshot();
        let expected: u64 = values.iter().sum();
        prop_assert_eq!(snap.counters[&name], expected);
        prop_assert_eq!(snap.histograms[&format!("{name}.h")].sum, expected);
        let total_count: u64 = snap.histograms[&format!("{name}.h")].counts.iter().sum();
        prop_assert_eq!(total_count, values.len() as u64);
    }
}

/// Gauges fold maxima deterministically under contention.
#[test]
fn gauge_max_is_deterministic_across_threads() {
    let gauge = submod_obs::gauge("t.gauge.max8");
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            scope.spawn(move || {
                for i in 0..1000u64 {
                    gauge.fetch_max(t * 1000 + i);
                }
            });
        }
    });
    assert_eq!(gauge.value(), 7999);
}
