//! Deterministic fault-injection suite over the selection stack:
//!
//! - **transient-io** — every instrumented I/O site (journal appends,
//!   spill open/write/read, store opens) fails once and is retried with
//!   bounded backoff; the run completes with the exact same selection it
//!   would have produced fault-free, and the `faults.retries` counter
//!   proves the degradation was observed, not silent.
//! - **permanent-io** — a poisoned site surfaces as a *typed* error
//!   (`DistError`, marker in the chain), never a panic or a wrong answer.
//! - **mmap-open** — mapping failures degrade to the owned-buffer
//!   fallback, recorded in `store.mmap_open_fallbacks`, with bit-equal
//!   graph contents.
//! - **panic** — a seeded panic in an exec region unwinds carrying the
//!   injected marker and is containable by `catch_unwind`.
//! - RAII cleanup — a run killed by an injected fault (error *or* panic)
//!   leaks no spill files: its spill directory is empty afterwards.

use std::fs;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use submod_core::{GraphBuilder, NodeId, PairwiseObjective, SimilarityGraph};
use submod_dataflow::{MemoryBudget, Pipeline};
use submod_dist::{
    distributed_greedy, distributed_greedy_dataflow, distributed_greedy_dataflow_journaled,
    distributed_greedy_journaled, DistGreedyConfig,
};
use submod_obs::faults::{self, FaultMode, FaultPlan, INJECTED_MARKER};

fn instance(n: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut b = GraphBuilder::new(n);
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };
    for v in 0..n as u64 {
        for _ in 0..3 {
            let w = next() % n as u64;
            if w != v {
                let s = 0.05 + (next() % 900) as f32 / 1000.0;
                b.add_undirected(v, w, s).expect("edge");
            }
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n).map(|_| 0.1 + (next() % 900) as f32 / 1000.0).collect();
    (graph, PairwiseObjective::from_alpha(0.85, utilities).expect("objective"))
}

fn ground(n: usize) -> Vec<NodeId> {
    (0..n).map(NodeId::from_index).collect()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("submod-faultinj-{}-{name}", std::process::id()))
}

fn fingerprint(selection: &submod_core::Selection) -> (Vec<u64>, u64) {
    (selection.selected().iter().map(|v| v.raw()).collect(), selection.objective_value().to_bits())
}

/// Every error in the chain, concatenated — injected faults carry
/// [`INJECTED_MARKER`] somewhere in there.
fn error_chain(err: &dyn std::error::Error) -> String {
    let mut out = err.to_string();
    let mut cursor = err.source();
    while let Some(inner) = cursor {
        out.push_str(" / ");
        out.push_str(&inner.to_string());
        cursor = inner.source();
    }
    out
}

#[test]
fn transient_io_is_retried_to_the_fault_free_answer() {
    let (graph, objective) = instance(70, 7);
    let g = ground(70);
    let config = DistGreedyConfig::new(3, 2).expect("config").seed(3);
    // The fault-free answer, computed before any plan is installed.
    let expected = fingerprint(
        &distributed_greedy(&graph, &objective, &g, 10, &config).expect("plain").selection,
    );

    let retries_before = submod_obs::counter("faults.retries").value();
    let injected_before = submod_obs::counter("faults.injected").value();
    let _guard = faults::override_plan(FaultPlan {
        mode: FaultMode::TransientIo,
        seed: 0xFA17,
        rate: 1.0, // every first attempt at every site fails
    });

    // In-memory driver + journal: every append/sync is retried once.
    let journal = temp_path("transient.wal");
    let _ = fs::remove_file(&journal);
    let (report, _) = distributed_greedy_journaled(&graph, &objective, &g, 10, &config, &journal)
        .expect("transient faults must be survivable");
    assert_eq!(fingerprint(&report.selection), expected, "retries changed the selection");

    // Dataflow driver with a tiny budget: spill open/write/read all fault
    // and retry too.
    let pipeline = Pipeline::builder()
        .workers(2)
        .memory_budget(MemoryBudget::bytes(256))
        .build()
        .expect("pipeline");
    let journal_df = temp_path("transient-df.wal");
    let _ = fs::remove_file(&journal_df);
    let (df, _) = distributed_greedy_dataflow_journaled(
        &pipeline,
        &graph,
        &objective,
        &g,
        10,
        &config,
        &journal_df,
    )
    .expect("transient faults must be survivable under dataflow");
    assert_eq!(fingerprint(&df.selection), expected, "dataflow retries changed the selection");
    assert!(pipeline.metrics().spill_files > 0, "the tiny budget must actually spill");

    assert!(
        submod_obs::counter("faults.retries").value() > retries_before,
        "retries must be charged to the faults.retries counter"
    );
    assert!(
        submod_obs::counter("faults.injected").value() > injected_before,
        "injections must be charged to the faults.injected counter"
    );
    let _ = fs::remove_file(&journal);
    let _ = fs::remove_file(&journal_df);
}

#[test]
fn permanent_io_surfaces_as_a_typed_error() {
    let (graph, objective) = instance(50, 11);
    let g = ground(50);
    let config = DistGreedyConfig::new(2, 2).expect("config").seed(1);
    let _guard = faults::override_plan(FaultPlan {
        mode: FaultMode::PermanentIo,
        seed: 5,
        rate: 1.0, // the first gated site poisons immediately
    });

    // Journaled in-memory run: the journal write is the poisoned site.
    let journal = temp_path("permanent.wal");
    let _ = fs::remove_file(&journal);
    let err = distributed_greedy_journaled(&graph, &objective, &g, 8, &config, &journal)
        .expect_err("a poisoned journal must fail the run");
    assert!(
        error_chain(&err).contains(INJECTED_MARKER),
        "the injected fault must be visible in the error chain, got: {}",
        error_chain(&err)
    );

    // Dataflow run with spills: the spill site is the poisoned one.
    let pipeline = Pipeline::builder()
        .workers(2)
        .memory_budget(MemoryBudget::bytes(128))
        .build()
        .expect("pipeline");
    let err = distributed_greedy_dataflow(&pipeline, &graph, &objective, &g, 8, &config)
        .expect_err("a poisoned spill must fail the run");
    assert!(
        error_chain(&err).contains(INJECTED_MARKER),
        "the injected fault must be visible in the error chain, got: {}",
        error_chain(&err)
    );
    let _ = fs::remove_file(&journal);
}

#[test]
fn mmap_open_degrades_to_the_owned_fallback() {
    let (graph, _) = instance(50, 9);
    let store = temp_path("fallback.csr");
    graph.write_store(&store).expect("write store");

    let fallbacks_before = submod_obs::counter("store.mmap_open_fallbacks").value();
    let owned_before = submod_obs::counter("mman.owned_reads").value();
    let reopened = {
        let _guard = faults::override_plan(FaultPlan {
            mode: FaultMode::MmapOpen,
            seed: 0xFA17,
            rate: 0.02,
        });
        SimilarityGraph::open_store(&store).expect("the owned fallback must keep the open alive")
    };
    assert!(
        submod_obs::counter("store.mmap_open_fallbacks").value() > fallbacks_before,
        "the fallback must be recorded in store.mmap_open_fallbacks"
    );
    assert!(
        submod_obs::counter("mman.owned_reads").value() > owned_before,
        "the owned read must be recorded in mman.owned_reads"
    );

    // Degraded, not different: the CSR arrays are bit-equal.
    let (o1, n1, w1) = graph.csr_parts();
    let (o2, n2, w2) = reopened.csr_parts();
    assert_eq!(o1, o2);
    assert_eq!(n1, n2);
    assert_eq!(w1.len(), w2.len());
    for (a, b) in w1.iter().zip(w2.iter()) {
        assert_eq!(a.to_bits(), b.to_bits(), "weight bits must survive the fallback");
    }
    let _ = fs::remove_file(&store);
}

#[test]
fn injected_panic_carries_the_marker_and_is_containable() {
    let (graph, objective) = instance(40, 13);
    let g = ground(40);
    let config = DistGreedyConfig::new(2, 1).expect("config").seed(2);
    let _guard = faults::override_plan(FaultPlan { mode: FaultMode::Panic, seed: 1, rate: 1.0 });

    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        distributed_greedy(&graph, &objective, &g, 6, &config)
    }));
    let payload = result.expect_err("rate 1.0 must panic in the first exec region");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        message.contains(INJECTED_MARKER),
        "the panic payload must carry the injected marker, got: {message}"
    );
}

/// A run killed by an injected fault — typed error or panic — leaks no
/// spill files: once the pipeline is dropped its spill directory is gone
/// from the base directory entirely.
#[test]
fn aborted_runs_leak_no_spill_files() {
    let (graph, objective) = instance(60, 21);
    let g = ground(60);
    let config = DistGreedyConfig::new(3, 2).expect("config").seed(4);

    // Error path: a poisoned spill site kills the run mid-spill.
    let base = temp_path("spill-raii-err");
    fs::create_dir_all(&base).expect("create base dir");
    {
        let pipeline = Pipeline::builder()
            .workers(2)
            .memory_budget(MemoryBudget::bytes(128))
            .spill_dir(&base)
            .build()
            .expect("pipeline");
        let _guard =
            faults::override_plan(FaultPlan { mode: FaultMode::PermanentIo, seed: 5, rate: 1.0 });
        let result = distributed_greedy_dataflow(&pipeline, &graph, &objective, &g, 10, &config);
        assert!(result.is_err(), "the poisoned spill must fail the run");
    }
    let leaked: Vec<_> = fs::read_dir(&base).expect("read base dir").collect();
    assert!(leaked.is_empty(), "error path leaked spill state: {leaked:?}");
    let _ = fs::remove_dir_all(&base);

    // Panic path: an injected panic unwinds through the running pipeline.
    let base = temp_path("spill-raii-panic");
    fs::create_dir_all(&base).expect("create base dir");
    {
        let pipeline = Pipeline::builder()
            .workers(2)
            .memory_budget(MemoryBudget::bytes(128))
            .spill_dir(&base)
            .build()
            .expect("pipeline");
        let _guard =
            faults::override_plan(FaultPlan { mode: FaultMode::Panic, seed: 1, rate: 1.0 });
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            distributed_greedy_dataflow(&pipeline, &graph, &objective, &g, 10, &config)
        }));
        assert!(result.is_err(), "rate 1.0 must panic inside the pipeline");
    }
    let leaked: Vec<_> = fs::read_dir(&base).expect("read base dir").collect();
    assert!(leaked.is_empty(), "panic path leaked spill state: {leaked:?}");
    let _ = fs::remove_dir_all(&base);
}

/// Journal activity is mirrored into the metrics registry: appends,
/// syncs, and replayed records all move their counters.
#[test]
fn journal_counters_are_mirrored_into_obs() {
    // Take the plan lock (with the inert plan) so concurrent fault tests
    // in this binary can't interleave their own journal writes.
    let _guard = faults::override_plan(FaultPlan::off());
    let (graph, objective) = instance(40, 33);
    let g = ground(40);
    let config = DistGreedyConfig::new(2, 2).expect("config").seed(6);
    let journal = temp_path("counters.wal");
    let _ = fs::remove_file(&journal);

    let written_before = submod_obs::counter("journal.records_written").value();
    let syncs_before = submod_obs::counter("journal.syncs").value();
    distributed_greedy_journaled(&graph, &objective, &g, 8, &config, &journal).expect("fresh run");
    // RunStart + 2 rounds + RunComplete.
    assert!(
        submod_obs::counter("journal.records_written").value() >= written_before + 4,
        "appends must be charged to journal.records_written"
    );
    assert!(
        submod_obs::counter("journal.syncs").value() >= syncs_before + 4,
        "boundary fsyncs must be charged to journal.syncs"
    );

    let replayed_before = submod_obs::counter("journal.records_replayed").value();
    distributed_greedy_journaled(&graph, &objective, &g, 8, &config, &journal).expect("replay");
    assert!(
        submod_obs::counter("journal.records_replayed").value() >= replayed_before + 4,
        "a resume must charge journal.records_replayed"
    );
    let _ = fs::remove_file(&journal);
}
