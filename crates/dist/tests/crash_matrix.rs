//! Crash matrix: a journaled run killed at **every** record boundary —
//! and at torn mid-append offsets just past each boundary — must resume
//! to a bitwise-identical selection (same ids, same order, same
//! objective-value bits) as a run that never died. The matrix covers
//! both drivers (in-memory and dataflow), 1 and 8 pool threads, the
//! owned and the mmap-backed graph store, cross-driver resume (crash
//! under one driver, resume under the other), and — via a re-exec'd
//! subprocess with `SUBMOD_FAULTS=crash-round-N` — a real
//! `process::abort()` at a round boundary.
//!
//! Resume against a journal written by a *different* configuration (or
//! a different algorithm, or a non-journal file) must be refused with a
//! typed error, never spliced into a wrong answer.

use std::fs;
use std::path::{Path, PathBuf};
use submod_core::{GraphBuilder, NodeId, PairwiseObjective, Selection, SimilarityGraph};
use submod_dataflow::Pipeline;
use submod_dist::{
    distributed_greedy_dataflow_journaled, distributed_greedy_journaled,
    distributed_greedy_with_stats, greedi_dataflow_journaled, greedi_journaled, select_subset,
    select_subset_journaled, BoundingConfig, DistGreedyConfig, PartitionStyle, PipelineConfig,
    SamplingStrategy,
};
use submod_exec::with_threads;
use submod_journal::HEADER_LEN;

const THREAD_COUNTS: [usize; 2] = [1, 8];

/// A deterministic pseudo-random instance (splitmix-style weights).
fn instance(n: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut b = GraphBuilder::new(n);
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };
    for v in 0..n as u64 {
        for _ in 0..3 {
            let w = next() % n as u64;
            if w != v {
                let s = 0.05 + (next() % 900) as f32 / 1000.0;
                b.add_undirected(v, w, s).expect("edge");
            }
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n).map(|_| 0.1 + (next() % 900) as f32 / 1000.0).collect();
    let objective = PairwiseObjective::from_alpha(0.85, utilities).expect("objective");
    (graph, objective)
}

fn ground(n: usize) -> Vec<NodeId> {
    (0..n).map(NodeId::from_index).collect()
}

/// Writes `graph` to a temp store and reopens it memory-mapped.
fn mapped_copy(graph: &SimilarityGraph, name: &str) -> SimilarityGraph {
    let path = std::env::temp_dir().join(format!("submod-crash-{}-{name}.csr", std::process::id()));
    graph.write_store(&path).expect("write store");
    let mapped = SimilarityGraph::open_store(&path).expect("open store");
    let _ = std::fs::remove_file(&path); // the live mapping keeps it readable
    assert!(mapped.is_mapped());
    mapped
}

fn temp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("submod-crash-{}-{name}.wal", std::process::id()))
}

/// Removes its file on drop so a failing assertion doesn't leak journals
/// into the temp directory.
struct FileGuard(PathBuf);

impl Drop for FileGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

/// Every prefix length at which the journal is a valid sequence of
/// complete frames: the bare header, then after each `[len][payload]
/// [checksum]` frame. Asserts the file itself ends on a boundary — a
/// journal that syncs at record boundaries never ends mid-frame unless
/// the process died mid-append.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    assert!(bytes.len() >= HEADER_LEN, "journal shorter than its header");
    let mut ends = vec![HEADER_LEN];
    let mut off = HEADER_LEN;
    while off + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        let end = off + 4 + len + 8;
        if end > bytes.len() {
            break;
        }
        ends.push(end);
        off = end;
    }
    assert_eq!(off, bytes.len(), "journal must end on a frame boundary");
    ends
}

/// Selected ids in order plus the objective value's exact bits.
type Fingerprint = (Vec<u64>, u64);

fn fingerprint(selection: &Selection) -> Fingerprint {
    (selection.selected().iter().map(|v| v.raw()).collect(), selection.objective_value().to_bits())
}

/// The kill-and-resume matrix for one journaled entry point: a baseline
/// run on a fresh journal, then for every boundary prefix — and a torn
/// tail five bytes past it — rewrite the journal, resume, and demand the
/// baseline fingerprint. The last boundary is the complete file, so a
/// "resume" of a finished run (a pure replay) is covered too.
fn crash_matrix(name: &str, min_frames: usize, run: impl Fn(&Path) -> Fingerprint) -> Fingerprint {
    let path = temp_journal(name);
    let _guard = FileGuard(path.clone());
    let _ = fs::remove_file(&path);
    let baseline = run(&path);
    let bytes = fs::read(&path).expect("read baseline journal");
    let boundaries = frame_boundaries(&bytes);
    assert!(
        boundaries.len() > min_frames,
        "{name}: expected more than {min_frames} frames, found {}",
        boundaries.len() - 1
    );
    for (i, &end) in boundaries.iter().enumerate() {
        fs::write(&path, &bytes[..end]).expect("truncate to boundary");
        let resumed = run(&path);
        assert_eq!(
            resumed,
            baseline,
            "{name}: resume from boundary {i} ({end} of {} bytes) diverged",
            bytes.len()
        );
        // A crash mid-append leaves a torn frame; replay must truncate it
        // and land back on this boundary.
        let torn = (end + 5).min(bytes.len());
        if torn > end {
            fs::write(&path, &bytes[..torn]).expect("write torn tail");
            let resumed = run(&path);
            assert_eq!(
                resumed, baseline,
                "{name}: resume from torn tail past boundary {i} diverged"
            );
        }
    }
    baseline
}

#[test]
fn multiround_in_memory_resumes_bitwise_identically() {
    let (graph, objective) = instance(90, 17);
    let g = ground(90);
    let config = DistGreedyConfig::new(4, 3).expect("config").seed(11).adaptive(true);
    // The journaled run must also match the plain (never-journaled) one.
    let plain = distributed_greedy_with_stats(&graph, &objective, &g, 15, &config).expect("plain");
    for &threads in &THREAD_COUNTS {
        // RunStart + 3 rounds + RunComplete = 5 frames.
        let baseline = crash_matrix(&format!("mem-{threads}"), 4, |path| {
            with_threads(threads, || {
                let (report, _) =
                    distributed_greedy_journaled(&graph, &objective, &g, 15, &config, path)
                        .expect("journaled run");
                fingerprint(&report.selection)
            })
        });
        assert_eq!(baseline, fingerprint(&plain.0.selection), "journaling perturbed the selection");
    }
}

#[test]
fn multiround_dataflow_resumes_bitwise_identically() {
    let (graph, objective) = instance(90, 17);
    let g = ground(90);
    let config = DistGreedyConfig::new(4, 3).expect("config").seed(11).adaptive(true);
    for &threads in &THREAD_COUNTS {
        crash_matrix(&format!("df-{threads}"), 4, |path| {
            with_threads(threads, || {
                let pipeline = Pipeline::new(3).expect("pipeline");
                let (report, _) = distributed_greedy_dataflow_journaled(
                    &pipeline, &graph, &objective, &g, 15, &config, path,
                )
                .expect("journaled dataflow run");
                fingerprint(&report.selection)
            })
        });
    }
}

/// The journal fingerprint excludes the driver kind: a run may crash
/// under one driver and resume under the other, still bit-identical.
#[test]
fn crash_under_one_driver_resumes_under_the_other() {
    let (graph, objective) = instance(80, 23);
    let g = ground(80);
    let config = DistGreedyConfig::new(3, 3).expect("config").seed(5);
    let path = temp_journal("cross");
    let _guard = FileGuard(path.clone());
    let _ = fs::remove_file(&path);

    let (mem, _) =
        distributed_greedy_journaled(&graph, &objective, &g, 12, &config, &path).expect("baseline");
    let baseline = fingerprint(&mem.selection);
    let bytes = fs::read(&path).expect("read journal");
    for (i, &end) in frame_boundaries(&bytes).iter().enumerate() {
        fs::write(&path, &bytes[..end]).expect("truncate");
        let pipeline = Pipeline::new(2).expect("pipeline");
        let (df, _) = distributed_greedy_dataflow_journaled(
            &pipeline, &graph, &objective, &g, 12, &config, &path,
        )
        .expect("dataflow resume");
        assert_eq!(
            fingerprint(&df.selection),
            baseline,
            "in-memory crash at boundary {i} resumed under dataflow diverged"
        );
    }

    // The other direction: crash under dataflow, resume in memory.
    let _ = fs::remove_file(&path);
    let pipeline = Pipeline::new(2).expect("pipeline");
    let (df, _) = distributed_greedy_dataflow_journaled(
        &pipeline, &graph, &objective, &g, 12, &config, &path,
    )
    .expect("dataflow baseline");
    assert_eq!(fingerprint(&df.selection), baseline, "drivers must agree before the matrix");
    let bytes = fs::read(&path).expect("read journal");
    let boundaries = frame_boundaries(&bytes);
    for &end in &[boundaries[1], boundaries[boundaries.len() / 2]] {
        fs::write(&path, &bytes[..end]).expect("truncate");
        let (mem, _) = distributed_greedy_journaled(&graph, &objective, &g, 12, &config, &path)
            .expect("in-memory resume");
        assert_eq!(
            fingerprint(&mem.selection),
            baseline,
            "dataflow crash resumed in memory diverged"
        );
    }
}

#[test]
fn full_pipeline_resumes_bitwise_identically() {
    let (graph, objective) = instance(80, 31);
    for (tag, bounding) in [
        ("exact", BoundingConfig::exact()),
        ("approx", BoundingConfig::approximate(0.5, SamplingStrategy::Uniform, 3).expect("config")),
    ] {
        let config = PipelineConfig::with_bounding(
            bounding,
            DistGreedyConfig::new(3, 2).expect("config").seed(7),
        );
        let plain = select_subset(&graph, &objective, 14, &config).expect("plain pipeline");
        // RunStart + ≥1 bounding cycle + BoundingDone + greedy rounds +
        // RunComplete.
        let baseline = crash_matrix(&format!("pipeline-{tag}"), 4, |path| {
            let outcome =
                select_subset_journaled(&graph, &objective, 14, &config, path).expect("pipeline");
            fingerprint(&outcome.selection)
        });
        assert_eq!(baseline, fingerprint(&plain.selection), "journaling perturbed the pipeline");
    }
}

#[test]
fn greedi_resumes_bitwise_identically_both_drivers() {
    let (graph, objective) = instance(70, 41);
    for (tag, style) in
        [("arbitrary", PartitionStyle::Arbitrary), ("random", PartitionStyle::Random)]
    {
        // RunStart + the map-phase round + RunComplete = 3 frames.
        let mem = crash_matrix(&format!("greedi-{tag}"), 2, |path| {
            let report =
                greedi_journaled(&graph, &objective, 10, 4, style, 9, path).expect("greedi");
            fingerprint(&report.selection)
        });
        let df = crash_matrix(&format!("greedi-df-{tag}"), 2, |path| {
            let pipeline = Pipeline::new(2).expect("pipeline");
            let report =
                greedi_dataflow_journaled(&pipeline, &graph, &objective, 10, 4, style, 9, path)
                    .expect("greedi dataflow");
            fingerprint(&report.selection)
        });
        assert_eq!(mem, df, "GreeDi drivers diverged under the journal");
    }
}

/// The whole matrix holds over the mmap-backed graph store, and the
/// mapped baseline equals the owned one (the CI matrix additionally
/// forces `SUBMOD_GRAPH_STORE=mmap` across the full suite).
#[test]
fn mapped_store_resumes_bitwise_identically() {
    let (graph, objective) = instance(90, 53);
    let mapped = mapped_copy(&graph, "journal");
    let g = ground(90);
    let config = DistGreedyConfig::new(4, 3).expect("config").seed(29).adaptive(true);
    let owned = crash_matrix("owned", 4, |path| {
        let (report, _) = distributed_greedy_journaled(&graph, &objective, &g, 12, &config, path)
            .expect("owned run");
        fingerprint(&report.selection)
    });
    let over_map = crash_matrix("mapped", 4, |path| {
        let (report, _) = distributed_greedy_journaled(&mapped, &objective, &g, 12, &config, path)
            .expect("mapped run");
        fingerprint(&report.selection)
    });
    assert_eq!(owned, over_map, "the mapped store diverged from the owned graph");
}

/// Resuming against the wrong journal is refused, never spliced.
#[test]
fn mismatched_resume_is_refused() {
    let (graph, objective) = instance(40, 3);
    let g = ground(40);
    let config = DistGreedyConfig::new(2, 2).expect("config").seed(1);
    let path = temp_journal("mismatch");
    let _guard = FileGuard(path.clone());
    let _ = fs::remove_file(&path);
    distributed_greedy_journaled(&graph, &objective, &g, 8, &config, &path).expect("baseline");

    // A different budget.
    let err = distributed_greedy_journaled(&graph, &objective, &g, 9, &config, &path)
        .expect_err("k changed");
    assert!(err.to_string().contains("different run configuration"), "got: {err}");
    // A different seed.
    let err =
        distributed_greedy_journaled(&graph, &objective, &g, 8, &config.clone().seed(2), &path)
            .expect_err("seed changed");
    assert!(err.to_string().contains("different run configuration"), "got: {err}");
    // A different algorithm against the same journal.
    let err = select_subset_journaled(
        &graph,
        &objective,
        8,
        &PipelineConfig::greedy_only(config.clone()),
        &path,
    )
    .expect_err("algorithm changed");
    assert!(err.to_string().contains("different run configuration"), "got: {err}");
    // The matching configuration still replays cleanly after all refusals.
    distributed_greedy_journaled(&graph, &objective, &g, 8, &config, &path)
        .expect("original configuration still resumes");

    // A file that is not a journal at all: typed error, file untouched.
    fs::write(&path, b"definitely not a journal").expect("write garbage");
    assert!(
        distributed_greedy_journaled(&graph, &objective, &g, 8, &config, &path).is_err(),
        "garbage accepted as a journal"
    );
    assert_eq!(fs::read(&path).expect("reread").as_slice(), b"definitely not a journal");
}

/// End-to-end: a subprocess under `SUBMOD_FAULTS=crash-round-2` really
/// aborts right after round 2's fsync; the journal it leaves behind ends
/// on a frame boundary with exactly RunStart + two round records, and a
/// resume completes bit-identically to a run that never crashed.
#[test]
fn injected_crash_round_abort_then_resume() {
    let path = std::env::var_os("CRASH_MATRIX_JOURNAL")
        .map(PathBuf::from)
        .unwrap_or_else(|| temp_journal("abort"));
    let (graph, objective) = instance(60, 71);
    let g = ground(60);
    let config = DistGreedyConfig::new(3, 4).expect("config").seed(13);

    if std::env::var_os("CRASH_MATRIX_CHILD").is_some() {
        // Child: this call must abort the process after round 2. If the
        // injection misfires the run completes, the child exits cleanly,
        // and the parent's !success assertion catches it.
        let _ = distributed_greedy_journaled(&graph, &objective, &g, 12, &config, &path);
        return;
    }

    let _guard = FileGuard(path.clone());
    let _ = fs::remove_file(&path);
    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(&exe)
        .args(["injected_crash_round_abort_then_resume", "--exact", "--test-threads=1"])
        .env("CRASH_MATRIX_CHILD", "1")
        .env("CRASH_MATRIX_JOURNAL", &path)
        .env("SUBMOD_FAULTS", "crash-round-2")
        .status()
        .expect("spawn crash child");
    assert!(!status.success(), "the child must die at the injected crash point");

    let bytes = fs::read(&path).expect("the aborted run left a journal");
    // frame_boundaries itself asserts the abort landed on a boundary.
    let frames = frame_boundaries(&bytes).len() - 1;
    assert_eq!(frames, 3, "expected RunStart + rounds 1 and 2, found {frames} frames");

    let (resumed, _) = distributed_greedy_journaled(&graph, &objective, &g, 12, &config, &path)
        .expect("resume after the abort");
    let clean_path = temp_journal("abort-clean");
    let _guard2 = FileGuard(clean_path.clone());
    let _ = fs::remove_file(&clean_path);
    let (clean, _) = distributed_greedy_journaled(&graph, &objective, &g, 12, &config, &clean_path)
        .expect("clean run");
    assert_eq!(
        fingerprint(&resumed.selection),
        fingerprint(&clean.selection),
        "resume after a real abort diverged from the never-crashed run"
    );
}
