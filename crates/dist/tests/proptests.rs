//! Property-based tests for the distributed layer: degenerate-parameter
//! equivalence with the centralized reference, and pipeline output
//! invariants across random instances, seeds, and configurations.

use proptest::prelude::*;
use submod_core::{greedy_select, GraphBuilder, NodeId, PairwiseObjective, SimilarityGraph};
use submod_dist::{
    distributed_greedy, select_subset, BoundingConfig, DistGreedyConfig, PipelineConfig,
    SamplingStrategy,
};

/// An arbitrary small weighted instance: edge list + utilities.
fn arb_instance(max_nodes: usize) -> impl Strategy<Value = (SimilarityGraph, PairwiseObjective)> {
    (4usize..=max_nodes)
        .prop_flat_map(|n| {
            let edges =
                proptest::collection::vec((0..n as u64, 0..n as u64, 0.01f32..1.0), 0..n * 3);
            let utilities = proptest::collection::vec(0.0f32..1.0, n);
            let alpha = 0.5f64..=0.95;
            (Just(n), edges, utilities, alpha)
        })
        .prop_map(|(n, edges, utilities, alpha)| {
            let mut b = GraphBuilder::new(n);
            for (v, w, s) in edges {
                if v != w {
                    b.add_undirected(v, w, s).expect("valid edge");
                }
            }
            let graph = b.build();
            let objective = PairwiseObjective::from_alpha(alpha, utilities).expect("objective");
            (graph, objective)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ISSUE's degenerate-equivalence contract: one partition and one
    /// round *is* the centralized greedy — identical selection order and
    /// matching objective value on every instance.
    #[test]
    fn one_partition_one_round_equals_centralized(
        (graph, objective) in arb_instance(24),
        seed in 0u64..1000,
    ) {
        let n = graph.num_nodes();
        let ground: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        for k in [1, n / 3, n / 2, n] {
            prop_assume!(k >= 1);
            let config = DistGreedyConfig::new(1, 1).expect("config").seed(seed);
            let distributed =
                distributed_greedy(&graph, &objective, &ground, k, &config).expect("distributed");
            let central = greedy_select(&graph, &objective, k).expect("centralized");
            prop_assert_eq!(distributed.selection.selected(), central.selected());
            let gap = (distributed.selection.objective_value()
                - central.objective_value())
            .abs();
            prop_assert!(
                gap < 1e-6 * central.objective_value().abs().max(1.0),
                "objective gap {} on n = {}, k = {}", gap, n, k
            );
        }
    }

    /// The ISSUE's pipeline contract: `select_subset` always returns
    /// exactly `k` unique in-bounds nodes, for every configuration shape.
    #[test]
    fn select_subset_always_returns_k_unique_nodes(
        (graph, objective) in arb_instance(24),
        machines in 1usize..6,
        rounds in 1usize..5,
        seed in 0u64..1000,
        with_bounding in any::<bool>(),
        sampling_p in 0.2f64..=1.0,
        adaptive in any::<bool>(),
    ) {
        let n = graph.num_nodes();
        let k = (n / 3).max(1);
        let greedy = DistGreedyConfig::new(machines, rounds)
            .expect("config")
            .adaptive(adaptive)
            .seed(seed);
        let config = if with_bounding {
            PipelineConfig::with_bounding(
                BoundingConfig::approximate(sampling_p, SamplingStrategy::Uniform, seed)
                    .expect("bounding config"),
                greedy,
            )
        } else {
            PipelineConfig::greedy_only(greedy)
        };
        let outcome = select_subset(&graph, &objective, k, &config).expect("pipeline");
        prop_assert_eq!(outcome.selection.len(), k);
        let mut ids: Vec<u64> =
            outcome.selection.selected().iter().map(|v| v.raw()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before, "duplicate nodes in the subset");
        prop_assert!(ids.iter().all(|&id| (id as usize) < n), "out-of-bounds node");
        prop_assert_eq!(outcome.bounding.is_some(), with_bounding);
    }

    /// Multi-round pool shrinkage: round statistics are coherent and the
    /// pool never grows.
    #[test]
    fn round_stats_shrink_toward_k(
        (graph, objective) in arb_instance(30),
        machines in 1usize..5,
        rounds in 1usize..6,
        seed in 0u64..100,
    ) {
        let n = graph.num_nodes();
        let k = (n / 4).max(1);
        let ground: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
        let config = DistGreedyConfig::new(machines, rounds).expect("config").seed(seed);
        let report =
            distributed_greedy(&graph, &objective, &ground, k, &config).expect("distributed");
        prop_assert_eq!(report.rounds.len(), rounds);
        prop_assert_eq!(report.rounds[0].input_size, n);
        let mut previous_target = usize::MAX;
        for stats in &report.rounds {
            prop_assert!(stats.output_size <= stats.input_size);
            prop_assert!(stats.target <= previous_target, "Δ targets must not grow");
            prop_assert!(stats.partitions >= 1 && stats.partitions <= machines);
            previous_target = stats.target;
        }
        prop_assert_eq!(report.rounds[rounds - 1].target, k);
        prop_assert_eq!(report.selection.len(), k);
    }

    /// Bounding bookkeeping holds on arbitrary instances: partition of the
    /// ground set, sorted outputs, and a pool that can still fill `k`.
    #[test]
    fn bounding_partitions_the_ground_set(
        (graph, objective) in arb_instance(24),
        exact in any::<bool>(),
        p in 0.2f64..=1.0,
        seed in 0u64..1000,
    ) {
        let n = graph.num_nodes();
        let k = (n / 3).max(1);
        let config = if exact {
            BoundingConfig::exact()
        } else {
            BoundingConfig::approximate(p, SamplingStrategy::Uniform, seed).expect("config")
        };
        let outcome =
            submod_dist::bound_in_memory(&graph, &objective, k, &config).expect("bounding");
        prop_assert_eq!(
            outcome.included.len() + outcome.excluded_count + outcome.remaining.len(),
            n
        );
        prop_assert!(outcome.included.len() <= k);
        prop_assert_eq!(outcome.k_remaining, k - outcome.included.len());
        prop_assert!(outcome.remaining.len() >= outcome.k_remaining);
        prop_assert!(outcome.remaining.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(outcome.included.windows(2).all(|w| w[0] < w[1]));
    }
}
