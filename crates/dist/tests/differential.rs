//! Cross-driver differential suite: the in-memory and dataflow drivers
//! of the multi-round greedy and of GreeDi must select **bitwise
//! identical** subsets — same ids, same order, same objective-value bits,
//! same round statistics — on proptest-generated datasets (clustered,
//! degenerate/duplicate, adversarially partitioned, `k` near 0 and near
//! `n`), at 1, 2, and 8 pool threads.
//!
//! Kernel dispatch: nothing here calls the SIMD kernels directly, but CI
//! runs this suite under `SUBMOD_KERNELS=scalar` as well as the default
//! dispatch (the workspace test jobs), so the equality also holds with
//! the portable kernels forced.

use proptest::prelude::*;
use submod_core::{GraphBuilder, NodeId, PairwiseObjective, SimilarityGraph};
use submod_dataflow::{MemoryBudget, Pipeline};
use submod_dist::{
    distributed_greedy, distributed_greedy_dataflow, greedi, greedi_dataflow, DistGreedyConfig,
    DistGreedyReport, PartitionStyle,
};
use submod_exec::with_threads;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A clustered instance: `clusters` tight groups with strong
/// intra-cluster similarities, weak ring links between clusters, and
/// per-cluster utility bands.
fn clustered_instance(
    clusters: usize,
    per_cluster: usize,
    seed: u64,
) -> (SimilarityGraph, PairwiseObjective) {
    let n = clusters * per_cluster;
    let mut b = GraphBuilder::new(n);
    let mut state = seed ^ 0x005E_EDC1u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };
    for c in 0..clusters {
        let base = (c * per_cluster) as u64;
        for i in 0..per_cluster as u64 {
            for j in i + 1..per_cluster as u64 {
                if next() % 3 != 0 {
                    let s = 0.5 + (next() % 400) as f32 / 1000.0;
                    b.add_undirected(base + i, base + j, s).expect("edge");
                }
            }
        }
        // A weak link to the next cluster.
        let other = (((c + 1) % clusters) * per_cluster) as u64;
        if other != base {
            b.add_undirected(base, other, 0.05).expect("bridge");
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n)
        .map(|i| {
            let cluster_band = (i / per_cluster) as f32 * 0.1;
            0.2 + cluster_band + (next() % 500) as f32 / 1000.0
        })
        .collect();
    (graph, PairwiseObjective::from_alpha(0.8, utilities).expect("objective"))
}

/// A degenerate instance: heavy duplication — every point appears as a
/// clone group with identical utility and identical neighborhoods, so
/// ties are everywhere and only the deterministic id tie-break decides.
fn degenerate_instance(groups: usize, clones: usize) -> (SimilarityGraph, PairwiseObjective) {
    let n = groups * clones;
    let mut b = GraphBuilder::new(n);
    for g in 0..groups {
        let base = (g * clones) as u64;
        // Clones of a group are mutually near-identical.
        for i in 0..clones as u64 {
            for j in i + 1..clones as u64 {
                b.add_undirected(base + i, base + j, 0.75).expect("edge");
            }
        }
        // Every clone links identically to the next group's clones.
        let other = (((g + 1) % groups) * clones) as u64;
        if other != base {
            for i in 0..clones as u64 {
                for j in 0..clones as u64 {
                    b.add_undirected(base + i, other + j, 0.25).expect("edge");
                }
            }
        }
    }
    let graph = b.build();
    // Identical utilities within a group (and across half the groups).
    let utilities: Vec<f32> = (0..n).map(|i| 0.4 + ((i / clones) % 2) as f32 * 0.3).collect();
    (graph, PairwiseObjective::from_alpha(0.7, utilities).expect("objective"))
}

fn ground(n: usize) -> Vec<NodeId> {
    (0..n).map(NodeId::from_index).collect()
}

/// Everything observable about a run, bit-exact: selected ids in order,
/// the objective value's bits, and the per-round statistics.
type Fingerprint = (Vec<u64>, u64, Vec<(usize, usize, usize, usize)>);

fn fingerprint(report: &DistGreedyReport) -> Fingerprint {
    (
        report.selection.selected().iter().map(|v| v.raw()).collect(),
        report.selection.objective_value().to_bits(),
        report
            .rounds
            .iter()
            .map(|r| (r.input_size, r.target, r.partitions, r.output_size))
            .collect(),
    )
}

/// Runs both drivers at every thread count and asserts one bit-exact
/// outcome, returning it.
fn assert_drivers_identical(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
    workers: usize,
) -> Fingerprint {
    let mut outcomes = Vec::new();
    for &threads in &THREAD_COUNTS {
        let (mem, df) = with_threads(threads, || {
            let mem = distributed_greedy(graph, objective, ground, k, config).expect("in-memory");
            let pipeline = Pipeline::new(workers).expect("pipeline");
            let df = distributed_greedy_dataflow(&pipeline, graph, objective, ground, k, config)
                .expect("dataflow");
            (mem, df)
        });
        assert_eq!(
            fingerprint(&mem),
            fingerprint(&df),
            "drivers diverged at {threads} threads (machines {}, rounds {}, k {k})",
            config.machines(),
            config.rounds()
        );
        outcomes.push(fingerprint(&mem));
    }
    assert_eq!(outcomes[0], outcomes[1], "thread-count variance (1 vs 2)");
    assert_eq!(outcomes[0], outcomes[2], "thread-count variance (1 vs 8)");
    outcomes.pop().expect("three outcomes")
}

#[test]
fn degenerate_duplicate_points_tie_break_identically() {
    // All-equal gains everywhere: only the shared id tie-break decides,
    // so any divergence between the argmax order and the queue order
    // shows up immediately.
    let (graph, objective) = degenerate_instance(6, 5);
    let n = graph.num_nodes();
    for (machines, rounds) in [(1usize, 1usize), (3, 2), (5, 4)] {
        let config = DistGreedyConfig::new(machines, rounds).unwrap().seed(13);
        assert_drivers_identical(&graph, &objective, &ground(n), n / 3, &config, 3);
    }
}

#[test]
fn k_near_zero_and_near_n_are_identical() {
    let (graph, objective) = clustered_instance(4, 8, 21);
    let n = graph.num_nodes();
    for k in [0usize, 1, 2, n - 2, n - 1, n] {
        let config = DistGreedyConfig::new(4, 3).unwrap().seed(2).adaptive(true);
        let out = assert_drivers_identical(&graph, &objective, &ground(n), k, &config, 4);
        assert_eq!(out.0.len(), k, "selection size at k = {k}");
    }
}

#[test]
fn adversarial_partitions_are_identical() {
    // The §6.4 worst case: the whole reference solution forced onto
    // machine 0 in round 1, on both drivers.
    let (graph, objective) = clustered_instance(3, 10, 5);
    let n = graph.num_nodes();
    let reference = submod_core::greedy_select(&graph, &objective, 6).unwrap();
    let config = DistGreedyConfig::new(5, 4)
        .unwrap()
        .seed(3)
        .adversarial_first_round(reference.selected().to_vec());
    assert_drivers_identical(&graph, &objective, &ground(n), 6, &config, 3);
}

#[test]
fn memory_pressure_does_not_change_the_selection() {
    // A crushing 256-byte worker budget forces the engine-resident pool
    // to spill; the selection must not move by a bit.
    let (graph, objective) = clustered_instance(6, 12, 9);
    let n = graph.num_nodes();
    let config = DistGreedyConfig::new(4, 3).unwrap().seed(11);
    let mem = distributed_greedy(&graph, &objective, &ground(n), 10, &config).unwrap();
    let pipeline =
        Pipeline::builder().workers(4).memory_budget(MemoryBudget::bytes(256)).build().unwrap();
    let df = distributed_greedy_dataflow(&pipeline, &graph, &objective, &ground(n), 10, &config)
        .unwrap();
    assert_eq!(fingerprint(&mem), fingerprint(&df));
    assert!(pipeline.metrics().bytes_spilled > 0, "the budget must have forced spills");
}

#[test]
fn batched_winner_passes_are_identical_to_lockstep() {
    // The multi-winner engine passes (ISSUE 8) must select the identical
    // subset as the one-pop-per-step lockstep and the in-memory driver,
    // at every batch size and thread count.
    let (graph, objective) = clustered_instance(4, 8, 33);
    let n = graph.num_nodes();
    let lockstep_config = DistGreedyConfig::new(3, 2).unwrap().seed(19).adaptive(true);
    let lockstep =
        assert_drivers_identical(&graph, &objective, &ground(n), n / 4, &lockstep_config, 3);
    for batch in [1usize, 2, 3, 8, 64] {
        let config = lockstep_config.clone().winner_batch(batch);
        let batched = assert_drivers_identical(&graph, &objective, &ground(n), n / 4, &config, 3);
        assert_eq!(batched, lockstep, "winner_batch {batch} changed the outcome");
    }
}

#[test]
fn batched_winner_invalidation_falls_back_identically() {
    // Forced invalidation: the degenerate clone groups have 0.75-weight
    // intra-group edges and identical utilities, so the moment a clone is
    // popped every other candidate in its group drops far below the batch
    // threshold τ. With small batches nearly every replay certifies one
    // pop and invalidates the rest, exercising the fallback passes — and
    // the selection still must not move by a bit.
    let (graph, objective) = degenerate_instance(5, 6);
    let n = graph.num_nodes();
    let lockstep_config = DistGreedyConfig::new(2, 2).unwrap().seed(7);
    let lockstep =
        assert_drivers_identical(&graph, &objective, &ground(n), n / 2, &lockstep_config, 3);
    for batch in [1usize, 2, 4, 16] {
        let config = lockstep_config.clone().winner_batch(batch);
        let batched = assert_drivers_identical(&graph, &objective, &ground(n), n / 2, &config, 3);
        assert_eq!(batched, lockstep, "winner_batch {batch} changed the outcome");
    }
}

#[test]
fn greedi_drivers_are_identical_across_threads() {
    let (graph, objective) = clustered_instance(4, 9, 17);
    for style in [PartitionStyle::Arbitrary, PartitionStyle::Random] {
        let mut outcomes = Vec::new();
        for &threads in &THREAD_COUNTS {
            let (mem, df) = with_threads(threads, || {
                let mem = greedi(&graph, &objective, 7, 4, style, 3).expect("in-memory");
                let pipeline = Pipeline::new(3).expect("pipeline");
                let df = greedi_dataflow(&pipeline, &graph, &objective, 7, 4, style, 3)
                    .expect("dataflow");
                (mem, df)
            });
            let fp = |r: &submod_dist::GreediReport| {
                (
                    r.selection.selected().iter().map(|v| v.raw()).collect::<Vec<_>>(),
                    r.selection.objective_value().to_bits(),
                    r.merge.union_size,
                )
            };
            assert_eq!(fp(&mem), fp(&df), "{style:?} diverged at {threads} threads");
            outcomes.push(fp(&mem));
        }
        assert_eq!(outcomes[0], outcomes[1], "{style:?} thread variance");
        assert_eq!(outcomes[0], outcomes[2], "{style:?} thread variance");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Clustered datasets, random shapes: both drivers, every thread
    /// count, one bit-exact outcome.
    #[test]
    fn clustered_instances_are_identical(
        clusters in 2usize..5,
        per_cluster in 4usize..9,
        seed in 0u64..200,
        machines in 1usize..6,
        rounds in 1usize..4,
        adaptive in any::<bool>(),
    ) {
        let (graph, objective) = clustered_instance(clusters, per_cluster, seed);
        let n = graph.num_nodes();
        let k = (n / 4).max(1);
        let config = DistGreedyConfig::new(machines, rounds)
            .expect("config")
            .seed(seed)
            .adaptive(adaptive);
        assert_drivers_identical(&graph, &objective, &ground(n), k, &config, 3);
    }

    /// Degenerate shapes: duplicate-heavy clone groups with random clone
    /// widths — the tie-break stress test, under random configurations.
    #[test]
    fn degenerate_instances_are_identical(
        groups in 2usize..6,
        clones in 2usize..6,
        machines in 1usize..5,
        rounds in 1usize..4,
        seed in 0u64..200,
    ) {
        let (graph, objective) = degenerate_instance(groups, clones);
        let n = graph.num_nodes();
        let k = (n / 3).max(1);
        let config = DistGreedyConfig::new(machines, rounds).expect("config").seed(seed);
        assert_drivers_identical(&graph, &objective, &ground(n), k, &config, 3);
    }

    /// Batched-winner passes under random shapes, batch sizes, and
    /// configurations: bit-exact against the lockstep dataflow driver and
    /// the in-memory driver at every thread count.
    #[test]
    fn batched_instances_are_identical(
        clusters in 2usize..5,
        per_cluster in 4usize..8,
        seed in 0u64..200,
        machines in 1usize..5,
        rounds in 1usize..4,
        batch in 1usize..24,
    ) {
        let (graph, objective) = clustered_instance(clusters, per_cluster, seed);
        let n = graph.num_nodes();
        let k = (n / 4).max(1);
        let lockstep_config =
            DistGreedyConfig::new(machines, rounds).expect("config").seed(seed);
        let lockstep =
            assert_drivers_identical(&graph, &objective, &ground(n), k, &lockstep_config, 3);
        let batched_config = lockstep_config.winner_batch(batch);
        let batched =
            assert_drivers_identical(&graph, &objective, &ground(n), k, &batched_config, 3);
        prop_assert_eq!(batched, lockstep);
    }

    /// GreeDi under random shapes and both partition styles.
    #[test]
    fn greedi_instances_are_identical(
        clusters in 2usize..4,
        per_cluster in 4usize..8,
        machines in 1usize..5,
        seed in 0u64..200,
        random_style in any::<bool>(),
    ) {
        let (graph, objective) = clustered_instance(clusters, per_cluster, seed);
        let n = graph.num_nodes();
        let k = (n / 4).max(1);
        let style =
            if random_style { PartitionStyle::Random } else { PartitionStyle::Arbitrary };
        let mem = greedi(&graph, &objective, k, machines, style, seed).expect("in-memory");
        let pipeline = Pipeline::new(3).expect("pipeline");
        let df = greedi_dataflow(&pipeline, &graph, &objective, k, machines, style, seed)
            .expect("dataflow");
        prop_assert_eq!(mem.selection.selected(), df.selection.selected());
        prop_assert_eq!(
            mem.selection.objective_value().to_bits(),
            df.selection.objective_value().to_bits()
        );
        prop_assert_eq!(mem.merge, df.merge);
    }
}
