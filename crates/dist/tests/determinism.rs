//! Thread-count invariance for the distributed selection algorithms:
//! the pool may use 1, 2, or 8 workers, but every selection — in-memory
//! or dataflow, bounding or greedy — must be **bitwise identical**.
//!
//! This is the contract that makes the parallel runtime safe to adopt:
//! the greedy backends key machines deterministically and
//! `submod_exec::parallel_map` returns each step's per-machine winners
//! in machine order (machines own disjoint queues, so no wave ever
//! crosses one), and the dataflow engine sequence-tags its shuffle
//! runs — so no floating-point sum or tie-break ever depends on
//! scheduling.

use proptest::prelude::*;
use submod_core::{GraphBuilder, NodeId, PairwiseObjective, SimilarityGraph};
use submod_dataflow::Pipeline;
use submod_dist::{
    bound_dataflow, bound_in_memory, distributed_greedy, distributed_greedy_dataflow, greedi,
    select_subset, BoundingConfig, DistGreedyConfig, PartitionStyle, PipelineConfig,
    SamplingStrategy,
};
use submod_exec::with_threads;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `f` at 1, 2, and 8 pool threads and asserts identical results.
fn invariant<R: PartialEq + std::fmt::Debug>(what: &str, f: impl Fn() -> R) -> R {
    let reference = with_threads(THREAD_COUNTS[0], &f);
    for &threads in &THREAD_COUNTS[1..] {
        let got = with_threads(threads, &f);
        assert_eq!(got, reference, "{what} changed at {threads} threads");
    }
    reference
}

/// A deterministic pseudo-random instance (splitmix-style weights).
fn instance(n: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut b = GraphBuilder::new(n);
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };
    for v in 0..n as u64 {
        for _ in 0..3 {
            let w = next() % n as u64;
            if w != v {
                let s = 0.05 + (next() % 900) as f32 / 1000.0;
                b.add_undirected(v, w, s).expect("edge");
            }
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n).map(|_| 0.1 + (next() % 900) as f32 / 1000.0).collect();
    let objective = PairwiseObjective::from_alpha(0.85, utilities).expect("objective");
    (graph, objective)
}

fn ground(n: usize) -> Vec<NodeId> {
    (0..n).map(NodeId::from_index).collect()
}

/// Selections as raw ids plus the objective value's exact bits.
fn fingerprint(selection: &submod_core::Selection) -> (Vec<u64>, u64) {
    (selection.selected().iter().map(|v| v.raw()).collect(), selection.objective_value().to_bits())
}

#[test]
fn multiround_greedy_is_thread_count_invariant() {
    let (graph, objective) = instance(120, 7);
    invariant("multi-round distributed greedy", || {
        let config = DistGreedyConfig::new(6, 4).expect("config").seed(11).adaptive(true);
        let report =
            distributed_greedy(&graph, &objective, &ground(120), 18, &config).expect("run");
        (fingerprint(&report.selection), report.rounds)
    });
}

#[test]
fn dataflow_greedy_is_thread_count_invariant_and_matches_in_memory() {
    let (graph, objective) = instance(90, 3);
    invariant("dataflow distributed greedy", || {
        let pipeline = Pipeline::new(4).expect("pipeline");
        let config = DistGreedyConfig::new(5, 3).expect("config").seed(23);
        let report =
            distributed_greedy_dataflow(&pipeline, &graph, &objective, &ground(90), 12, &config)
                .expect("run");
        // Since the engine-resident rewrite the two drivers share the
        // keying and the step arithmetic: identical, not just close.
        let mem = distributed_greedy(&graph, &objective, &ground(90), 12, &config).expect("mem");
        assert_eq!(fingerprint(&mem.selection), fingerprint(&report.selection));
        assert_eq!(mem.rounds, report.rounds);
        (fingerprint(&report.selection), report.rounds)
    });
}

#[test]
fn greedi_is_thread_count_invariant_and_dataflow_matches() {
    let (graph, objective) = instance(100, 13);
    for style in [PartitionStyle::Arbitrary, PartitionStyle::Random] {
        invariant("GreeDi (both drivers)", || {
            let report = greedi(&graph, &objective, 10, 4, style, 5).expect("run");
            let pipeline = Pipeline::new(3).expect("pipeline");
            let df = submod_dist::greedi_dataflow(&pipeline, &graph, &objective, 10, 4, style, 5)
                .expect("dataflow");
            assert_eq!(fingerprint(&report.selection), fingerprint(&df.selection));
            assert_eq!(report.merge, df.merge);
            (fingerprint(&report.selection), report.merge.union_size)
        });
    }
}

#[test]
fn bounding_is_thread_count_invariant_and_dataflow_matches() {
    let (graph, objective) = instance(80, 29);
    for config in [
        BoundingConfig::exact(),
        BoundingConfig::approximate(0.5, SamplingStrategy::Uniform, 3).expect("config"),
        BoundingConfig::approximate(0.4, SamplingStrategy::Weighted, 9).expect("config"),
    ] {
        invariant("bounding (both drivers)", || {
            let mem = bound_in_memory(&graph, &objective, 12, &config).expect("in-memory");
            let pipeline = Pipeline::new(3).expect("pipeline");
            let df = bound_dataflow(&pipeline, &graph, &objective, 12, &config).expect("dataflow");
            // The two drivers must agree with each other *and* across
            // thread counts.
            assert_eq!(mem, df, "drivers diverged");
            mem
        });
    }
}

/// The engine-resident bounding path under a crushing 2 KiB worker
/// budget: spills everywhere, yet outcomes *and* the driver-side memory
/// accounting stay bitwise-identical at every thread count and match the
/// in-memory reference.
#[test]
fn engine_resident_bounding_is_invariant_under_memory_pressure() {
    let (graph, objective) = instance(80, 53);
    for config in [
        BoundingConfig::exact(),
        BoundingConfig::approximate(0.5, SamplingStrategy::Uniform, 7).expect("config"),
    ] {
        invariant("engine-resident bounding (2 KiB budget)", || {
            let (mem, _) = submod_dist::bound_in_memory_with_stats(&graph, &objective, 12, &config)
                .expect("in-memory");
            let pipeline = Pipeline::builder()
                .workers(4)
                .memory_budget(submod_dataflow::MemoryBudget::bytes(2048))
                .build()
                .expect("pipeline");
            let (df, stats) =
                submod_dist::bound_dataflow_with_stats(&pipeline, &graph, &objective, 12, &config)
                    .expect("dataflow");
            assert_eq!(mem, df, "drivers diverged under memory pressure");
            (df, stats)
        });
    }
}

#[test]
fn full_selection_pipeline_is_thread_count_invariant() {
    let (graph, objective) = instance(110, 41);
    invariant("select_subset (bounding + multi-round greedy)", || {
        let config = PipelineConfig::with_bounding(
            BoundingConfig::approximate(0.4, SamplingStrategy::Uniform, 2).expect("bounding"),
            DistGreedyConfig::new(4, 3).expect("greedy").seed(17).adaptive(true),
        );
        let outcome = select_subset(&graph, &objective, 15, &config).expect("run");
        fingerprint(&outcome.selection)
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random machines/rounds/budget: the multi-round driver must be
    /// schedule-independent on every configuration, not just the
    /// hand-picked ones above.
    #[test]
    fn random_configs_are_thread_count_invariant(
        seed in 0u64..500,
        machines in 1usize..8,
        rounds in 1usize..5,
        k in 4usize..20,
    ) {
        let (graph, objective) = instance(60, seed);
        let fingerprints: Vec<(Vec<u64>, u64)> = THREAD_COUNTS
            .iter()
            .map(|&threads| {
                with_threads(threads, || {
                    let config = DistGreedyConfig::new(machines, rounds)
                        .expect("config")
                        .seed(seed);
                    let report = distributed_greedy(&graph, &objective, &ground(60), k, &config)
                        .expect("run");
                    fingerprint(&report.selection)
                })
            })
            .collect();
        prop_assert_eq!(&fingerprints[0], &fingerprints[1]);
        prop_assert_eq!(&fingerprints[0], &fingerprints[2]);
    }

    /// Random bounding configurations: exact/approximate, both drivers,
    /// every thread count — one outcome.
    #[test]
    fn random_bounding_is_thread_count_invariant(
        seed in 0u64..500,
        k in 2usize..16,
        p in 0.2f64..0.9,
    ) {
        let (graph, objective) = instance(50, seed);
        let config = BoundingConfig::approximate(p, SamplingStrategy::Uniform, seed)
            .expect("config");
        let outcomes: Vec<_> = THREAD_COUNTS
            .iter()
            .map(|&threads| {
                with_threads(threads, || {
                    let mem = bound_in_memory(&graph, &objective, k, &config).expect("mem");
                    let pipeline = Pipeline::new(3).expect("pipeline");
                    let df = bound_dataflow(&pipeline, &graph, &objective, k, &config)
                        .expect("dataflow");
                    assert_eq!(mem, df, "drivers diverged");
                    mem
                })
            })
            .collect();
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
        prop_assert_eq!(&outcomes[0], &outcomes[2]);
    }
}
