//! Differential suite: the same instance selected over the **owned**
//! in-memory graph and over the **mmap-backed** on-disk store must produce
//! bitwise-identical results — ids, order, and objective value bits — for
//! every algorithm (bounding, multi-round greedy, GreeDi), both drivers
//! (in-memory and dataflow), at 1/2/8 pool threads.
//!
//! The CI matrix additionally runs this whole suite under
//! `SUBMOD_KERNELS=scalar` and with `SUBMOD_GRAPH_STORE=mmap` forced on,
//! so the contract holds under both kernel dispatches and when *every*
//! graph in the workspace is mapped.
//!
//! A round-trip property test (build → write → mmap → compare the raw CSR
//! arrays bit-for-bit) pins the storage layer itself; the algorithm
//! differentials then pin everything stacked on top of it.

use proptest::prelude::*;
use submod_core::{GraphBuilder, NodeId, PairwiseObjective, SimilarityGraph};
use submod_dataflow::Pipeline;
use submod_dist::{
    bound_dataflow, bound_in_memory, distributed_greedy, distributed_greedy_dataflow, greedi,
    greedi_dataflow, BoundingConfig, DistGreedyConfig, PartitionStyle, SamplingStrategy,
};
use submod_exec::with_threads;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A deterministic pseudo-random instance (splitmix-style weights).
fn instance(n: usize, seed: u64) -> (SimilarityGraph, PairwiseObjective) {
    let mut b = GraphBuilder::new(n);
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };
    for v in 0..n as u64 {
        for _ in 0..3 {
            let w = next() % n as u64;
            if w != v {
                let s = 0.05 + (next() % 900) as f32 / 1000.0;
                b.add_undirected(v, w, s).expect("edge");
            }
        }
    }
    let graph = b.build();
    let utilities: Vec<f32> = (0..n).map(|_| 0.1 + (next() % 900) as f32 / 1000.0).collect();
    let objective = PairwiseObjective::from_alpha(0.85, utilities).expect("objective");
    (graph, objective)
}

/// Writes `graph` to a temp store and reopens it memory-mapped.
fn mapped_copy(graph: &SimilarityGraph, name: &str) -> SimilarityGraph {
    let path =
        std::env::temp_dir().join(format!("submod-differential-{}-{name}.csr", std::process::id()));
    graph.write_store(&path).expect("write store");
    let mapped = SimilarityGraph::open_store(&path).expect("open store");
    let _ = std::fs::remove_file(&path); // the live mapping keeps it readable
    assert!(mapped.is_mapped());
    mapped
}

fn ground(n: usize) -> Vec<NodeId> {
    (0..n).map(NodeId::from_index).collect()
}

/// Selections as raw ids (order preserved) plus the objective value's
/// exact bits.
fn fingerprint(selection: &submod_core::Selection) -> (Vec<u64>, u64) {
    (selection.selected().iter().map(|v| v.raw()).collect(), selection.objective_value().to_bits())
}

/// Runs `f` against the owned and the mapped graph at every thread count
/// and demands one identical result.
fn differential<R: PartialEq + std::fmt::Debug>(
    what: &str,
    owned: &SimilarityGraph,
    mapped: &SimilarityGraph,
    f: impl Fn(&SimilarityGraph) -> R,
) {
    let reference = with_threads(THREAD_COUNTS[0], || f(owned));
    for &threads in &THREAD_COUNTS {
        let mem = with_threads(threads, || f(owned));
        let map = with_threads(threads, || f(mapped));
        assert_eq!(mem, reference, "{what}: owned drifted at {threads} threads");
        assert_eq!(map, reference, "{what}: mapped diverged at {threads} threads");
    }
}

#[test]
fn bounding_matches_over_the_store_both_drivers() {
    let (graph, objective) = instance(80, 29);
    let mapped = mapped_copy(&graph, "bounding");
    for config in [
        BoundingConfig::exact(),
        BoundingConfig::approximate(0.5, SamplingStrategy::Uniform, 3).expect("config"),
        BoundingConfig::approximate(0.4, SamplingStrategy::Weighted, 9).expect("config"),
    ] {
        differential("bounding", &graph, &mapped, |g| {
            let mem = bound_in_memory(g, &objective, 12, &config).expect("in-memory");
            let pipeline = Pipeline::new(3).expect("pipeline");
            let df = bound_dataflow(&pipeline, g, &objective, 12, &config).expect("dataflow");
            assert_eq!(mem, df, "drivers diverged");
            mem
        });
    }
}

#[test]
fn multiround_greedy_matches_over_the_store_both_drivers() {
    let (graph, objective) = instance(120, 7);
    let mapped = mapped_copy(&graph, "multiround");
    differential("multi-round greedy", &graph, &mapped, |g| {
        let config = DistGreedyConfig::new(6, 4).expect("config").seed(11).adaptive(true);
        let report = distributed_greedy(g, &objective, &ground(120), 18, &config).expect("run");
        let pipeline = Pipeline::new(4).expect("pipeline");
        let df = distributed_greedy_dataflow(&pipeline, g, &objective, &ground(120), 18, &config)
            .expect("dataflow");
        assert_eq!(fingerprint(&report.selection), fingerprint(&df.selection));
        assert_eq!(report.rounds, df.rounds);
        (fingerprint(&report.selection), report.rounds)
    });
}

#[test]
fn greedi_matches_over_the_store_both_drivers() {
    let (graph, objective) = instance(100, 13);
    let mapped = mapped_copy(&graph, "greedi");
    for style in [PartitionStyle::Arbitrary, PartitionStyle::Random] {
        differential("GreeDi", &graph, &mapped, |g| {
            let report = greedi(g, &objective, 10, 4, style, 5).expect("run");
            let pipeline = Pipeline::new(3).expect("pipeline");
            let df = greedi_dataflow(&pipeline, g, &objective, 10, 4, style, 5).expect("dataflow");
            assert_eq!(fingerprint(&report.selection), fingerprint(&df.selection));
            assert_eq!(report.merge, df.merge);
            (fingerprint(&report.selection), report.merge.union_size)
        });
    }
}

/// The GreeDi shards of a mapped graph are induced subgraphs of one
/// shared mapping — `Clone` must alias, not copy, the store.
#[test]
fn mapped_clones_share_the_mapping() {
    let (graph, _) = instance(60, 99);
    let mapped = mapped_copy(&graph, "clones");
    let clone = mapped.clone();
    assert_eq!(
        mapped.csr_parts().1.as_ptr(),
        clone.csr_parts().1.as_ptr(),
        "clone must alias the same mmap"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round-trip property: build a random graph, write it, map it back,
    /// and compare the raw CSR arrays **bit for bit** — offsets, neighbor
    /// ids, and the exact f32 weight bits.
    #[test]
    fn store_roundtrip_preserves_adjacency_exactly(
        seed in 0u64..10_000,
        n in 2usize..64,
    ) {
        let (graph, _) = instance(n, seed);
        let mapped = mapped_copy(&graph, &format!("roundtrip-{seed}-{n}"));
        let (o1, n1, w1) = graph.csr_parts();
        let (o2, n2, w2) = mapped.csr_parts();
        prop_assert_eq!(o1, o2);
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(w1.len(), w2.len());
        for (a, b) in w1.iter().zip(w2.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "weight bits must round-trip");
        }
        // Accessor-level equivalence on a few rows.
        for v in 0..n.min(8) {
            let v = NodeId::from_index(v);
            prop_assert_eq!(graph.neighbors(v), mapped.neighbors(v));
            prop_assert_eq!(graph.degree(v), mapped.degree(v));
        }
    }

    /// Random instances: a full selection over the mapped store equals
    /// the owned one, ids and value bits, on arbitrary configurations.
    #[test]
    fn random_selections_match_over_the_store(
        seed in 0u64..500,
        machines in 1usize..6,
        rounds in 1usize..4,
        k in 4usize..16,
    ) {
        let (graph, objective) = instance(60, seed);
        let mapped = mapped_copy(&graph, &format!("random-{seed}"));
        let config = DistGreedyConfig::new(machines, rounds).expect("config").seed(seed);
        let mem = distributed_greedy(&graph, &objective, &ground(60), k, &config).expect("owned");
        let map = distributed_greedy(&mapped, &objective, &ground(60), k, &config).expect("mapped");
        prop_assert_eq!(fingerprint(&mem.selection), fingerprint(&map.selection));
        prop_assert_eq!(mem.rounds, map.rounds);
    }
}
