//! Distributed bounding (paper §4.1–§4.3, §5): decide as much of the
//! target subset as possible *before* running any greedy algorithm.
//!
//! For the pairwise objective, two per-point bounds on the marginal
//! utility (in priority units `u − (β/α)·Σ s`) bracket every possible
//! completion:
//!
//! - `U_min(v)`: every not-yet-excluded neighbor counts against `v` — the
//!   worst case (Def. 4.1).
//! - `U_max(v)`: only definitely-included neighbors count — the best case
//!   (Def. 4.2).
//!
//! A *grow* pass includes every point whose worst case beats the k-th
//! largest best case (Lemma 4.3); a *shrink* pass excludes every point
//! whose best case loses to the k-th largest worst case (Lemma 4.4).
//! Decisions sharpen both bounds, so the passes alternate to a fixpoint.
//!
//! The approximate variant (§4.3, Theorem 4.6) estimates the k-th-largest
//! thresholds from a `p`-fraction sample instead of a global sort; the
//! sample membership is a deterministic per-node hash coin so the
//! in-memory and dataflow drivers agree bit for bit.
//!
//! # The engine-resident §5 pipeline
//!
//! [`bound_dataflow`] keeps the per-node bound table **inside the engine
//! for its whole life**: the included/excluded status sets are broadcast
//! to workers as bitset side-inputs ([`submod_dataflow::BroadcastSet`]),
//! each worker derives `U_min`/`U_max`/`U_exp` for its shard of the
//! undecided points, the threshold sample is an engine-side filter over
//! that sharded table, thresholds come from the engine's O(1)-memory
//! distributed `kth_largest`, and the include/exclude candidate filters
//! run as engine transforms too. Only the **candidates** — the points
//! that beat a threshold — ever reach the driver, so per-pass driver
//! allocations are `O(candidates)`, not `O(undecided)`; the persistent
//! driver state is the `O(k + undecided)` decision bookkeeping the §5
//! design budgets for. [`BoundingStats`] meters both so tests can assert
//! the claim. Both drivers share the same decision code and the same
//! coins, so their outcomes are **identical** — the larger-than-memory
//! suite asserts equality under crushing budgets.

use crate::config::BoundingMode;
use crate::{BoundingConfig, DistError, SamplingStrategy};
use submod_core::{NodeId, NodeSet, PairwiseObjective, SimilarityGraph};
use submod_dataflow::{PCollection, Pipeline};
use submod_journal::Record;

/// The result of a bounding run.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundingOutcome {
    /// Points proven to belong to the subset, ascending by id.
    pub included: Vec<NodeId>,
    /// Number of points proven to be outside the subset.
    pub excluded_count: usize,
    /// Undecided points (the greedy phase's ground set), ascending by id.
    pub remaining: Vec<NodeId>,
    /// Number of grow passes executed.
    pub grow_rounds: usize,
    /// Number of shrink passes executed.
    pub shrink_rounds: usize,
    /// Budget still open after bounding: `k − |included|`.
    pub k_remaining: usize,
}

impl BoundingOutcome {
    /// Returns `true` when bounding decided the entire subset.
    pub fn is_complete(&self) -> bool {
        self.k_remaining == 0
    }

    /// Fraction of an `n`-point ground set that was decided either way.
    pub fn decision_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        (self.included.len() + self.excluded_count) as f64 / n as f64
    }
}

/// Driver-side memory accounting for one bounding run — the §5
/// larger-than-memory claim as numbers instead of prose.
///
/// The *driver* is the process orchestrating the passes. Its persistent
/// state (`peak_state_bytes`) is the included/excluded bitsets plus the
/// undecided list: `O(k + undecided)`. What distinguishes the drivers is
/// `peak_pass_bytes`, the largest *per-pass* materialization: the
/// in-memory driver builds the full bound table (`O(undecided)` per
/// pass), while the engine-resident dataflow driver only ever collects
/// the candidate lists (`O(candidates)`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundingStats {
    /// Grow + shrink passes executed.
    pub passes: usize,
    /// Peak bytes of per-pass driver-side materializations (bound tables,
    /// samples, and candidate lists for the in-memory driver; candidate
    /// lists alone for the dataflow driver).
    pub peak_pass_bytes: u64,
    /// Largest candidate list any single pass handed the decision code.
    pub peak_candidates: usize,
    /// Peak bytes of persistent driver state: the included/excluded
    /// bitsets plus the undecided id list.
    pub peak_state_bytes: u64,
}

impl BoundingStats {
    fn observe_pass(&mut self, pass_bytes: u64, candidates: usize, state_bytes: u64) {
        self.passes += 1;
        self.peak_pass_bytes = self.peak_pass_bytes.max(pass_bytes);
        self.peak_candidates = self.peak_candidates.max(candidates);
        self.peak_state_bytes = self.peak_state_bytes.max(state_bytes);
        // Mirror into the metrics registry — the workspace-wide source of
        // truth `--report-memory` reads; the struct keeps its exact
        // per-run semantics for the driver-contrast tests.
        submod_obs::counter!("bounding.passes").incr();
        submod_obs::gauge!("bounding.peak_pass_bytes").fetch_max(pass_bytes);
        submod_obs::gauge!("bounding.peak_candidates").fetch_max(candidates as u64);
        submod_obs::gauge!("bounding.peak_state_bytes").fetch_max(state_bytes);
        submod_obs::histogram!("bounding.pass_candidates").record(candidates as u64);
    }
}

/// The derived per-point bound values for one pass (Defs. 4.1, 4.2, 4.5):
///
/// - `umin = u − (β/α)·min_penalty` (every non-excluded neighbor counts),
/// - `umax = u − (β/α)·max_penalty` (only included neighbors count),
/// - `uexp = u − (β/α)·(max_penalty + q·(min_penalty − max_penalty))`
///   with `q = k_rem/|undecided|` — the *expected* utility under a
///   uniform-random completion, the statistic the approximate shrink
///   decides on.
#[derive(Clone, Copy, Debug)]
struct Derived {
    node: u64,
    umin: f64,
    umax: f64,
    uexp: f64,
}

/// Ratio of undecided points the approximate shrink keeps per open
/// budget slot: exclusions cut the pool to ≈ `SAFETY_POOL_FACTOR · k`
/// expected-best candidates, leaving the greedy phase a margin for the
/// expectation being wrong (Theorem 4.6 prices the residual risk).
const SAFETY_POOL_FACTOR: usize = 3;

/// Derives the §4 bounds of one undecided point from the status sets.
/// **The** shared kernel: both drivers run exactly this arithmetic —
/// neighbor contributions accumulate in adjacency order on both sides —
/// so every `f64` matches bit for bit.
fn derive_node<FInc, FExc>(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    node: u64,
    q: f64,
    included: FInc,
    not_excluded: FExc,
) -> Derived
where
    FInc: Fn(u64) -> bool,
    FExc: Fn(u64) -> bool,
{
    let mut min_penalty = 0.0f64;
    let mut max_penalty = 0.0f64;
    for (w, s) in graph.edges(NodeId::new(node)) {
        if not_excluded(w.raw()) {
            min_penalty += f64::from(s);
        }
        if included(w.raw()) {
            max_penalty += f64::from(s);
        }
    }
    let ratio = objective.ratio();
    let u = objective.utility(NodeId::new(node));
    Derived {
        node,
        umin: u - ratio * min_penalty,
        umax: u - ratio * max_penalty,
        uexp: u - ratio * (max_penalty + q * (min_penalty - max_penalty)),
    }
}

/// Mutable bounding state shared by both drivers.
struct State {
    included: NodeSet,
    excluded: NodeSet,
    k: usize,
}

impl State {
    fn k_remaining(&self) -> usize {
        self.k - self.included.len()
    }

    fn undecided(&self, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(NodeId::from_index)
            .filter(|&v| !self.included.contains(v) && !self.excluded.contains(v))
            .collect()
    }

    /// Persistent driver bytes: two bitsets plus the undecided id list.
    fn state_bytes(&self, undecided_len: usize) -> u64 {
        let words = self.included.words().len() + self.excluded.words().len();
        (words * size_of::<u64>() + undecided_len * size_of::<u64>()) as u64
    }
}

/// splitmix64 over (seed, salt, node): the deterministic sampling coin in
/// `[0, 1)`. Order-independent, so the dataflow driver reproduces it.
/// Delegates to the engine's canonical coin so the dataflow `sample`
/// operators and the bounding sample flip identical bits.
fn sample_coin(seed: u64, salt: u64, node: u64) -> f64 {
    submod_dataflow::sample_coin(seed ^ salt.rotate_left(17), node)
}

/// Whether `node` is in the threshold-estimation sample of this pass.
fn in_sample(
    mode: &BoundingMode,
    pass: u64,
    phase: u64,
    node: u64,
    utility: f64,
    mean_utility: f64,
) -> bool {
    match *mode {
        BoundingMode::Exact => true,
        BoundingMode::Approximate { p, strategy, seed } => {
            let probability = match strategy {
                SamplingStrategy::Uniform => p,
                SamplingStrategy::Weighted => {
                    // Utility-proportional inclusion, normalized so the
                    // expected sample size stays ≈ p·n.
                    if mean_utility > 0.0 {
                        (p * utility / mean_utility).clamp(0.0, 1.0)
                    } else {
                        p
                    }
                }
            };
            sample_coin(seed, pass << 8 | phase, node) < probability
        }
    }
}

/// Index (1-based) of the order statistic used as the threshold: the
/// `k`-th largest for exact bounding, its unbiased `p`-sample analogue
/// `⌈p·k⌉` for approximate bounding.
fn threshold_index(mode: &BoundingMode, k_effective: usize, sample_len: usize) -> usize {
    let index = match *mode {
        BoundingMode::Exact => k_effective,
        BoundingMode::Approximate { p, .. } => ((p * k_effective as f64).ceil() as usize).max(1),
    };
    index.min(sample_len)
}

/// The `index`-th largest value of `values` (1-based), or `None` when the
/// sample is empty. Pure selection — both drivers feed it identical f64s.
fn kth_largest_in_memory(values: &mut [f64], index: usize) -> Option<f64> {
    if values.is_empty() || index == 0 {
        return None;
    }
    let index = index.min(values.len());
    values.sort_by(|a, b| b.total_cmp(a));
    Some(values[index - 1])
}

/// One grow or shrink pass, parameterized over everything that differs
/// between the two directions. `candidates` are the `(node, statistic)`
/// pairs that beat the pass threshold — the only per-pass data a backend
/// may hand the driver.
#[derive(Clone, Copy, Debug)]
struct PassSpec {
    /// Pass counter (salts the sampling coin).
    pass: u64,
    /// Coin salt: 0 = grow, 1 = shrink.
    phase: u64,
    /// Budget the threshold index is computed from (`k_rem` for grow and
    /// exact shrink, `SAFETY_POOL_FACTOR·k_rem` for approximate shrink).
    k_effective: usize,
    /// Completion ratio `k_rem / |undecided|` for `U_exp`.
    q: f64,
    /// Exact (lemma-grade) or approximate (expectation-grade) decisions.
    exact: bool,
    /// Grow pass (`true`) or shrink pass (`false`).
    grow: bool,
}

impl PassSpec {
    /// The statistic sampled for threshold estimation.
    fn sample_stat(&self, d: &Derived) -> f64 {
        if self.grow {
            // Grow thresholds on the best case U_max (Lemma 4.3).
            d.umax
        } else if self.exact {
            // Exact shrink thresholds on the worst case U_min (Lemma 4.4).
            d.umin
        } else {
            // Approximate shrink thresholds on the expectation (Def. 4.5).
            d.uexp
        }
    }

    /// The statistic a candidate is judged by.
    fn candidate_stat(&self, d: &Derived) -> f64 {
        if self.grow {
            d.umin
        } else if self.exact {
            d.umax
        } else {
            d.uexp
        }
    }

    /// Whether a point with candidate statistic `stat` beats `threshold`.
    fn beats(&self, stat: f64, threshold: f64) -> bool {
        if self.grow {
            stat > threshold
        } else {
            stat < threshold
        }
    }
}

/// Grow decision (Lemma 4.3): candidates best-first, capped at the open
/// budget. Shared verbatim by both drivers — outcome equality follows.
fn decide_grow(mut candidates: Vec<(u64, f64)>, k_remaining: usize) -> Vec<u64> {
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    candidates.into_iter().take(k_remaining).map(|(node, _)| node).collect()
}

/// Shrink decision, worst candidates first, never shrinking the pool
/// below the open budget.
///
/// Exact mode is Lemma 4.4 verbatim: a point is excluded when its *best*
/// case `U_max` loses to the k-th largest *worst* case `U_min`. The
/// approximate mode decides on the expected utility `U_exp` (Def. 4.5)
/// against the sampled `⌈SAFETY·k⌉`-th largest `U_exp`: expectation-level
/// cuts are what let approximate bounding discard the bulk of a
/// near-duplicate-heavy ground set (§6.3) where the worst-case lemma
/// stalls, at the probabilistic price Theorem 4.6 quantifies.
fn decide_shrink(mut candidates: Vec<(u64, f64)>, max_excludable: usize) -> Vec<u64> {
    candidates.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    candidates.into_iter().take(max_excludable).map(|(node, _)| node).collect()
}

/// What a backend hands the driver after one pass: the candidate list and
/// the bytes the pass materialized driver-side to produce it.
struct PassResult {
    candidates: Vec<(u64, f64)>,
    driver_bytes: u64,
}

/// A bounding execution backend: everything pass-specific that differs
/// between the in-memory reference and the dataflow engine. The decision
/// code downstream is shared, which is what guarantees identical
/// outcomes.
trait PassBackend {
    fn run_pass(
        &mut self,
        state: &State,
        undecided: &[NodeId],
        spec: PassSpec,
    ) -> Result<PassResult, DistError>;
}

/// The in-memory reference: materializes the full bound table on the
/// driver every pass (`O(undecided)` driver bytes — the baseline the
/// engine-resident driver is measured against).
struct InMemoryBackend<'a> {
    graph: &'a SimilarityGraph,
    objective: &'a PairwiseObjective,
    mode: BoundingMode,
    mean_utility: f64,
}

impl PassBackend for InMemoryBackend<'_> {
    fn run_pass(
        &mut self,
        state: &State,
        undecided: &[NodeId],
        spec: PassSpec,
    ) -> Result<PassResult, DistError> {
        let derived: Vec<Derived> = undecided
            .iter()
            .map(|&v| {
                derive_node(
                    self.graph,
                    self.objective,
                    v.raw(),
                    spec.q,
                    |w| state.included.contains(NodeId::new(w)),
                    |w| !state.excluded.contains(NodeId::new(w)),
                )
            })
            .collect();
        let mut sample: Vec<f64> = derived
            .iter()
            .filter(|d| {
                in_sample(
                    &self.mode,
                    spec.pass,
                    spec.phase,
                    d.node,
                    self.objective.utility(NodeId::new(d.node)),
                    self.mean_utility,
                )
            })
            .map(|d| spec.sample_stat(d))
            .collect();
        let index = threshold_index(&self.mode, spec.k_effective, sample.len());
        let candidates: Vec<(u64, f64)> = match kth_largest_in_memory(&mut sample, index) {
            Some(threshold) => derived
                .iter()
                .filter(|d| spec.beats(spec.candidate_stat(d), threshold))
                .map(|d| (d.node, spec.candidate_stat(d)))
                .collect(),
            None => Vec::new(),
        };
        let driver_bytes = (derived.len() * size_of::<Derived>()
            + sample.len() * size_of::<f64>()
            + candidates.len() * size_of::<(u64, f64)>()) as u64;
        Ok(PassResult { candidates, driver_bytes })
    }
}

/// The engine-resident driver (§5): the bound table is born, lives, and
/// dies inside the dataflow engine. Per pass it
///
/// 1. broadcasts the included/excluded bitsets as side-inputs,
/// 2. streams the undecided ids into the engine
///    ([`Pipeline::generate`], so even the source respects worker
///    budgets) and derives the bounds shard-locally,
/// 3. filters the threshold sample engine-side with the shared coin and
///    selects the threshold with the distributed `kth_largest`,
/// 4. filters the candidates engine-side,
///
/// and collects **only the candidates** — per-pass driver bytes are
/// `O(candidates)`, never `O(undecided)`.
struct DataflowBackend<'a> {
    pipeline: &'a Pipeline,
    graph: &'a SimilarityGraph,
    objective: &'a PairwiseObjective,
    mode: BoundingMode,
    mean_utility: f64,
}

/// One engine-resident bound-table row:
/// `(node, umin, umax, uexp, utility)`.
type BoundRow = (u64, f64, f64, f64, f64);

impl DataflowBackend<'_> {
    /// The engine-resident bound table for one pass. Rows carry the
    /// node's utility as a fifth column so the downstream sample and
    /// candidate filters are capture-free (and hence fuse onto the
    /// table): `(node, umin, umax, uexp, utility)`.
    fn derived_table(
        &self,
        state: &State,
        undecided: &[NodeId],
        spec: PassSpec,
    ) -> Result<PCollection<BoundRow>, DistError> {
        let n = self.graph.num_nodes();
        let included = self.pipeline.broadcast_words(state.included.words().to_vec(), n);
        let excluded = self.pipeline.broadcast_words(state.excluded.words().to_vec(), n);
        let graph = self.graph;
        let objective = self.objective;
        let source =
            self.pipeline.generate(undecided.len() as u64, move |i| undecided[i as usize].raw())?;
        // Eager: `derive_node` borrows the graph and objective, and the
        // table is the pass's materialization point anyway.
        let table = source.map_eager(move |v| {
            let d = derive_node(
                graph,
                objective,
                v,
                spec.q,
                |w| included.contains(w),
                |w| !excluded.contains(w),
            );
            (d.node, d.umin, d.umax, d.uexp, objective.utility(NodeId::new(d.node)))
        })?;
        Ok(table)
    }
}

impl PassBackend for DataflowBackend<'_> {
    fn run_pass(
        &mut self,
        state: &State,
        undecided: &[NodeId],
        spec: PassSpec,
    ) -> Result<PassResult, DistError> {
        let table = self.derived_table(state, undecided, spec)?;
        let unpack = |(node, umin, umax, uexp, _u): &(u64, f64, f64, f64, f64)| Derived {
            node: *node,
            umin: *umin,
            umax: *umax,
            uexp: *uexp,
        };

        // Threshold sample: an engine-side filter with the shared coin.
        // The row carries its utility, so the filter captures only `Copy`
        // values and fuses onto the table.
        let mode = self.mode;
        let mean_utility = self.mean_utility;
        let sample = table
            .filter(move |r| in_sample(&mode, spec.pass, spec.phase, r.0, r.4, mean_utility))?;
        let stats = sample.map(move |r| spec.sample_stat(&unpack(&r)))?;
        let sample_len = stats.count()? as usize;
        let index = threshold_index(&self.mode, spec.k_effective, sample_len);
        if index == 0 || sample_len == 0 {
            return Ok(PassResult { candidates: Vec::new(), driver_bytes: 0 });
        }
        // The threshold is an order statistic of the sampled statistic;
        // the engine's `kth_largest` (bit-bisection over counting passes,
        // O(1) worker memory) lands exactly on the attained element, so
        // the value matches the in-memory sort bit for bit.
        let threshold = stats.kth_largest(index as u64)?;

        // Candidate filter: engine-side; only survivors reach the driver.
        let candidates: Vec<(u64, f64)> = table
            .filter(move |r| {
                let d = unpack(r);
                spec.beats(spec.candidate_stat(&d), threshold)
            })?
            .map(move |r| {
                let d = unpack(&r);
                (d.node, spec.candidate_stat(&d))
            })?
            .collect()?;
        let driver_bytes = (candidates.len() * size_of::<(u64, f64)>()) as u64;
        Ok(PassResult { candidates, driver_bytes })
    }
}

fn validate(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
) -> Result<(), DistError> {
    if objective.num_nodes() != graph.num_nodes() {
        return Err(submod_core::CoreError::UtilityLengthMismatch {
            utilities: objective.num_nodes(),
            num_nodes: graph.num_nodes(),
        }
        .into());
    }
    if k > graph.num_nodes() {
        return Err(submod_core::CoreError::BudgetTooLarge {
            budget: k,
            available: graph.num_nodes(),
        }
        .into());
    }
    Ok(())
}

fn mean_utility(objective: &PairwiseObjective, n: usize) -> f64 {
    objective.utilities().iter().map(|&u| f64::from(u)).sum::<f64>() / (n.max(1)) as f64
}

/// Runs bounding entirely in memory.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph or `k`
/// exceeds the ground set.
pub fn bound_in_memory(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &BoundingConfig,
) -> Result<BoundingOutcome, DistError> {
    bound_in_memory_with_stats(graph, objective, k, config).map(|(outcome, _)| outcome)
}

/// [`bound_in_memory`] plus the driver-side memory accounting.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph or `k`
/// exceeds the ground set.
pub fn bound_in_memory_with_stats(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &BoundingConfig,
) -> Result<(BoundingOutcome, BoundingStats), DistError> {
    bound_in_memory_with_journal(graph, objective, k, config, None)
}

/// [`bound_in_memory_with_stats`] with an optional run journal — the
/// crate-internal seam the journaled pipeline threads through.
pub(crate) fn bound_in_memory_with_journal(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &BoundingConfig,
    journal: Option<&mut crate::journal::RunJournal>,
) -> Result<(BoundingOutcome, BoundingStats), DistError> {
    validate(graph, objective, k)?;
    let mut backend = InMemoryBackend {
        graph,
        objective,
        mode: config.mode,
        mean_utility: mean_utility(objective, graph.num_nodes()),
    };
    run_bounding(graph, k, config, &mut backend, journal)
}

/// Runs bounding on the dataflow engine with the bound table
/// engine-resident end to end (see the module docs): broadcast status
/// side-inputs, shard-local derive, engine-side sampling and candidate
/// filters, distributed threshold selection, and every worker buffer held
/// to the pipeline's memory budget.
///
/// The outcome is identical to [`bound_in_memory`] by construction.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph, `k`
/// exceeds the ground set, or spill I/O fails.
pub fn bound_dataflow(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &BoundingConfig,
) -> Result<BoundingOutcome, DistError> {
    bound_dataflow_with_stats(pipeline, graph, objective, k, config).map(|(outcome, _)| outcome)
}

/// [`bound_dataflow`] plus the driver-side memory accounting that proves
/// the bound table stayed engine-resident: `peak_pass_bytes` covers only
/// the collected candidate lists.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph, `k`
/// exceeds the ground set, or spill I/O fails.
pub fn bound_dataflow_with_stats(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &BoundingConfig,
) -> Result<(BoundingOutcome, BoundingStats), DistError> {
    validate(graph, objective, k)?;
    let mut backend = DataflowBackend {
        pipeline,
        graph,
        objective,
        mode: config.mode,
        mean_utility: mean_utility(objective, graph.num_nodes()),
    };
    run_bounding(graph, k, config, &mut backend, None)
}

/// Rebuilds a [`NodeSet`] from the journal's dense word representation.
fn nodeset_from_words(n: usize, words: &[u64]) -> NodeSet {
    let mut set = NodeSet::new(n);
    for (index, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            set.insert(NodeId::from_index(index * 64 + bit));
            bits &= bits - 1;
        }
    }
    set
}

/// The shared grow/shrink driver. The backend produces per-pass candidate
/// lists; everything downstream — thresholds already applied, the sorted
/// capped decisions, the state updates — is common code, which is what
/// guarantees in-memory/dataflow equality.
///
/// With a journal, every completed grow+shrink cycle is committed
/// (append + fsync) and a final [`Record::BoundingDone`] captures the
/// post-processed outcome. On resume, replayed cycles restore the
/// decision state, counters, and cumulative stats; a replayed
/// `BoundingDone` short-circuits the whole phase.
fn run_bounding(
    graph: &SimilarityGraph,
    k: usize,
    config: &BoundingConfig,
    backend: &mut dyn PassBackend,
    mut journal: Option<&mut crate::journal::RunJournal>,
) -> Result<(BoundingOutcome, BoundingStats), DistError> {
    let _span = submod_obs::span("bound.run");
    let n = graph.num_nodes();
    let mut state = State { included: NodeSet::new(n), excluded: NodeSet::new(n), k };
    let mut stats = BoundingStats::default();
    let mut grow_rounds = 0usize;
    let mut shrink_rounds = 0usize;
    let mut pass = 0u64;
    let exact = config.is_exact();

    // Replay: restore the last committed cycle boundary. A cycle whose
    // record says `changed == false` is the fixpoint — an uninterrupted
    // run stops right after it, so the live loop is skipped entirely.
    let mut start_cycle = 0usize;
    let mut at_fixpoint = false;
    if let Some(j) = journal.as_deref_mut() {
        while let Some(Record::BoundingCycle {
            cycle,
            changed,
            grow_rounds: grow,
            shrink_rounds: shrink,
            pass: pass_count,
            stats: snapshot,
            included,
            excluded_words,
        }) = j.take_bounding_cycle()
        {
            state.included = NodeSet::from_members(n, included.iter().map(|&v| NodeId::new(v)));
            state.excluded = nodeset_from_words(n, &excluded_words);
            grow_rounds = grow as usize;
            shrink_rounds = shrink as usize;
            pass = pass_count;
            stats = crate::journal::restore_bounding(&snapshot);
            start_cycle = cycle as usize;
            at_fixpoint = !changed;
        }
        if let Some(Record::BoundingDone {
            grow_rounds: grow,
            shrink_rounds: shrink,
            k_remaining,
            included,
            excluded_words,
        }) = j.take_bounding_done()
        {
            // The previous attempt finished bounding: the record already
            // carries the post-processed final state.
            let done = State {
                included: NodeSet::from_members(n, included.iter().map(|&v| NodeId::new(v))),
                excluded: nodeset_from_words(n, &excluded_words),
                k,
            };
            let remaining = done.undecided(n);
            return Ok((
                BoundingOutcome {
                    included: included.iter().map(|&v| NodeId::new(v)).collect(),
                    excluded_count: done.excluded.len(),
                    remaining,
                    grow_rounds: grow as usize,
                    shrink_rounds: shrink as usize,
                    k_remaining: k_remaining as usize,
                },
                stats,
            ));
        }
    }

    for cycle in start_cycle..config.max_cycles {
        if at_fixpoint {
            break;
        }
        if state.k_remaining() == 0 {
            break;
        }
        let mut changed = false;

        // --- Grow pass (Lemma 4.3). ---
        let undecided = state.undecided(n);
        if undecided.is_empty() {
            break;
        }
        grow_rounds += 1;
        pass += 1;
        let k_rem = state.k_remaining();
        let spec = PassSpec {
            pass,
            phase: 0,
            k_effective: k_rem,
            q: completion_ratio(k_rem, undecided.len()),
            exact,
            grow: true,
        };
        let result = {
            let _pass_span = submod_obs::span("bound.pass.grow");
            backend.run_pass(&state, &undecided, spec)?
        };
        stats.observe_pass(
            result.driver_bytes,
            result.candidates.len(),
            state.state_bytes(undecided.len()),
        );
        for node in decide_grow(result.candidates, k_rem) {
            state.included.insert(NodeId::new(node));
            changed = true;
        }
        if state.k_remaining() == 0 {
            break;
        }

        // --- Shrink pass (Lemma 4.4 exactly; Def. 4.5 under sampling). ---
        let undecided = state.undecided(n);
        if undecided.is_empty() {
            break;
        }
        shrink_rounds += 1;
        pass += 1;
        let k_rem = state.k_remaining();
        // The exact threshold is the k-th largest worst case; the
        // approximate one keeps a SAFETY_POOL_FACTOR·k expected-best pool.
        let k_effective = if exact { k_rem } else { SAFETY_POOL_FACTOR * k_rem };
        let spec = PassSpec {
            pass,
            phase: 1,
            k_effective,
            q: completion_ratio(k_rem, undecided.len()),
            exact,
            grow: false,
        };
        let result = {
            let _pass_span = submod_obs::span("bound.pass.shrink");
            backend.run_pass(&state, &undecided, spec)?
        };
        stats.observe_pass(
            result.driver_bytes,
            result.candidates.len(),
            state.state_bytes(undecided.len()),
        );
        let max_excludable = undecided.len().saturating_sub(k_rem);
        for node in decide_shrink(result.candidates, max_excludable) {
            state.excluded.insert(NodeId::new(node));
            changed = true;
        }

        if let Some(j) = journal.as_deref_mut() {
            j.append_sync(&Record::BoundingCycle {
                cycle: (cycle + 1) as u64,
                changed,
                grow_rounds: grow_rounds as u64,
                shrink_rounds: shrink_rounds as u64,
                pass,
                stats: crate::journal::snapshot_bounding(&stats),
                included: state.included.iter().map(|v| v.raw()).collect(),
                excluded_words: state.excluded.words().to_vec(),
            })?;
            submod_obs::faults::maybe_crash_after_round((cycle + 1) as u64);
        }

        if !changed {
            break;
        }
    }

    // A complete bounding (budget fully included) has implicitly decided
    // every still-open point *out* of the subset.
    if state.k_remaining() == 0 {
        for v in state.undecided(n) {
            state.excluded.insert(v);
        }
    }
    let included: Vec<NodeId> = state.included.iter().collect();
    let remaining = state.undecided(n);
    let k_remaining = state.k_remaining();
    if let Some(j) = journal {
        j.append_sync(&Record::BoundingDone {
            grow_rounds: grow_rounds as u64,
            shrink_rounds: shrink_rounds as u64,
            k_remaining: k_remaining as u64,
            included: included.iter().map(|v| v.raw()).collect(),
            excluded_words: state.excluded.words().to_vec(),
        })?;
    }
    Ok((
        BoundingOutcome {
            excluded_count: state.excluded.len(),
            included,
            remaining,
            grow_rounds,
            shrink_rounds,
            k_remaining,
        },
        stats,
    ))
}

/// The uniform-completion ratio `q = k_rem / |undecided|` of Def. 4.5.
fn completion_ratio(k_remaining: usize, undecided_len: usize) -> f64 {
    if undecided_len == 0 {
        0.0
    } else {
        (k_remaining as f64 / undecided_len as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use submod_core::GraphBuilder;

    fn figure1_instance() -> (SimilarityGraph, PairwiseObjective) {
        // The paper's Figure 1 layout: two similar pairs plus two loners.
        let mut b = GraphBuilder::new(6);
        b.add_undirected(0, 1, 0.8).unwrap();
        b.add_undirected(2, 3, 0.7).unwrap();
        b.add_undirected(1, 2, 0.3).unwrap();
        let graph = b.build();
        let objective =
            PairwiseObjective::from_alpha(0.7, vec![0.9, 0.6, 0.8, 0.5, 0.75, 0.1]).unwrap();
        (graph, objective)
    }

    #[test]
    fn exact_bounding_is_sound_on_figure_1() {
        let (graph, objective) = figure1_instance();
        let outcome = bound_in_memory(&graph, &objective, 3, &BoundingConfig::exact()).unwrap();
        // Sound inclusions must appear in the centralized greedy solution.
        let central = submod_core::greedy_select(&graph, &objective, 3).unwrap();
        for v in &outcome.included {
            assert!(central.selected().contains(v), "included {v} not in greedy solution");
        }
        // Sound exclusions must not.
        let undecided: std::collections::HashSet<u64> =
            outcome.remaining.iter().map(|v| v.raw()).collect();
        for v in central.selected() {
            assert!(
                outcome.included.contains(v) || undecided.contains(&v.raw()),
                "greedy pick {v} was excluded"
            );
        }
        assert_eq!(outcome.k_remaining, 3 - outcome.included.len());
        assert!(outcome.decision_fraction(6) > 0.0);
    }

    #[test]
    fn bookkeeping_adds_up() {
        let (graph, objective) = figure1_instance();
        let outcome = bound_in_memory(&graph, &objective, 3, &BoundingConfig::exact()).unwrap();
        assert_eq!(
            outcome.included.len() + outcome.excluded_count + outcome.remaining.len(),
            graph.num_nodes()
        );
        assert!(outcome.remaining.len() >= outcome.k_remaining);
        assert!(outcome.remaining.windows(2).all(|w| w[0] < w[1]), "remaining sorted");
        assert!(outcome.included.windows(2).all(|w| w[0] < w[1]), "included sorted");
    }

    #[test]
    fn approximate_bounding_is_deterministic_per_seed() {
        let (graph, objective) = figure1_instance();
        let config = BoundingConfig::approximate(0.6, SamplingStrategy::Uniform, 5).unwrap();
        let a = bound_in_memory(&graph, &objective, 3, &config).unwrap();
        let b = bound_in_memory(&graph, &objective, 3, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_and_uniform_sampling_both_run() {
        let (graph, objective) = figure1_instance();
        for strategy in [SamplingStrategy::Uniform, SamplingStrategy::Weighted] {
            let config = BoundingConfig::approximate(0.5, strategy, 7).unwrap();
            let outcome = bound_in_memory(&graph, &objective, 3, &config).unwrap();
            assert!(outcome.remaining.len() >= outcome.k_remaining);
        }
    }

    #[test]
    fn dataflow_matches_in_memory_exactly() {
        let (graph, objective) = figure1_instance();
        let pipeline = Pipeline::new(3).unwrap();
        for config in [
            BoundingConfig::exact(),
            BoundingConfig::approximate(0.5, SamplingStrategy::Uniform, 3).unwrap(),
            BoundingConfig::approximate(0.5, SamplingStrategy::Weighted, 3).unwrap(),
        ] {
            let mem = bound_in_memory(&graph, &objective, 3, &config).unwrap();
            let df = bound_dataflow(&pipeline, &graph, &objective, 3, &config).unwrap();
            assert_eq!(mem, df);
        }
    }

    #[test]
    fn dataflow_driver_collects_only_candidates() {
        let (graph, objective) = figure1_instance();
        let pipeline = Pipeline::new(3).unwrap();
        let config = BoundingConfig::exact();
        let (mem, mem_stats) = bound_in_memory_with_stats(&graph, &objective, 3, &config).unwrap();
        let (df, df_stats) =
            bound_dataflow_with_stats(&pipeline, &graph, &objective, 3, &config).unwrap();
        assert_eq!(mem, df);
        assert_eq!(mem_stats.passes, df_stats.passes);
        assert_eq!(mem_stats.peak_candidates, df_stats.peak_candidates);
        // The in-memory driver pays for the full table; the dataflow
        // driver only for candidate lists.
        assert!(mem_stats.peak_pass_bytes > df_stats.peak_pass_bytes);
        assert_eq!(
            df_stats.peak_pass_bytes,
            (df_stats.peak_candidates * size_of::<(u64, f64)>()) as u64
        );
        // The status side-inputs were broadcast and metered.
        assert!(pipeline.metrics().bytes_broadcast > 0);
    }

    #[test]
    fn validation_errors() {
        let (graph, objective) = figure1_instance();
        assert!(bound_in_memory(&graph, &objective, 7, &BoundingConfig::exact()).is_err());
        let wrong = PairwiseObjective::from_alpha(0.7, vec![1.0; 4]).unwrap();
        assert!(bound_in_memory(&graph, &wrong, 2, &BoundingConfig::exact()).is_err());
    }

    #[test]
    fn zero_budget_is_complete_immediately() {
        let (graph, objective) = figure1_instance();
        let outcome = bound_in_memory(&graph, &objective, 0, &BoundingConfig::exact()).unwrap();
        assert!(outcome.is_complete());
        assert!(outcome.included.is_empty());
    }
}
