//! Distributed bounding (paper §4.1–§4.3, §5): decide as much of the
//! target subset as possible *before* running any greedy algorithm.
//!
//! For the pairwise objective, two per-point bounds on the marginal
//! utility (in priority units `u − (β/α)·Σ s`) bracket every possible
//! completion:
//!
//! - `U_min(v)`: every not-yet-excluded neighbor counts against `v` — the
//!   worst case (Def. 4.1).
//! - `U_max(v)`: only definitely-included neighbors count — the best case
//!   (Def. 4.2).
//!
//! A *grow* pass includes every point whose worst case beats the k-th
//! largest best case (Lemma 4.3); a *shrink* pass excludes every point
//! whose best case loses to the k-th largest worst case (Lemma 4.4).
//! Decisions sharpen both bounds, so the passes alternate to a fixpoint.
//!
//! The approximate variant (§4.3, Theorem 4.6) estimates the k-th-largest
//! thresholds from a `p`-fraction sample instead of a global sort; the
//! sample membership is a deterministic per-node hash coin so the
//! in-memory and dataflow drivers agree bit for bit.
//!
//! [`bound_dataflow`] runs the same passes on the Beam-style engine: the
//! fanned-out neighbor graph is joined with the included / excluded
//! status sets (the paper's three-way join, §5) and thresholds come from
//! the engine's O(1)-memory distributed `kth_largest`. Both drivers share
//! the decision code, so their outcomes are **identical** — the
//! larger-than-memory suite asserts equality under crushing budgets.

use crate::config::BoundingMode;
use crate::{BoundingConfig, DistError, SamplingStrategy};
use submod_core::{NodeId, NodeSet, PairwiseObjective, SimilarityGraph};
use submod_dataflow::{PCollection, Pipeline};

/// The result of a bounding run.
#[derive(Clone, Debug, PartialEq)]
pub struct BoundingOutcome {
    /// Points proven to belong to the subset, ascending by id.
    pub included: Vec<NodeId>,
    /// Number of points proven to be outside the subset.
    pub excluded_count: usize,
    /// Undecided points (the greedy phase's ground set), ascending by id.
    pub remaining: Vec<NodeId>,
    /// Number of grow passes executed.
    pub grow_rounds: usize,
    /// Number of shrink passes executed.
    pub shrink_rounds: usize,
    /// Budget still open after bounding: `k − |included|`.
    pub k_remaining: usize,
}

impl BoundingOutcome {
    /// Returns `true` when bounding decided the entire subset.
    pub fn is_complete(&self) -> bool {
        self.k_remaining == 0
    }

    /// Fraction of an `n`-point ground set that was decided either way.
    pub fn decision_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        (self.included.len() + self.excluded_count) as f64 / n as f64
    }
}

/// Per-point similarity penalties produced by one pass. The three §4
/// bounds derive from them in shared code, so the in-memory and dataflow
/// drivers agree bit for bit:
///
/// - `U_min = u − (β/α)·min_penalty` (every non-excluded neighbor counts,
///   Def. 4.1),
/// - `U_max = u − (β/α)·max_penalty` (only included neighbors count,
///   Def. 4.2),
/// - `U_exp = u − (β/α)·(max_penalty + q·(min_penalty − max_penalty))`
///   with `q = k_rem/|undecided|` — the *expected* utility under a
///   uniform-random completion (Def. 4.5), the statistic the approximate
///   shrink decides on.
#[derive(Clone, Copy, Debug)]
struct Bounds {
    node: u64,
    min_penalty: f64,
    max_penalty: f64,
}

/// The derived per-point bound values for one pass.
#[derive(Clone, Copy, Debug)]
struct Derived {
    node: u64,
    umin: f64,
    umax: f64,
    uexp: f64,
}

/// Ratio of undecided points the approximate shrink keeps per open
/// budget slot: exclusions cut the pool to ≈ `SAFETY_POOL_FACTOR · k`
/// expected-best candidates, leaving the greedy phase a margin for the
/// expectation being wrong (Theorem 4.6 prices the residual risk).
const SAFETY_POOL_FACTOR: usize = 3;

fn derive(
    bounds: &[Bounds],
    objective: &PairwiseObjective,
    k_remaining: usize,
    undecided_len: usize,
) -> Vec<Derived> {
    let ratio = objective.ratio();
    let q = if undecided_len == 0 {
        0.0
    } else {
        (k_remaining as f64 / undecided_len as f64).clamp(0.0, 1.0)
    };
    bounds
        .iter()
        .map(|b| {
            let u = objective.utility(NodeId::new(b.node));
            Derived {
                node: b.node,
                umin: u - ratio * b.min_penalty,
                umax: u - ratio * b.max_penalty,
                uexp: u - ratio * (b.max_penalty + q * (b.min_penalty - b.max_penalty)),
            }
        })
        .collect()
}

/// Mutable bounding state shared by both drivers.
struct State {
    included: NodeSet,
    excluded: NodeSet,
    k: usize,
}

impl State {
    fn k_remaining(&self) -> usize {
        self.k - self.included.len()
    }

    fn undecided(&self, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(NodeId::from_index)
            .filter(|&v| !self.included.contains(v) && !self.excluded.contains(v))
            .collect()
    }
}

/// splitmix64 over (seed, salt, node): the deterministic sampling coin in
/// `[0, 1)`. Order-independent, so the dataflow driver reproduces it.
fn sample_coin(seed: u64, salt: u64, node: u64) -> f64 {
    let mixed = crate::mix::mix_seed_node(seed ^ salt.rotate_left(17), node);
    (mixed >> 11) as f64 / (1u64 << 53) as f64
}

/// Whether `node` is in the threshold-estimation sample of this pass.
fn in_sample(
    mode: &BoundingMode,
    pass: u64,
    phase: u64,
    node: u64,
    utility: f64,
    mean_utility: f64,
) -> bool {
    match *mode {
        BoundingMode::Exact => true,
        BoundingMode::Approximate { p, strategy, seed } => {
            let probability = match strategy {
                SamplingStrategy::Uniform => p,
                SamplingStrategy::Weighted => {
                    // Utility-proportional inclusion, normalized so the
                    // expected sample size stays ≈ p·n.
                    if mean_utility > 0.0 {
                        (p * utility / mean_utility).clamp(0.0, 1.0)
                    } else {
                        p
                    }
                }
            };
            sample_coin(seed, pass << 8 | phase, node) < probability
        }
    }
}

/// Index (1-based) of the order statistic used as the threshold: the
/// `k`-th largest for exact bounding, its unbiased `p`-sample analogue
/// `⌈p·k⌉` for approximate bounding.
fn threshold_index(mode: &BoundingMode, k_effective: usize, sample_len: usize) -> usize {
    let index = match *mode {
        BoundingMode::Exact => k_effective,
        BoundingMode::Approximate { p, .. } => ((p * k_effective as f64).ceil() as usize).max(1),
    };
    index.min(sample_len)
}

/// The `index`-th largest value of `values` (1-based), or `None` when the
/// sample is empty. Pure selection — both drivers feed it identical f64s.
fn kth_largest_in_memory(values: &mut [f64], index: usize) -> Option<f64> {
    if values.is_empty() || index == 0 {
        return None;
    }
    let index = index.min(values.len());
    values.sort_by(|a, b| b.total_cmp(a));
    Some(values[index - 1])
}

/// Grow decision (Lemma 4.3): undecided points whose `U_min` beats the
/// threshold, best first, capped at the open budget.
fn decide_grow(derived: &[Derived], threshold: f64, k_remaining: usize) -> Vec<u64> {
    let mut candidates: Vec<&Derived> = derived.iter().filter(|b| b.umin > threshold).collect();
    candidates.sort_by(|a, b| b.umin.total_cmp(&a.umin).then(a.node.cmp(&b.node)));
    candidates.into_iter().take(k_remaining).map(|b| b.node).collect()
}

/// Shrink decision, worst candidates first, never shrinking the pool
/// below the open budget.
///
/// Exact mode is Lemma 4.4 verbatim: a point is excluded when its *best*
/// case `U_max` loses to the k-th largest *worst* case `U_min`. The
/// approximate mode decides on the expected utility `U_exp` (Def. 4.5)
/// against the sampled `⌈SAFETY·k⌉`-th largest `U_exp`: expectation-level
/// cuts are what let approximate bounding discard the bulk of a
/// near-duplicate-heavy ground set (§6.3) where the worst-case lemma
/// stalls, at the probabilistic price Theorem 4.6 quantifies.
fn decide_shrink(
    derived: &[Derived],
    exact: bool,
    threshold: f64,
    max_excludable: usize,
) -> Vec<u64> {
    let statistic = |b: &Derived| if exact { b.umax } else { b.uexp };
    let mut candidates: Vec<&Derived> =
        derived.iter().filter(|b| statistic(b) < threshold).collect();
    candidates.sort_by(|a, b| statistic(a).total_cmp(&statistic(b)).then(a.node.cmp(&b.node)));
    candidates.into_iter().take(max_excludable).map(|b| b.node).collect()
}

fn validate(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
) -> Result<(), DistError> {
    if objective.num_nodes() != graph.num_nodes() {
        return Err(submod_core::CoreError::UtilityLengthMismatch {
            utilities: objective.num_nodes(),
            num_nodes: graph.num_nodes(),
        }
        .into());
    }
    if k > graph.num_nodes() {
        return Err(submod_core::CoreError::BudgetTooLarge {
            budget: k,
            available: graph.num_nodes(),
        }
        .into());
    }
    Ok(())
}

/// Runs bounding entirely in memory.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph or `k`
/// exceeds the ground set.
pub fn bound_in_memory(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &BoundingConfig,
) -> Result<BoundingOutcome, DistError> {
    validate(graph, objective, k)?;
    run_bounding(
        graph,
        objective,
        k,
        config,
        |state, undecided| {
            // Neighbor contributions accumulate in ascending-neighbor
            // order — the dataflow driver sorts its join outputs the same
            // way, so the two produce bitwise-identical sums.
            Ok(undecided
                .iter()
                .map(|&v| {
                    let mut min_penalty = 0.0f64;
                    let mut max_penalty = 0.0f64;
                    for (w, s) in graph.edges(v) {
                        if !state.excluded.contains(w) {
                            min_penalty += f64::from(s);
                        }
                        if state.included.contains(w) {
                            max_penalty += f64::from(s);
                        }
                    }
                    Bounds { node: v.raw(), min_penalty, max_penalty }
                })
                .collect())
        },
        |sample, index| Ok(kth_largest_in_memory(&mut sample.to_vec(), index)),
    )
}

/// Runs bounding on the dataflow engine: neighbor fan-out, the three-way
/// status join, and distributed threshold selection, with every worker
/// buffer held to the pipeline's memory budget.
///
/// The outcome is identical to [`bound_in_memory`] by construction.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph, `k`
/// exceeds the ground set, or spill I/O fails.
pub fn bound_dataflow(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &BoundingConfig,
) -> Result<BoundingOutcome, DistError> {
    validate(graph, objective, k)?;
    run_bounding(
        graph,
        objective,
        k,
        config,
        |state, undecided| bounds_via_pipeline(pipeline, graph, state, undecided),
        |sample, index| {
            // The threshold is an order statistic of the sampled bound
            // values; select it with the engine's O(1)-worker-memory
            // `kth_largest` (bit-bisection over counting passes) instead
            // of a driver-side sort. The bisection lands exactly on the
            // attained element, so the value matches the in-memory sort
            // bit for bit — `run_bounding` stays driver-agnostic.
            //
            // Honest scope note: the sample itself is assembled on the
            // driver (the decision code is shared with the in-memory
            // driver, which is what guarantees outcome equality), so
            // this moves the *selection* onto the engine, not the
            // table. Keeping the bound table engine-resident end to end
            // is a tracked ROADMAP item.
            if index == 0 || sample.is_empty() {
                return Ok(None);
            }
            let sampled = pipeline.from_vec(sample.to_vec());
            Ok(Some(sampled.kth_largest(index as u64)?))
        },
    )
}

/// One pass of penalty computation on the engine (the §5 pipeline shape).
fn bounds_via_pipeline(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    state: &State,
    undecided: &[NodeId],
) -> Result<Vec<Bounds>, DistError> {
    let undecided_ids: Vec<u64> = undecided.iter().map(|v| v.raw()).collect();
    let nodes = pipeline.from_vec(undecided_ids.clone());

    // Fan the neighbor lists of undecided points out to edge triples
    // keyed by the *neighbor*, so its status can be joined in.
    let fanned: PCollection<(u64, (u64, f32))> = nodes.flat_map(|v| {
        let vid = NodeId::new(v);
        graph.edges(vid).map(move |(w, s)| (w.raw(), (v, s))).collect::<Vec<_>>()
    })?;

    // Status sets as keyed collections (the join's second and third arm).
    let included: Vec<(u64, ())> = state.included.iter().map(|v| (v.raw(), ())).collect();
    let excluded: Vec<(u64, ())> = state.excluded.iter().map(|v| (v.raw(), ())).collect();
    let included = pipeline.from_vec(included);
    let excluded = pipeline.from_vec(excluded);

    // Three-way join on the neighbor id: every edge learns its far
    // endpoint's status, then flips back to being keyed by the undecided
    // point with the weight tagged (counts-for-min, counts-for-max).
    let tagged: PCollection<(u64, (u64, f32, bool, bool))> =
        fanned.co_group_3(&included, &excluded)?.flat_map(|(w, (edges, inc, exc))| {
            let w_included = !inc.is_empty();
            let w_excluded = !exc.is_empty();
            edges
                .into_iter()
                .map(move |(v, s)| (v, (w, s, !w_excluded, w_included)))
                .collect::<Vec<_>>()
        })?;

    // Per-point reduction. Contributions are ordered by neighbor id before
    // summing so the floating-point sums match the in-memory driver
    // exactly. The outer join with the undecided set keeps isolated points
    // (no surviving edges) in the output.
    let keyed_undecided: PCollection<(u64, ())> =
        pipeline.from_vec(undecided_ids.iter().map(|&v| (v, ())).collect::<Vec<_>>());
    let penalties: PCollection<(u64, f64, f64)> =
        keyed_undecided.co_group_2(&tagged)?.map(move |(v, (_, mut contributions))| {
            contributions.sort_by_key(|&(w, _, _, _)| w);
            let mut min_penalty = 0.0f64;
            let mut max_penalty = 0.0f64;
            for &(_, s, counts_for_min, counts_for_max) in &contributions {
                if counts_for_min {
                    min_penalty += f64::from(s);
                }
                if counts_for_max {
                    max_penalty += f64::from(s);
                }
            }
            (v, min_penalty, max_penalty)
        })?;

    let mut bounds: Vec<Bounds> = penalties
        .collect()?
        .into_iter()
        .map(|(node, min_penalty, max_penalty)| Bounds { node, min_penalty, max_penalty })
        .collect();
    bounds.sort_by_key(|b| b.node);
    Ok(bounds)
}

/// The shared grow/shrink driver. `compute_bounds` produces the per-pass
/// bound table for the current undecided set and `select_threshold`
/// picks the 1-based `index`-th largest of a sampled statistic (`None`
/// when the sample is empty); everything downstream is common, which is
/// what guarantees in-memory/dataflow equality — both drivers feed the
/// same samples and both selectors return the attained element exactly.
fn run_bounding<F, S>(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &BoundingConfig,
    mut compute_bounds: F,
    mut select_threshold: S,
) -> Result<BoundingOutcome, DistError>
where
    F: FnMut(&State, &[NodeId]) -> Result<Vec<Bounds>, DistError>,
    S: FnMut(&[f64], usize) -> Result<Option<f64>, DistError>,
{
    let n = graph.num_nodes();
    let mean_utility =
        objective.utilities().iter().map(|&u| f64::from(u)).sum::<f64>() / (n.max(1)) as f64;
    let mut state = State { included: NodeSet::new(n), excluded: NodeSet::new(n), k };
    let mut grow_rounds = 0usize;
    let mut shrink_rounds = 0usize;
    let mut pass = 0u64;

    for _cycle in 0..config.max_cycles {
        if state.k_remaining() == 0 {
            break;
        }
        let mut changed = false;

        // --- Grow pass (Lemma 4.3). ---
        let undecided = state.undecided(n);
        if undecided.is_empty() {
            break;
        }
        let bounds = compute_bounds(&state, &undecided)?;
        grow_rounds += 1;
        pass += 1;
        let k_rem = state.k_remaining();
        let derived = derive(&bounds, objective, k_rem, undecided.len());
        let sample: Vec<f64> = derived
            .iter()
            .filter(|b| {
                in_sample(
                    &config.mode,
                    pass,
                    0,
                    b.node,
                    objective.utility(NodeId::new(b.node)),
                    mean_utility,
                )
            })
            .map(|b| b.umax)
            .collect();
        let index = threshold_index(&config.mode, k_rem, sample.len());
        if let Some(threshold) = select_threshold(&sample, index)? {
            for node in decide_grow(&derived, threshold, k_rem) {
                state.included.insert(NodeId::new(node));
                changed = true;
            }
        }
        if state.k_remaining() == 0 {
            break;
        }

        // --- Shrink pass (Lemma 4.4 exactly; Def. 4.5 under sampling). ---
        let undecided = state.undecided(n);
        if undecided.is_empty() {
            break;
        }
        let bounds = compute_bounds(&state, &undecided)?;
        shrink_rounds += 1;
        pass += 1;
        let k_rem = state.k_remaining();
        let exact = config.is_exact();
        let derived = derive(&bounds, objective, k_rem, undecided.len());
        let sample: Vec<f64> = derived
            .iter()
            .filter(|b| {
                in_sample(
                    &config.mode,
                    pass,
                    1,
                    b.node,
                    objective.utility(NodeId::new(b.node)),
                    mean_utility,
                )
            })
            .map(|b| if exact { b.umin } else { b.uexp })
            .collect();
        // The exact threshold is the k-th largest worst case; the
        // approximate one keeps a SAFETY_POOL_FACTOR·k expected-best pool.
        let k_effective = if exact { k_rem } else { SAFETY_POOL_FACTOR * k_rem };
        let index = threshold_index(&config.mode, k_effective, sample.len());
        if let Some(threshold) = select_threshold(&sample, index)? {
            let max_excludable = undecided.len().saturating_sub(k_rem);
            for node in decide_shrink(&derived, exact, threshold, max_excludable) {
                state.excluded.insert(NodeId::new(node));
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // A complete bounding (budget fully included) has implicitly decided
    // every still-open point *out* of the subset.
    if state.k_remaining() == 0 {
        for v in state.undecided(n) {
            state.excluded.insert(v);
        }
    }
    let included: Vec<NodeId> = state.included.iter().collect();
    let remaining = state.undecided(n);
    let k_remaining = state.k_remaining();
    Ok(BoundingOutcome {
        excluded_count: state.excluded.len(),
        included,
        remaining,
        grow_rounds,
        shrink_rounds,
        k_remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use submod_core::GraphBuilder;

    fn figure1_instance() -> (SimilarityGraph, PairwiseObjective) {
        // The paper's Figure 1 layout: two similar pairs plus two loners.
        let mut b = GraphBuilder::new(6);
        b.add_undirected(0, 1, 0.8).unwrap();
        b.add_undirected(2, 3, 0.7).unwrap();
        b.add_undirected(1, 2, 0.3).unwrap();
        let graph = b.build();
        let objective =
            PairwiseObjective::from_alpha(0.7, vec![0.9, 0.6, 0.8, 0.5, 0.75, 0.1]).unwrap();
        (graph, objective)
    }

    #[test]
    fn exact_bounding_is_sound_on_figure_1() {
        let (graph, objective) = figure1_instance();
        let outcome = bound_in_memory(&graph, &objective, 3, &BoundingConfig::exact()).unwrap();
        // Sound inclusions must appear in the centralized greedy solution.
        let central = submod_core::greedy_select(&graph, &objective, 3).unwrap();
        for v in &outcome.included {
            assert!(central.selected().contains(v), "included {v} not in greedy solution");
        }
        // Sound exclusions must not.
        let undecided: std::collections::HashSet<u64> =
            outcome.remaining.iter().map(|v| v.raw()).collect();
        for v in central.selected() {
            assert!(
                outcome.included.contains(v) || undecided.contains(&v.raw()),
                "greedy pick {v} was excluded"
            );
        }
        assert_eq!(outcome.k_remaining, 3 - outcome.included.len());
        assert!(outcome.decision_fraction(6) > 0.0);
    }

    #[test]
    fn bookkeeping_adds_up() {
        let (graph, objective) = figure1_instance();
        let outcome = bound_in_memory(&graph, &objective, 3, &BoundingConfig::exact()).unwrap();
        assert_eq!(
            outcome.included.len() + outcome.excluded_count + outcome.remaining.len(),
            graph.num_nodes()
        );
        assert!(outcome.remaining.len() >= outcome.k_remaining);
        assert!(outcome.remaining.windows(2).all(|w| w[0] < w[1]), "remaining sorted");
        assert!(outcome.included.windows(2).all(|w| w[0] < w[1]), "included sorted");
    }

    #[test]
    fn approximate_bounding_is_deterministic_per_seed() {
        let (graph, objective) = figure1_instance();
        let config = BoundingConfig::approximate(0.6, SamplingStrategy::Uniform, 5).unwrap();
        let a = bound_in_memory(&graph, &objective, 3, &config).unwrap();
        let b = bound_in_memory(&graph, &objective, 3, &config).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_and_uniform_sampling_both_run() {
        let (graph, objective) = figure1_instance();
        for strategy in [SamplingStrategy::Uniform, SamplingStrategy::Weighted] {
            let config = BoundingConfig::approximate(0.5, strategy, 7).unwrap();
            let outcome = bound_in_memory(&graph, &objective, 3, &config).unwrap();
            assert!(outcome.remaining.len() >= outcome.k_remaining);
        }
    }

    #[test]
    fn dataflow_matches_in_memory_exactly() {
        let (graph, objective) = figure1_instance();
        let pipeline = Pipeline::new(3).unwrap();
        for config in [
            BoundingConfig::exact(),
            BoundingConfig::approximate(0.5, SamplingStrategy::Uniform, 3).unwrap(),
            BoundingConfig::approximate(0.5, SamplingStrategy::Weighted, 3).unwrap(),
        ] {
            let mem = bound_in_memory(&graph, &objective, 3, &config).unwrap();
            let df = bound_dataflow(&pipeline, &graph, &objective, 3, &config).unwrap();
            assert_eq!(mem, df);
        }
    }

    #[test]
    fn validation_errors() {
        let (graph, objective) = figure1_instance();
        assert!(bound_in_memory(&graph, &objective, 7, &BoundingConfig::exact()).is_err());
        let wrong = PairwiseObjective::from_alpha(0.7, vec![1.0; 4]).unwrap();
        assert!(bound_in_memory(&graph, &wrong, 2, &BoundingConfig::exact()).is_err());
    }

    #[test]
    fn zero_budget_is_complete_immediately() {
        let (graph, objective) = figure1_instance();
        let outcome = bound_in_memory(&graph, &objective, 0, &BoundingConfig::exact()).unwrap();
        assert!(outcome.is_complete());
        assert!(outcome.included.is_empty());
    }
}
