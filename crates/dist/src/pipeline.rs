//! The end-to-end selection pipeline (paper Algorithm 6): approximate
//! bounding decides what it can, the multi-round distributed greedy fills
//! the remaining budget over the undecided points, and the completed
//! subset is scored on the full graph.

use crate::{bound_in_memory, BoundingConfig, BoundingOutcome, DistError, DistGreedyConfig};
use submod_core::{NodeId, NodeSet, PairwiseObjective, Selection, SimilarityGraph};

/// Configuration of [`select_subset`]: an optional bounding phase plus the
/// distributed greedy phase.
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    pub(crate) bounding: Option<BoundingConfig>,
    pub(crate) greedy: DistGreedyConfig,
}

impl PipelineConfig {
    /// Bounding followed by distributed greedy — the paper's full system.
    pub fn with_bounding(bounding: BoundingConfig, greedy: DistGreedyConfig) -> Self {
        PipelineConfig { bounding: Some(bounding), greedy }
    }

    /// Distributed greedy over the whole ground set, no bounding.
    pub fn greedy_only(greedy: DistGreedyConfig) -> Self {
        PipelineConfig { bounding: None, greedy }
    }

    /// The bounding configuration, if any.
    pub fn bounding(&self) -> Option<&BoundingConfig> {
        self.bounding.as_ref()
    }

    /// The greedy configuration.
    pub fn greedy(&self) -> &DistGreedyConfig {
        &self.greedy
    }
}

/// The result of a full pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineOutcome {
    /// The final `k`-point selection, scored on the full graph.
    pub selection: Selection,
    /// The bounding phase's outcome when one ran.
    pub bounding: Option<BoundingOutcome>,
}

/// Runs the configured pipeline: bounding (if any) → distributed greedy
/// over the undecided points → completion. Always returns exactly `k`
/// distinct points.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph or `k`
/// exceeds the ground set.
pub fn select_subset(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &PipelineConfig,
) -> Result<PipelineOutcome, DistError> {
    let bounding = match &config.bounding {
        Some(bounding_config) => Some(bound_in_memory(graph, objective, k, bounding_config)?),
        None => None,
    };
    complete_selection(graph, objective, k, bounding, &config.greedy, config.greedy.seed)
}

/// Completes a (possibly partial) bounding outcome into a full `k`-point
/// selection with the distributed greedy algorithm.
///
/// Points the bounding phase already included are fixed; the greedy phase
/// runs over the undecided points with the *residual* objective — each
/// undecided point's utility is discounted by its similarity to the fixed
/// points, exactly the telescoped priorities of Algorithm 2 — so the two
/// phases compose without double counting.
///
/// Passing `bounding: None` runs the greedy phase over the whole ground
/// set.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph or `k`
/// exceeds the ground set.
pub fn complete_selection(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    bounding: Option<BoundingOutcome>,
    greedy: &DistGreedyConfig,
    seed: u64,
) -> Result<PipelineOutcome, DistError> {
    complete_selection_with_journal(graph, objective, k, bounding, greedy, seed, None)
}

/// [`complete_selection`] with an optional run journal — the
/// crate-internal seam [`crate::select_subset_journaled`] threads
/// through.
pub(crate) fn complete_selection_with_journal(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    bounding: Option<BoundingOutcome>,
    greedy: &DistGreedyConfig,
    seed: u64,
    journal: Option<&mut crate::journal::RunJournal>,
) -> Result<PipelineOutcome, DistError> {
    if objective.num_nodes() != graph.num_nodes() {
        return Err(submod_core::CoreError::UtilityLengthMismatch {
            utilities: objective.num_nodes(),
            num_nodes: graph.num_nodes(),
        }
        .into());
    }
    if k > graph.num_nodes() {
        return Err(submod_core::CoreError::BudgetTooLarge {
            budget: k,
            available: graph.num_nodes(),
        }
        .into());
    }

    let (included, ground, k_remaining) = match &bounding {
        Some(outcome) => {
            (outcome.included.clone(), outcome.remaining.clone(), outcome.k_remaining.min(k))
        }
        None => (Vec::new(), (0..graph.num_nodes()).map(NodeId::from_index).collect::<Vec<_>>(), k),
    };

    let mut chosen = included;
    chosen.truncate(k);
    if k_remaining > 0 && !ground.is_empty() {
        // Residual utilities: discount each point by its fixed neighbors.
        let residual = if chosen.is_empty() {
            objective.clone()
        } else {
            let fixed = NodeSet::from_members(graph.num_nodes(), chosen.iter().copied());
            let ratio = objective.ratio();
            let utilities: Vec<f32> = (0..graph.num_nodes())
                .map(|i| {
                    let v = NodeId::from_index(i);
                    let mut penalty = 0.0f64;
                    for (w, s) in graph.edges(v) {
                        if fixed.contains(w) {
                            penalty += f64::from(s);
                        }
                    }
                    (objective.utility(v) - ratio * penalty) as f32
                })
                .collect();
            PairwiseObjective::new(objective.alpha(), objective.beta(), utilities)?
        };
        let budget = k_remaining.min(ground.len());
        let config = greedy.clone().seed(seed);
        let (report, _) = crate::multiround::distributed_greedy_with_journal(
            graph, &residual, &ground, budget, &config, journal,
        )?;
        chosen.extend(report.selection.selected());
    }

    // Safety net for degenerate bounding outcomes: fill any open budget
    // from the whole ground set by utility.
    let everyone: Vec<NodeId> = (0..graph.num_nodes()).map(NodeId::from_index).collect();
    crate::multiround::fill_by_utility(graph, objective, &mut chosen, &everyone, k);

    let value = objective.evaluate(graph, &chosen);
    Ok(PipelineOutcome { selection: Selection::new(chosen, Vec::new(), value), bounding })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SamplingStrategy;
    use submod_core::{greedy_select, GraphBuilder};

    fn instance(n: usize) -> (SimilarityGraph, PairwiseObjective) {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u64 {
            b.add_undirected(v, (v + 1) % n as u64, 0.5).unwrap();
            b.add_undirected(v, (v + 4) % n as u64, 0.25).unwrap();
        }
        let graph = b.build();
        let utilities: Vec<f32> = (0..n).map(|i| 0.2 + ((i * 13) % 50) as f32 / 50.0).collect();
        (graph, PairwiseObjective::from_alpha(0.9, utilities).unwrap())
    }

    #[test]
    fn greedy_only_returns_k_points() {
        let (graph, objective) = instance(50);
        let config = PipelineConfig::greedy_only(DistGreedyConfig::new(4, 2).unwrap());
        let outcome = select_subset(&graph, &objective, 10, &config).unwrap();
        assert_eq!(outcome.selection.len(), 10);
        assert!(outcome.bounding.is_none());
    }

    #[test]
    fn bounding_pipeline_returns_k_points_and_outcome() {
        let (graph, objective) = instance(50);
        for bounding in [
            BoundingConfig::exact(),
            BoundingConfig::approximate(0.5, SamplingStrategy::Uniform, 3).unwrap(),
        ] {
            let config = PipelineConfig::with_bounding(
                bounding,
                DistGreedyConfig::new(3, 2).unwrap().seed(1),
            );
            let outcome = select_subset(&graph, &objective, 12, &config).unwrap();
            assert_eq!(outcome.selection.len(), 12);
            let info = outcome.bounding.as_ref().expect("bounding ran");
            // Every bounding inclusion survives into the final subset.
            for v in &info.included {
                assert!(outcome.selection.selected().contains(v));
            }
            // No duplicates.
            let mut ids: Vec<u64> = outcome.selection.selected().iter().map(|v| v.raw()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 12);
        }
    }

    #[test]
    fn single_machine_completion_tracks_centralized() {
        let (graph, objective) = instance(60);
        let central = greedy_select(&graph, &objective, 12).unwrap().objective_value();
        let config = PipelineConfig::with_bounding(
            BoundingConfig::exact(),
            DistGreedyConfig::new(1, 1).unwrap().seed(1),
        );
        let outcome = select_subset(&graph, &objective, 12, &config).unwrap();
        let ratio = outcome.selection.objective_value() / central;
        assert!(ratio > 0.95, "exact bounding + centralized completion ratio {ratio}");
    }

    #[test]
    fn complete_selection_without_bounding_matches_greedy_only() {
        let (graph, objective) = instance(40);
        let greedy = DistGreedyConfig::new(2, 2).unwrap().seed(7);
        let via_complete = complete_selection(&graph, &objective, 8, None, &greedy, 7).unwrap();
        let via_select =
            select_subset(&graph, &objective, 8, &PipelineConfig::greedy_only(greedy)).unwrap();
        assert_eq!(via_complete.selection.selected(), via_select.selection.selected());
    }

    #[test]
    fn accessors_expose_parts() {
        let greedy = DistGreedyConfig::new(2, 1).unwrap();
        let config = PipelineConfig::with_bounding(BoundingConfig::exact(), greedy.clone());
        assert!(config.bounding().is_some());
        assert_eq!(config.greedy(), &greedy);
        assert!(PipelineConfig::greedy_only(greedy).bounding().is_none());
    }

    #[test]
    fn validation_errors() {
        let (graph, objective) = instance(10);
        let config = PipelineConfig::greedy_only(DistGreedyConfig::new(2, 1).unwrap());
        assert!(select_subset(&graph, &objective, 11, &config).is_err());
    }
}
