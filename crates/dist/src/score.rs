//! Subset scoring: the in-memory reference and the §5 dataflow pipeline
//! that computes `f(S)` without any worker holding `S`'s edge set.

use crate::DistError;
use submod_core::{NodeId, PairwiseObjective, SimilarityGraph};
use submod_dataflow::{PCollection, Pipeline};

/// Evaluates `f(S)` in memory (delegates to
/// [`PairwiseObjective::evaluate`]; exposed here so callers score
/// distributed outputs through one module).
pub fn score_in_memory(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    subset: &[NodeId],
) -> f64 {
    objective.evaluate(graph, subset)
}

/// Evaluates `f(S)` on the dataflow engine.
///
/// The unary term streams the subset's utilities; the pair term fans the
/// subset's neighbor lists out to edge records keyed by the far endpoint
/// and joins them against the subset twice (once per endpoint), so each
/// undirected in-subset edge is counted exactly twice and halved — the §5
/// scoring pipeline. Every shuffle respects the pipeline's memory budget.
///
/// # Errors
///
/// Returns an error if the objective does not match the graph, a subset
/// id is out of bounds, or spill I/O fails.
pub fn score_dataflow(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    subset: &[NodeId],
) -> Result<f64, DistError> {
    if objective.num_nodes() != graph.num_nodes() {
        return Err(submod_core::CoreError::UtilityLengthMismatch {
            utilities: objective.num_nodes(),
            num_nodes: graph.num_nodes(),
        }
        .into());
    }
    for &v in subset {
        if v.index() >= graph.num_nodes() {
            return Err(submod_core::CoreError::NodeOutOfBounds {
                node: v.raw(),
                num_nodes: graph.num_nodes(),
            }
            .into());
        }
    }

    let ids: Vec<u64> = subset.iter().map(|v| v.raw()).collect();
    let members = pipeline.from_vec(ids.clone());

    // Unary term: α·Σ u(v), deduplicating repeated ids via a shuffle.
    let distinct: PCollection<u64> = members.distinct()?;
    let utilities: Vec<f32> = objective.utilities().to_vec();
    let unary = distinct.map(move |v| f64::from(utilities[v as usize]))?.sum()?;

    // Pair term: fan out each member's adjacency keyed by the neighbor,
    // keep edges whose far endpoint is also in the subset, and sum. Every
    // undirected edge inside S appears once per direction.
    let fanned: PCollection<(u64, f64)> = distinct.flat_map_eager(|v| {
        graph.edges(NodeId::new(v)).map(|(w, s)| (w.raw(), f64::from(s))).collect::<Vec<_>>()
    })?;
    let keyed_members: PCollection<(u64, ())> = distinct.map(|v| (v, ()))?;
    let pair_directed = fanned
        .co_group_2(&keyed_members)?
        .flat_map(
            |(_, (weights, membership))| {
                if membership.is_empty() {
                    Vec::new()
                } else {
                    weights
                }
            },
        )?
        .sum()?;

    Ok(objective.alpha() * unary - objective.beta() * pair_directed / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use submod_core::GraphBuilder;
    use submod_dataflow::MemoryBudget;

    fn instance() -> (SimilarityGraph, PairwiseObjective) {
        let mut b = GraphBuilder::new(30);
        for v in 0..30u64 {
            b.add_undirected(v, (v + 1) % 30, 0.4).unwrap();
            b.add_undirected(v, (v + 5) % 30, 0.2).unwrap();
        }
        let graph = b.build();
        let utilities: Vec<f32> = (0..30).map(|i| (i % 7) as f32 / 7.0 + 0.1).collect();
        (graph, PairwiseObjective::from_alpha(0.8, utilities).unwrap())
    }

    #[test]
    fn dataflow_matches_in_memory() {
        let (graph, objective) = instance();
        let subset: Vec<NodeId> = (0..30).step_by(2).map(NodeId::from_index).collect();
        let reference = score_in_memory(&graph, &objective, &subset);
        let pipeline = Pipeline::new(3).unwrap();
        let scored = score_dataflow(&pipeline, &graph, &objective, &subset).unwrap();
        assert!(
            (reference - scored).abs() < 1e-9 * reference.abs().max(1.0),
            "{reference} vs {scored}"
        );
    }

    #[test]
    fn duplicates_do_not_double_count() {
        let (graph, objective) = instance();
        let mut subset: Vec<NodeId> = (0..10).map(NodeId::from_index).collect();
        subset.push(NodeId::new(0));
        subset.push(NodeId::new(3));
        let pipeline = Pipeline::new(2).unwrap();
        let scored = score_dataflow(&pipeline, &graph, &objective, &subset).unwrap();
        let deduped: Vec<NodeId> = (0..10).map(NodeId::from_index).collect();
        let reference = score_in_memory(&graph, &objective, &deduped);
        assert!((reference - scored).abs() < 1e-9 * reference.abs().max(1.0));
    }

    #[test]
    fn empty_subset_scores_zero() {
        let (graph, objective) = instance();
        let pipeline = Pipeline::new(2).unwrap();
        assert_eq!(score_dataflow(&pipeline, &graph, &objective, &[]).unwrap(), 0.0);
    }

    #[test]
    fn tiny_budget_spills_without_changing_the_score() {
        let (graph, objective) = instance();
        let subset: Vec<NodeId> = (0..30).map(NodeId::from_index).collect();
        let reference = score_in_memory(&graph, &objective, &subset);
        let pipeline =
            Pipeline::builder().workers(2).memory_budget(MemoryBudget::bytes(256)).build().unwrap();
        let scored = score_dataflow(&pipeline, &graph, &objective, &subset).unwrap();
        assert!((reference - scored).abs() < 1e-9 * reference.abs().max(1.0));
        assert!(pipeline.metrics().bytes_spilled > 0);
    }

    #[test]
    fn validation_errors() {
        let (graph, objective) = instance();
        let pipeline = Pipeline::new(2).unwrap();
        assert!(score_dataflow(&pipeline, &graph, &objective, &[NodeId::new(99)]).is_err());
    }
}
