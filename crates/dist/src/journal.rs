//! Journaled checkpoint/resume for the selection stack.
//!
//! Every journaled entry point wraps its plain counterpart around a
//! [`submod_journal`] write-ahead log: the run writes a
//! [`Record::RunStart`] header first, then one record per completed unit
//! of work (a greedy round, a bounding cycle, the GreeDi map phase),
//! fsyncing at each boundary, and a [`Record::RunComplete`] at the end.
//!
//! On restart with the same journal path, the valid prefix is replayed —
//! a torn tail from a crash mid-append is truncated first — and the run
//! continues from the last complete boundary. Replayed rounds restore
//! the pool, the cumulative stats, and the per-round bookkeeping exactly,
//! so a resumed run selects a **bitwise-identical** subset (ids, order,
//! and objective-value bits) to one that never died. The run header
//! carries a configuration fingerprint; resuming against a journal
//! written by a different configuration is refused rather than spliced.
//!
//! The fingerprint deliberately excludes the driver kind and the
//! dataflow winner-batch width: both drivers select identical subsets by
//! construction, so a run may crash under one driver and resume under
//! the other.

use crate::config::BoundingMode;
use crate::{
    BoundingConfig, DeltaSchedule, DistError, DistGreedyConfig, DistGreedyReport, GreediReport,
    GreedyStats, PartitionStyle, PipelineConfig, PipelineOutcome,
};
use std::collections::VecDeque;
use std::path::Path;
use submod_core::{NodeId, PairwiseObjective, SimilarityGraph};
use submod_dataflow::Pipeline;
use submod_journal::{BoundingSnapshot, GreedySnapshot, Journal, Record};

/// Algorithm tags stored in [`Record::RunStart`].
const ALGO_GREEDY: u64 = 1;
const ALGO_GREEDI: u64 = 2;
const ALGO_PIPELINE: u64 = 3;

/// An open run journal: the append handle plus the queue of records
/// replayed from a previous attempt, consumed front to back as the
/// algorithms re-reach their boundaries.
pub(crate) struct RunJournal {
    journal: Journal,
    pending: VecDeque<Record>,
}

impl RunJournal {
    /// Opens `path` for this run. A missing (or header-only) journal
    /// starts fresh by appending `start`; an existing journal is
    /// replayed, its torn tail truncated, and its own run header checked
    /// against `start` — a mismatch means the journal belongs to a
    /// different run configuration and is refused.
    pub(crate) fn open(path: &Path, start: &Record) -> Result<RunJournal, DistError> {
        if path.exists() {
            let (replayed, journal) = submod_journal::open_resume(path)?;
            let mut pending: VecDeque<Record> = replayed.records.into_iter().collect();
            match pending.front() {
                Some(Record::RunStart { .. }) => {
                    let first = pending.pop_front().expect("front was just matched");
                    if &first != start {
                        return Err(DistError::config(format!(
                            "journal {} was written by a different run configuration \
                             (recorded header {first:?}, this run {start:?})",
                            path.display()
                        )));
                    }
                    Ok(RunJournal { journal, pending })
                }
                Some(_) => Err(DistError::config(format!(
                    "journal {} does not begin with a run header",
                    path.display()
                ))),
                None => {
                    let mut fresh = RunJournal { journal, pending };
                    fresh.append_sync(start)?;
                    Ok(fresh)
                }
            }
        } else {
            let mut journal = Journal::create(path)?;
            journal.append(start)?;
            journal.sync()?;
            Ok(RunJournal { journal, pending: VecDeque::new() })
        }
    }

    /// Appends one record and forces it to disk — the boundary commit.
    pub(crate) fn append_sync(&mut self, record: &Record) -> Result<(), DistError> {
        self.journal.append(record)?;
        self.journal.sync()?;
        Ok(())
    }

    /// Pops the pending greedy-round record for `round`, if the replayed
    /// prefix reached that boundary.
    pub(crate) fn take_greedy_round(&mut self, round: usize) -> Option<Record> {
        match self.pending.front() {
            Some(Record::GreedyRound { round: r, .. }) if *r == round as u64 => {
                self.pending.pop_front()
            }
            _ => None,
        }
    }

    /// Pops the next pending bounding-cycle record, if any.
    pub(crate) fn take_bounding_cycle(&mut self) -> Option<Record> {
        match self.pending.front() {
            Some(Record::BoundingCycle { .. }) => self.pending.pop_front(),
            _ => None,
        }
    }

    /// Pops the pending bounding-done record, if any.
    pub(crate) fn take_bounding_done(&mut self) -> Option<Record> {
        match self.pending.front() {
            Some(Record::BoundingDone { .. }) => self.pending.pop_front(),
            _ => None,
        }
    }

    /// Closes the run: consumes a replayed [`Record::RunComplete`] if the
    /// previous attempt already finished, otherwise appends one.
    pub(crate) fn finish(&mut self) -> Result<(), DistError> {
        if matches!(self.pending.front(), Some(Record::RunComplete)) {
            self.pending.pop_front();
            return Ok(());
        }
        self.append_sync(&Record::RunComplete)
    }
}

/// The journal snapshot of cumulative [`GreedyStats`].
pub(crate) fn snapshot_greedy(stats: &GreedyStats, bytes_broadcast: u64) -> GreedySnapshot {
    GreedySnapshot {
        rounds: stats.rounds as u64,
        steps: stats.steps as u64,
        peak_round_bytes: stats.peak_round_bytes,
        peak_step_winners: stats.peak_step_winners as u64,
        winners_collected: stats.winners_collected as u64,
        peak_state_bytes: stats.peak_state_bytes,
        bytes_broadcast,
    }
}

/// Restores cumulative [`GreedyStats`] from a journal snapshot.
pub(crate) fn restore_greedy(snap: &GreedySnapshot) -> GreedyStats {
    GreedyStats {
        rounds: snap.rounds as usize,
        steps: snap.steps as usize,
        peak_round_bytes: snap.peak_round_bytes,
        peak_step_winners: snap.peak_step_winners as usize,
        winners_collected: snap.winners_collected as usize,
        peak_state_bytes: snap.peak_state_bytes,
        bytes_broadcast: snap.bytes_broadcast,
    }
}

/// The journal snapshot of cumulative [`crate::BoundingStats`].
pub(crate) fn snapshot_bounding(stats: &crate::BoundingStats) -> BoundingSnapshot {
    BoundingSnapshot {
        passes: stats.passes as u64,
        peak_pass_bytes: stats.peak_pass_bytes,
        peak_candidates: stats.peak_candidates as u64,
        peak_state_bytes: stats.peak_state_bytes,
    }
}

/// Restores cumulative [`crate::BoundingStats`] from a journal snapshot.
pub(crate) fn restore_bounding(snap: &BoundingSnapshot) -> crate::BoundingStats {
    crate::BoundingStats {
        passes: snap.passes as usize,
        peak_pass_bytes: snap.peak_pass_bytes,
        peak_candidates: snap.peak_candidates as usize,
        peak_state_bytes: snap.peak_state_bytes,
    }
}

/// Order-insensitive hash of the canonical (deduplicated) ground-set
/// ids: a commutative sum of per-id splitmix images. Equal sets hash
/// equal in any order without materializing a sorted copy — the hash is
/// recomputed on every journaled run, so it must stay cheap next to a
/// selection round, not just correct.
fn ground_hash(ground: &[NodeId]) -> u64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    if ground.windows(2).all(|w| w[0].raw() < w[1].raw()) {
        // Sorted and duplicate-free (the common 0..n ground set): fold
        // directly, no allocation.
        return ground
            .iter()
            .fold(0u64, |acc, v| acc.wrapping_add(splitmix(v.raw())))
            .wrapping_add(ground.len() as u64);
    }
    let mut ids: Vec<u64> = ground.iter().map(|v| v.raw()).collect();
    ids.sort_unstable();
    ids.dedup();
    let len = ids.len() as u64;
    ids.into_iter().fold(0u64, |acc, id| acc.wrapping_add(splitmix(id))).wrapping_add(len)
}

fn put(bytes: &mut Vec<u8>, v: u64) {
    bytes.extend_from_slice(&v.to_le_bytes());
}

/// Everything about a greedy configuration that determines the selected
/// subset. The winner-batch width is deliberately absent: batched and
/// lockstep dataflow phases certify identical pops.
fn encode_greedy_config(bytes: &mut Vec<u8>, config: &DistGreedyConfig) {
    put(bytes, config.machines as u64);
    put(bytes, config.rounds as u64);
    put(bytes, u64::from(config.adaptive));
    put(bytes, config.seed);
    match config.schedule {
        DeltaSchedule::Linear { gamma } => {
            put(bytes, 1);
            put(bytes, gamma.to_bits());
        }
        DeltaSchedule::Geometric => {
            put(bytes, 2);
            put(bytes, 0);
        }
    }
    match &config.adversarial_first_round {
        Some(solution) => {
            put(bytes, solution.len() as u64 + 1);
            for v in solution {
                put(bytes, v.raw());
            }
        }
        None => put(bytes, 0),
    }
}

fn encode_bounding_config(bytes: &mut Vec<u8>, config: &BoundingConfig) {
    put(bytes, config.max_cycles as u64);
    match config.mode {
        BoundingMode::Exact => {
            put(bytes, 1);
        }
        BoundingMode::Approximate { p, strategy, seed } => {
            put(bytes, 2);
            put(bytes, p.to_bits());
            put(
                bytes,
                match strategy {
                    crate::SamplingStrategy::Uniform => 1,
                    crate::SamplingStrategy::Weighted => 2,
                },
            );
            put(bytes, seed);
        }
    }
}

fn run_start(
    algorithm: u64,
    fingerprint_body: &[u8],
    n: usize,
    k: usize,
    seed: u64,
    machines: usize,
    rounds: usize,
) -> Record {
    let mut bytes = Vec::with_capacity(fingerprint_body.len() + 40);
    for v in [algorithm, n as u64, k as u64, seed, machines as u64, rounds as u64] {
        put(&mut bytes, v);
    }
    bytes.extend_from_slice(fingerprint_body);
    Record::RunStart {
        fingerprint: submod_journal::checksum(&bytes),
        algorithm,
        n: n as u64,
        k: k as u64,
        seed,
        machines: machines as u64,
        rounds: rounds as u64,
    }
}

fn greedy_start(
    graph: &SimilarityGraph,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
) -> Record {
    let mut body = Vec::new();
    encode_greedy_config(&mut body, config);
    put(&mut body, ground_hash(ground));
    run_start(ALGO_GREEDY, &body, graph.num_nodes(), k, config.seed, config.machines, config.rounds)
}

/// [`crate::distributed_greedy_with_stats`] with a write-ahead journal at
/// `journal_path`: each completed round is committed to the journal, and
/// a rerun against the same path resumes from the last complete round,
/// selecting a bitwise-identical subset.
///
/// # Errors
///
/// Same conditions as [`crate::distributed_greedy`], plus journal I/O
/// failures and a refused resume when the journal at `journal_path` was
/// written by a different run configuration.
pub fn distributed_greedy_journaled(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
    journal_path: &Path,
) -> Result<(DistGreedyReport, GreedyStats), DistError> {
    let mut journal = RunJournal::open(journal_path, &greedy_start(graph, ground, k, config))?;
    let result = crate::multiround::distributed_greedy_with_journal(
        graph,
        objective,
        ground,
        k,
        config,
        Some(&mut journal),
    )?;
    journal.finish()?;
    Ok(result)
}

/// [`distributed_greedy_journaled`] on the dataflow driver. The journal
/// format and fingerprint are driver-agnostic: a run may crash under one
/// driver and resume under the other.
///
/// # Errors
///
/// Same conditions as [`distributed_greedy_journaled`], plus spill I/O
/// failures.
pub fn distributed_greedy_dataflow_journaled(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
    journal_path: &Path,
) -> Result<(DistGreedyReport, GreedyStats), DistError> {
    let mut journal = RunJournal::open(journal_path, &greedy_start(graph, ground, k, config))?;
    let result = crate::multiround::distributed_greedy_dataflow_with_journal(
        pipeline,
        graph,
        objective,
        ground,
        k,
        config,
        Some(&mut journal),
    )?;
    journal.finish()?;
    Ok(result)
}

fn greedi_start(
    graph: &SimilarityGraph,
    k: usize,
    machines: usize,
    style: PartitionStyle,
    seed: u64,
) -> Record {
    let mut body = Vec::new();
    put(
        &mut body,
        match style {
            PartitionStyle::Arbitrary => 1,
            PartitionStyle::Random => 2,
        },
    );
    run_start(ALGO_GREEDI, &body, graph.num_nodes(), k, seed, machines, 1)
}

/// [`crate::greedi`] with a write-ahead journal: the map phase (the
/// expensive part) is committed as a single round record, so a rerun
/// resumes straight at the driver-side merge.
///
/// # Errors
///
/// Same conditions as [`crate::greedi`], plus journal I/O failures and a
/// refused resume on a configuration mismatch.
pub fn greedi_journaled(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    machines: usize,
    style: PartitionStyle,
    seed: u64,
    journal_path: &Path,
) -> Result<GreediReport, DistError> {
    let mut journal =
        RunJournal::open(journal_path, &greedi_start(graph, k, machines, style, seed))?;
    let report = crate::greedi::greedi_with_journal(
        graph,
        objective,
        k,
        machines,
        style,
        seed,
        Some(&mut journal),
    )?;
    journal.finish()?;
    Ok(report)
}

/// [`greedi_journaled`] on the dataflow driver (driver-agnostic journal,
/// like [`distributed_greedy_dataflow_journaled`]).
///
/// # Errors
///
/// Same conditions as [`greedi_journaled`], plus spill I/O failures.
#[allow(clippy::too_many_arguments)]
pub fn greedi_dataflow_journaled(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    machines: usize,
    style: PartitionStyle,
    seed: u64,
    journal_path: &Path,
) -> Result<GreediReport, DistError> {
    let mut journal =
        RunJournal::open(journal_path, &greedi_start(graph, k, machines, style, seed))?;
    let report = crate::greedi::greedi_dataflow_with_journal(
        pipeline,
        graph,
        objective,
        k,
        machines,
        style,
        seed,
        Some(&mut journal),
    )?;
    journal.finish()?;
    Ok(report)
}

fn pipeline_start(graph: &SimilarityGraph, k: usize, config: &PipelineConfig) -> Record {
    let mut body = Vec::new();
    match &config.bounding {
        Some(bounding) => {
            put(&mut body, 1);
            encode_bounding_config(&mut body, bounding);
        }
        None => put(&mut body, 0),
    }
    encode_greedy_config(&mut body, &config.greedy);
    run_start(
        ALGO_PIPELINE,
        &body,
        graph.num_nodes(),
        k,
        config.greedy.seed,
        config.greedy.machines,
        config.greedy.rounds,
    )
}

/// [`crate::select_subset`] with a write-ahead journal covering the whole
/// pipeline: the run header, every bounding cycle, the bounding outcome,
/// every greedy round, and the completion marker live in one file, so a
/// crash anywhere in the pipeline resumes from the last boundary and
/// produces a bitwise-identical selection.
///
/// # Errors
///
/// Same conditions as [`crate::select_subset`], plus journal I/O failures
/// and a refused resume on a configuration mismatch.
pub fn select_subset_journaled(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    config: &PipelineConfig,
    journal_path: &Path,
) -> Result<PipelineOutcome, DistError> {
    let mut journal = RunJournal::open(journal_path, &pipeline_start(graph, k, config))?;
    let bounding = match &config.bounding {
        Some(bounding_config) => {
            let (outcome, _) = crate::bounding::bound_in_memory_with_journal(
                graph,
                objective,
                k,
                bounding_config,
                Some(&mut journal),
            )?;
            Some(outcome)
        }
        None => None,
    };
    let outcome = crate::pipeline::complete_selection_with_journal(
        graph,
        objective,
        k,
        bounding,
        &config.greedy,
        config.greedy.seed,
        Some(&mut journal),
    )?;
    journal.finish()?;
    Ok(outcome)
}
