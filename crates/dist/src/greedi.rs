//! The GreeDi / RandGreeDi baseline (Mirzasoleiman et al., *Distributed
//! Submodular Maximization*), the paper's §2 systems foil: every machine
//! solves its partition for the full budget `k`, and a single merge
//! machine re-runs greedy on the union of all `m` local solutions — so
//! the merge machine must hold `m·k` points, growing linearly with the
//! cluster size. The multi-round algorithm exists to avoid exactly that.
//!
//! The **map phase** runs through the same shared backend as the
//! multi-round algorithm (`MachineGreedyBackend`): partitions are a
//! deterministic keyed transform (contiguous chunks for the original
//! "arbitrary" analysis, a seeded hash for RandGreeDi), per-machine
//! selection advances in synchronized Algorithm-2 steps, and on the
//! dataflow driver ([`greedi_dataflow`]) the scored pool stays inside
//! the engine with only `O(machines)` winner rows collected per step.
//! The **merge phase** is deliberately driver-side on both drivers —
//! holding the `m·k`-point union on one machine *is* the baseline's
//! memory story the paper argues against.

use crate::engine::{
    run_phase, DataflowGreedyBackend, InMemoryGreedyBackend, MachineGreedyBackend, MachineKeying,
};
use crate::multiround::machine_select;
use crate::{DistError, PartitionStyle};
use submod_core::{NodeId, PairwiseObjective, Selection, SimilarityGraph};
use submod_dataflow::Pipeline;

/// Memory footprint of the centralized merge step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeStats {
    /// Points the merge machine must hold (the union of local solutions).
    pub union_size: usize,
    /// Estimated merge-machine bytes, using the paper's §3 arithmetic:
    /// 16 B of priority-queue state plus ten 16 B neighbor entries per
    /// point.
    pub merge_memory_bytes: u64,
}

/// The result of a GreeDi run.
#[derive(Clone, Debug)]
pub struct GreediReport {
    /// The final `k`-point selection, scored on the full graph.
    pub selection: Selection,
    /// The merge-step footprint the §2 argument is about.
    pub merge: MergeStats,
}

/// Bytes per point of merge-machine state (§3: priority-queue key/value
/// plus a 10-neighbor adjacency list at 16 B per entry).
const MERGE_BYTES_PER_POINT: u64 = 16 + 10 * 16;

fn validate(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    machines: usize,
) -> Result<(), DistError> {
    if machines == 0 {
        return Err(DistError::config("machine count must be at least 1"));
    }
    if objective.num_nodes() != graph.num_nodes() {
        return Err(submod_core::CoreError::UtilityLengthMismatch {
            utilities: objective.num_nodes(),
            num_nodes: graph.num_nodes(),
        }
        .into());
    }
    if k > graph.num_nodes() {
        return Err(submod_core::CoreError::BudgetTooLarge {
            budget: k,
            available: graph.num_nodes(),
        }
        .into());
    }
    Ok(())
}

/// The keyed partition assignment of a GreeDi run.
fn keying_for(style: PartitionStyle, n: usize, machines: usize, seed: u64) -> MachineKeying {
    match style {
        PartitionStyle::Arbitrary => {
            MachineKeying::Contiguous { chunk: (n as u64).div_ceil(machines as u64).max(1) }
        }
        PartitionStyle::Random => {
            MachineKeying::Hash { seed: seed ^ 0x0006_EED1, machines: machines as u64 }
        }
    }
}

/// The shared map + merge driver: identical on both backends, which is
/// what makes the in-memory and dataflow runs bitwise-identical.
///
/// With a journal, the completed map phase is committed as a single
/// round-1 record; a resume replays it and jumps straight to the
/// driver-side merge, which is recomputed deterministically.
#[allow(clippy::too_many_arguments)]
fn run_greedi(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    machines: usize,
    style: PartitionStyle,
    seed: u64,
    backend: &mut dyn MachineGreedyBackend,
    mut journal: Option<&mut crate::journal::RunJournal>,
) -> Result<GreediReport, DistError> {
    let n = graph.num_nodes();
    let replayed_union = journal.as_deref_mut().and_then(|j| j.take_greedy_round(1));
    let union: Vec<NodeId> =
        if let Some(submod_journal::Record::GreedyRound { selected, .. }) = replayed_union {
            selected.iter().map(|&v| NodeId::new(v)).collect()
        } else {
            // Map phase: every machine solves its partition for the full
            // budget `k`, one synchronized argmax step at a time.
            backend.begin_phase(keying_for(style, n, machines, seed), machines)?;
            let outcome = run_phase(backend, n, k)?;
            if let Some(j) = journal.as_mut() {
                j.append_sync(&submod_journal::Record::GreedyRound {
                    round: 1,
                    input_size: n as u64,
                    target: k as u64,
                    partitions: machines as u64,
                    seed,
                    stats: submod_journal::GreedySnapshot {
                        rounds: 1,
                        steps: outcome.steps as u64,
                        peak_step_winners: outcome.peak_step_winners as u64,
                        winners_collected: outcome.selected.len() as u64,
                        ..Default::default()
                    },
                    selected: outcome.selected.iter().map(|v| v.raw()).collect(),
                })?;
                submod_obs::faults::maybe_crash_after_round(1);
            }
            outcome.selected
        };

    // Merge phase: one machine holds the whole union and re-runs greedy.
    let union_size = union.len();
    let mut merge_pool = union;
    let chosen = machine_select(graph, objective, &mut merge_pool, k)?;
    let value = objective.evaluate(graph, &chosen);

    Ok(GreediReport {
        selection: Selection::new(chosen, Vec::new(), value),
        merge: MergeStats {
            union_size,
            merge_memory_bytes: union_size as u64 * MERGE_BYTES_PER_POINT,
        },
    })
}

/// Runs GreeDi with `machines` partitions.
///
/// `style` picks the partitioning of the original analysis
/// ([`PartitionStyle::Arbitrary`], contiguous id chunks) or the
/// randomized variant ([`PartitionStyle::Random`], a seeded hash).
///
/// # Errors
///
/// Returns an error if the objective does not match the graph, `k`
/// exceeds the ground set, or `machines` is zero.
pub fn greedi(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    machines: usize,
    style: PartitionStyle,
    seed: u64,
) -> Result<GreediReport, DistError> {
    greedi_with_journal(graph, objective, k, machines, style, seed, None)
}

/// [`greedi`] with an optional run journal — the crate-internal seam the
/// journaled entry points thread through.
pub(crate) fn greedi_with_journal(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    machines: usize,
    style: PartitionStyle,
    seed: u64,
    journal: Option<&mut crate::journal::RunJournal>,
) -> Result<GreediReport, DistError> {
    validate(graph, objective, k, machines)?;
    let ground: Vec<NodeId> = (0..graph.num_nodes()).map(NodeId::from_index).collect();
    let mut backend = InMemoryGreedyBackend::new(graph, objective, &ground);
    run_greedi(graph, objective, k, machines, style, seed, &mut backend, journal)
}

/// [`greedi`] with the map phase on the dataflow engine: partitions are
/// engine shards of the keyed pool, per-machine argmax runs as engine
/// aggregations, and the driver collects `O(machines)` winner rows per
/// step until the `m·k`-point union is assembled for the (deliberately
/// driver-side) merge.
///
/// The outcome is **identical** to [`greedi`] by construction.
///
/// # Errors
///
/// Same conditions as [`greedi`], plus spill I/O failures.
pub fn greedi_dataflow(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    machines: usize,
    style: PartitionStyle,
    seed: u64,
) -> Result<GreediReport, DistError> {
    greedi_dataflow_with_journal(pipeline, graph, objective, k, machines, style, seed, None)
}

/// [`greedi_dataflow`] with an optional run journal — the crate-internal
/// seam the journaled entry points thread through.
#[allow(clippy::too_many_arguments)]
pub(crate) fn greedi_dataflow_with_journal(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    k: usize,
    machines: usize,
    style: PartitionStyle,
    seed: u64,
    journal: Option<&mut crate::journal::RunJournal>,
) -> Result<GreediReport, DistError> {
    validate(graph, objective, k, machines)?;
    let ground: Vec<NodeId> = (0..graph.num_nodes()).map(NodeId::from_index).collect();
    let mut backend = DataflowGreedyBackend::new(pipeline, graph, objective, &ground);
    run_greedi(graph, objective, k, machines, style, seed, &mut backend, journal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use submod_core::{greedy_select, GraphBuilder};

    fn instance(n: usize) -> (SimilarityGraph, PairwiseObjective) {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u64 {
            b.add_undirected(v, (v + 3) % n as u64, 0.5).unwrap();
            b.add_undirected(v, (v + 7) % n as u64, 0.3).unwrap();
        }
        let graph = b.build();
        let utilities: Vec<f32> = (0..n).map(|i| 0.3 + ((i * 37) % 100) as f32 / 100.0).collect();
        (graph, PairwiseObjective::from_alpha(0.9, utilities).unwrap())
    }

    #[test]
    fn produces_k_points_and_merge_stats() {
        let (graph, objective) = instance(90);
        for style in [PartitionStyle::Arbitrary, PartitionStyle::Random] {
            let report = greedi(&graph, &objective, 9, 3, style, 1).unwrap();
            assert_eq!(report.selection.len(), 9);
            // 3 machines × k = 27 points on the merge machine.
            assert_eq!(report.merge.union_size, 27);
            assert_eq!(report.merge.merge_memory_bytes, 27 * MERGE_BYTES_PER_POINT);
        }
    }

    #[test]
    fn union_grows_with_machines() {
        let (graph, objective) = instance(120);
        let small = greedi(&graph, &objective, 10, 2, PartitionStyle::Random, 1).unwrap();
        let large = greedi(&graph, &objective, 10, 8, PartitionStyle::Random, 1).unwrap();
        assert!(large.merge.union_size > small.merge.union_size);
    }

    #[test]
    fn partition_smaller_than_k_returns_whole_partition() {
        let (graph, objective) = instance(40);
        // 8 machines × 5 points; k = 10 > partition size, so every machine
        // returns its whole partition and the union is the ground set.
        let report = greedi(&graph, &objective, 10, 8, PartitionStyle::Arbitrary, 1).unwrap();
        assert_eq!(report.merge.union_size, 40);
        assert_eq!(report.selection.len(), 10);
    }

    #[test]
    fn quality_tracks_centralized() {
        let (graph, objective) = instance(100);
        let central = greedy_select(&graph, &objective, 10).unwrap().objective_value();
        let report = greedi(&graph, &objective, 10, 4, PartitionStyle::Random, 3).unwrap();
        assert!(
            report.selection.objective_value() > central * 0.8,
            "GreeDi quality too low: {} vs {central}",
            report.selection.objective_value()
        );
    }

    #[test]
    fn dataflow_map_phase_is_bitwise_identical() {
        let (graph, objective) = instance(80);
        for style in [PartitionStyle::Arbitrary, PartitionStyle::Random] {
            let mem = greedi(&graph, &objective, 8, 4, style, 5).unwrap();
            let pipeline = Pipeline::new(3).unwrap();
            let df = greedi_dataflow(&pipeline, &graph, &objective, 8, 4, style, 5).unwrap();
            assert_eq!(df.selection.selected(), mem.selection.selected(), "{style:?}");
            assert_eq!(
                df.selection.objective_value().to_bits(),
                mem.selection.objective_value().to_bits()
            );
            assert_eq!(df.merge, mem.merge);
        }
    }

    #[test]
    fn validation_errors() {
        let (graph, objective) = instance(10);
        assert!(greedi(&graph, &objective, 11, 2, PartitionStyle::Random, 0).is_err());
        assert!(greedi(&graph, &objective, 2, 0, PartitionStyle::Random, 0).is_err());
    }
}
