use std::error::Error;
use std::fmt;
use submod_core::CoreError;
use submod_dataflow::DataflowError;
use submod_journal::JournalError;

/// Errors produced by the distributed selection layer.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum DistError {
    /// A configuration parameter violated its constraint.
    InvalidConfig {
        /// Description of the violated constraint.
        detail: String,
    },
    /// A centralized primitive failed in the core layer.
    Core(CoreError),
    /// A pipeline operation failed in the dataflow engine.
    Dataflow(DataflowError),
    /// A checkpoint journal could not be written, read, or resumed.
    Journal(JournalError),
}

impl DistError {
    pub(crate) fn config(detail: impl Into<String>) -> Self {
        DistError::InvalidConfig { detail: detail.into() }
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidConfig { detail } => {
                write!(f, "invalid distributed-selection config: {detail}")
            }
            DistError::Core(inner) => write!(f, "core failure: {inner}"),
            DistError::Dataflow(inner) => write!(f, "dataflow failure: {inner}"),
            DistError::Journal(inner) => write!(f, "journal failure: {inner}"),
        }
    }
}

impl Error for DistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DistError::Core(inner) => Some(inner),
            DistError::Dataflow(inner) => Some(inner),
            DistError::Journal(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<CoreError> for DistError {
    fn from(err: CoreError) -> Self {
        DistError::Core(err)
    }
}

impl From<DataflowError> for DistError {
    fn from(err: DataflowError) -> Self {
        DistError::Dataflow(err)
    }
}

impl From<JournalError> for DistError {
    fn from(err: JournalError) -> Self {
        DistError::Journal(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let err: DistError = CoreError::SelfLoop { node: 3 }.into();
        assert!(err.source().is_some());
        let err: DistError = DataflowError::InvalidArgument { detail: "x".into() }.into();
        assert!(err.source().is_some());
        let err: DistError = JournalError::UnknownRecordKind { kind: 9 }.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("journal failure"));
        assert!(DistError::config("bad p").source().is_none());
    }

    #[test]
    fn display_is_informative() {
        assert!(DistError::config("p must be positive").to_string().contains("p must be"));
    }
}
