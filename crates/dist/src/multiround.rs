//! The multi-round distributed greedy algorithm (paper §4.4).
//!
//! Each round partitions the surviving candidate pool across `m`
//! machines; every machine runs the centralized priority-queue greedy on
//! the *induced subgraph* of its partition (cross-partition edges are
//! discarded — the information loss the multi-round structure exists to
//! repair) and keeps its share of the round's Δ target. Machines execute
//! concurrently on the `submod_exec` pool, with outputs merged in
//! partition order so selections are identical at any thread count. The union of the
//! machine outputs is the next round's pool, so the pool shrinks from
//! `n` toward `k` along the [`DeltaSchedule`], and no machine ever holds
//! more than one round-1 partition (`⌈n/m⌉` points) — the §2 systems
//! contrast with GreeDi's `m·k`-point merge.
//!
//! With [`DistGreedyConfig::adaptive`] the partition count drops as the
//! pool shrinks, so machines stay full and late rounds approach the
//! centralized algorithm — the §6.4 worst-case repair.

use crate::{DistError, DistGreedyConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use submod_core::{greedy_select, NodeId, NodeSet, PairwiseObjective, Selection, SimilarityGraph};
use submod_dataflow::Pipeline;

/// Per-round execution statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// 1-based round number.
    pub round: usize,
    /// Candidate-pool size entering the round.
    pub input_size: usize,
    /// The round's Δ pool target from the schedule.
    pub target: usize,
    /// Partitions actually used this round.
    pub partitions: usize,
    /// Candidate-pool size leaving the round.
    pub output_size: usize,
}

/// The result of a multi-round distributed greedy run.
#[derive(Clone, Debug)]
pub struct DistGreedyReport {
    /// The final `k`-point selection, scored on the *full* graph.
    pub selection: Selection,
    /// Per-round statistics, one entry per configured round.
    pub rounds: Vec<RoundStats>,
}

fn validate(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
) -> Result<(), DistError> {
    if objective.num_nodes() != graph.num_nodes() {
        return Err(submod_core::CoreError::UtilityLengthMismatch {
            utilities: objective.num_nodes(),
            num_nodes: graph.num_nodes(),
        }
        .into());
    }
    if k > ground.len() {
        return Err(
            submod_core::CoreError::BudgetTooLarge { budget: k, available: ground.len() }.into()
        );
    }
    for &v in ground {
        if v.index() >= graph.num_nodes() {
            return Err(submod_core::CoreError::NodeOutOfBounds {
                node: v.raw(),
                num_nodes: graph.num_nodes(),
            }
            .into());
        }
    }
    Ok(())
}

/// Runs the local greedy of one machine: the induced subgraph of
/// `partition` (sorted ascending so tie-breaking matches the centralized
/// reference), local utilities, budget `quota`.
pub(crate) fn machine_select(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    partition: &mut [NodeId],
    quota: usize,
) -> Result<Vec<NodeId>, DistError> {
    partition.sort_unstable();
    let quota = quota.min(partition.len());
    if quota == 0 {
        return Ok(Vec::new());
    }
    let local_graph = graph.induced_subgraph(partition);
    let local_utilities: Vec<f32> =
        partition.iter().map(|&v| objective.utility(v) as f32).collect();
    let local_objective =
        PairwiseObjective::new(objective.alpha(), objective.beta(), local_utilities)?;
    let local = greedy_select(&local_graph, &local_objective, quota)?;
    Ok(local.selected().iter().map(|&l| partition[l.index()]).collect())
}

/// How many partitions round `t` uses for a pool of `pool_len` points.
fn round_partitions(config: &DistGreedyConfig, pool_len: usize, capacity: usize) -> usize {
    if pool_len == 0 {
        return 1;
    }
    if config.adaptive {
        pool_len.div_ceil(capacity).clamp(1, config.machines)
    } else {
        config.machines.min(pool_len)
    }
}

/// Deterministic per-round partition assignment. Returns `partitions`
/// buckets covering `pool`.
fn assign_partitions(
    pool: &[NodeId],
    partitions: usize,
    round: usize,
    config: &DistGreedyConfig,
    rng: &mut StdRng,
) -> Vec<Vec<NodeId>> {
    let mut shuffled = pool.to_vec();
    shuffled.shuffle(rng);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); partitions];
    if round == 1 {
        if let Some(solution) = &config.adversarial_first_round {
            // Worst case (§6.4): the whole reference solution lands on
            // machine 0; everyone else is spread round-robin.
            let forced: NodeSet = solution.iter().copied().collect::<NodeSet>();
            let mut slot = 0usize;
            for v in shuffled {
                if forced.contains(v) {
                    buckets[0].push(v);
                } else {
                    buckets[slot % partitions].push(v);
                    slot += 1;
                }
            }
            return buckets;
        }
    }
    let chunk = pool.len().div_ceil(partitions).max(1);
    for (i, v) in shuffled.into_iter().enumerate() {
        buckets[(i / chunk).min(partitions - 1)].push(v);
    }
    buckets
}

/// Tops `chosen` up to `k` points with the best not-yet-chosen
/// candidates by utility (descending, id tie-break) — the shared safety
/// net for degenerate pools, used by both the round driver and the
/// pipeline completion.
pub(crate) fn fill_by_utility(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    chosen: &mut Vec<NodeId>,
    candidates: &[NodeId],
    k: usize,
) {
    if chosen.len() >= k {
        return;
    }
    let members = NodeSet::from_members(graph.num_nodes(), chosen.iter().copied());
    let mut spare: Vec<NodeId> =
        candidates.iter().copied().filter(|&v| !members.contains(v)).collect();
    spare.sort_by(|&a, &b| objective.utility(b).total_cmp(&objective.utility(a)).then(a.cmp(&b)));
    chosen.extend(spare.into_iter().take(k - chosen.len()));
}

/// Closes a run: trims an oversized pool with one greedy pass, tops up an
/// undersized one by utility, and scores the result on the full graph.
fn finalize(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    mut pool: Vec<NodeId>,
    k: usize,
) -> Result<Selection, DistError> {
    if pool.len() > k {
        pool = machine_select(graph, objective, &mut pool, k)?;
    }
    // Degenerate partitions may have under-filled the budget.
    fill_by_utility(graph, objective, &mut pool, ground, k);
    let value = objective.evaluate(graph, &pool);
    Ok(Selection::new(pool, Vec::new(), value))
}

/// Runs the multi-round distributed greedy algorithm over `ground`.
///
/// The returned selection always has exactly `k` distinct points; its
/// objective value is re-evaluated on the full graph (partition-local
/// accounting discards cross-partition edges and would overcount).
///
/// # Errors
///
/// Returns an error if the objective does not match the graph, `k`
/// exceeds the ground set, or a ground id is out of bounds.
pub fn distributed_greedy(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
) -> Result<DistGreedyReport, DistError> {
    validate(graph, objective, ground, k)?;
    let n0 = ground.len();
    let capacity = n0.div_ceil(config.machines).max(1);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xD157_6EED);
    let mut pool: Vec<NodeId> = ground.to_vec();
    let mut rounds = Vec::with_capacity(config.rounds);

    for round in 1..=config.rounds {
        let target = config.schedule.target(n0, k, round, config.rounds);
        let input_size = pool.len();
        let partitions = round_partitions(config, pool.len(), capacity);
        let buckets = assign_partitions(&pool, partitions, round, config, &mut rng);
        let quota = target.div_ceil(partitions);
        // Every machine of the round runs concurrently on the pool;
        // results are merged in partition order, so the outcome is
        // identical to the sequential loop at any thread count.
        let machine_outputs = submod_exec::parallel_map_result(buckets, |mut bucket| {
            machine_select(graph, objective, &mut bucket, quota)
        })?;
        let mut next = Vec::with_capacity(partitions * quota);
        for chosen in machine_outputs {
            next.extend(chosen);
        }
        rounds.push(RoundStats { round, input_size, target, partitions, output_size: next.len() });
        pool = next;
    }

    let selection = finalize(graph, objective, ground, pool, k)?;
    Ok(DistGreedyReport { selection, rounds })
}

/// [`distributed_greedy`] on the dataflow engine: the pool lives in a
/// [`submod_dataflow::PCollection`], rounds shuffle it by partition key,
/// and each partition's greedy runs inside a `flat_map` — one group (one
/// partition) at a time, exactly the paper's per-machine memory story.
///
/// Partition assignment hashes node ids instead of drawing a global
/// permutation, so outputs can differ from the in-memory driver by the
/// partitioning draw (quality is equivalent; the baselines suite checks a
/// ±10 % band).
///
/// # Errors
///
/// Same conditions as [`distributed_greedy`], plus spill I/O failures.
pub fn distributed_greedy_dataflow(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
) -> Result<DistGreedyReport, DistError> {
    validate(graph, objective, ground, k)?;
    let n0 = ground.len();
    let capacity = n0.div_ceil(config.machines).max(1);
    let mut pool = pipeline.from_vec(ground.iter().map(|v| v.raw()).collect::<Vec<u64>>());
    let mut rounds = Vec::with_capacity(config.rounds);

    for round in 1..=config.rounds {
        let target = config.schedule.target(n0, k, round, config.rounds);
        let input_size = pool.count()? as usize;
        let partitions = round_partitions(config, input_size, capacity);
        let quota = target.div_ceil(partitions);
        let seed = config.seed ^ (round as u64) << 32;
        let adversarial = config
            .adversarial_first_round
            .as_ref()
            .map(|solution| NodeSet::from_members(graph.num_nodes(), solution.iter().copied()));
        let keyed = pool.map(move |v| {
            if round == 1 {
                if let Some(forced) = &adversarial {
                    if forced.contains(NodeId::new(v)) {
                        return (0u64, v);
                    }
                }
            }
            (partition_key(seed, v) % partitions as u64, v)
        })?;
        // `flat_map` closures cannot return `Result`, so machine failures
        // are parked in a slot and re-raised after the transform — the
        // dataflow driver keeps the same error contract as the in-memory
        // one.
        let machine_error: std::sync::Mutex<Option<DistError>> = std::sync::Mutex::new(None);
        let selected = keyed.group_by_key()?.flat_map(|(_, members)| {
            let mut bucket: Vec<NodeId> = members.into_iter().map(NodeId::new).collect();
            match machine_select(graph, objective, &mut bucket, quota) {
                Ok(chosen) => chosen.into_iter().map(|v| v.raw()).collect::<Vec<u64>>(),
                Err(err) => {
                    machine_error.lock().expect("machine error slot").get_or_insert(err);
                    Vec::new()
                }
            }
        })?;
        if let Some(err) = machine_error.into_inner().expect("machine error slot") {
            return Err(err);
        }
        let output_size = selected.count()? as usize;
        rounds.push(RoundStats { round, input_size, target, partitions, output_size });
        pool = selected;
    }

    let final_pool: Vec<NodeId> = pool.collect()?.into_iter().map(NodeId::new).collect();
    let selection = finalize(graph, objective, ground, final_pool, k)?;
    Ok(DistGreedyReport { selection, rounds })
}

/// splitmix64 partition key: deterministic, uncorrelated across rounds.
fn partition_key(seed: u64, node: u64) -> u64 {
    crate::mix::mix_seed_node(seed, node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use submod_core::GraphBuilder;

    fn ring_instance(n: usize) -> (SimilarityGraph, PairwiseObjective) {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u64 {
            b.add_undirected(v, (v + 1) % n as u64, 0.6).unwrap();
        }
        let graph = b.build();
        let utilities: Vec<f32> = (0..n).map(|i| 1.0 - i as f32 * 0.5 / n as f32).collect();
        let objective = PairwiseObjective::from_alpha(0.8, utilities).unwrap();
        (graph, objective)
    }

    fn ground(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::from_index).collect()
    }

    #[test]
    fn single_partition_single_round_equals_centralized() {
        let (graph, objective) = ring_instance(40);
        let config = DistGreedyConfig::new(1, 1).unwrap().seed(9);
        let report = distributed_greedy(&graph, &objective, &ground(40), 10, &config).unwrap();
        let central = greedy_select(&graph, &objective, 10).unwrap();
        assert_eq!(report.selection.selected(), central.selected());
        assert!((report.selection.objective_value() - central.objective_value()).abs() < 1e-9);
    }

    #[test]
    fn returns_exactly_k_unique_points() {
        let (graph, objective) = ring_instance(60);
        for (machines, rounds) in [(3usize, 1usize), (4, 3), (8, 8), (60, 2)] {
            let config = DistGreedyConfig::new(machines, rounds).unwrap().seed(1);
            let report = distributed_greedy(&graph, &objective, &ground(60), 12, &config).unwrap();
            assert_eq!(report.selection.len(), 12, "{machines}x{rounds}");
            let mut ids: Vec<u64> = report.selection.selected().iter().map(|v| v.raw()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 12, "{machines}x{rounds} duplicates");
            assert_eq!(report.rounds.len(), rounds);
        }
    }

    #[test]
    fn round_stats_are_coherent() {
        let (graph, objective) = ring_instance(80);
        let config = DistGreedyConfig::new(4, 4).unwrap().seed(3);
        let report = distributed_greedy(&graph, &objective, &ground(80), 8, &config).unwrap();
        for (i, stats) in report.rounds.iter().enumerate() {
            assert_eq!(stats.round, i + 1);
            assert!(stats.partitions >= 1 && stats.partitions <= 4);
            assert!(stats.target >= 8);
            assert!(stats.output_size <= stats.input_size);
        }
        assert_eq!(report.rounds.last().unwrap().target, 8);
    }

    #[test]
    fn adaptive_uses_fewer_partitions_late() {
        let (graph, objective) = ring_instance(100);
        let config = DistGreedyConfig::new(10, 6).unwrap().adaptive(true).seed(2);
        let report = distributed_greedy(&graph, &objective, &ground(100), 10, &config).unwrap();
        let first = report.rounds.first().unwrap().partitions;
        let last = report.rounds.last().unwrap().partitions;
        assert!(last < first, "adaptive must shrink partitions ({first} -> {last})");
        // A pool that fits one machine uses exactly one partition.
        let config = DistGreedyConfig::new(10, 1).unwrap().adaptive(true);
        assert_eq!(super::round_partitions(&config, 10, 10), 1);
        assert_eq!(super::round_partitions(&config, 95, 10), 10);
        assert_eq!(super::round_partitions(&config, 35, 10), 4);
    }

    #[test]
    fn adversarial_first_round_concentrates_then_recovers() {
        let (graph, objective) = ring_instance(60);
        let central = greedy_select(&graph, &objective, 6).unwrap();
        let config = DistGreedyConfig::new(6, 6)
            .unwrap()
            .seed(4)
            .adversarial_first_round(central.selected().to_vec());
        let report = distributed_greedy(&graph, &objective, &ground(60), 6, &config).unwrap();
        assert_eq!(report.selection.len(), 6);
        assert!(
            report.selection.objective_value() > central.objective_value() * 0.8,
            "multi-round must recover most of the adversarial loss"
        );
    }

    #[test]
    fn seed_determinism() {
        let (graph, objective) = ring_instance(50);
        let config = DistGreedyConfig::new(5, 3).unwrap().seed(11);
        let a = distributed_greedy(&graph, &objective, &ground(50), 10, &config).unwrap();
        let b = distributed_greedy(&graph, &objective, &ground(50), 10, &config).unwrap();
        assert_eq!(a.selection.selected(), b.selection.selected());
    }

    #[test]
    fn validation_errors() {
        let (graph, objective) = ring_instance(10);
        let config = DistGreedyConfig::new(2, 1).unwrap();
        assert!(distributed_greedy(&graph, &objective, &ground(10), 11, &config).is_err());
        let bad = vec![NodeId::new(99)];
        assert!(distributed_greedy(&graph, &objective, &bad, 1, &config).is_err());
    }

    #[test]
    fn dataflow_variant_matches_quality() {
        let (graph, objective) = ring_instance(60);
        let config = DistGreedyConfig::new(4, 3).unwrap().seed(5);
        let mem = distributed_greedy(&graph, &objective, &ground(60), 12, &config).unwrap();
        let pipeline = Pipeline::new(3).unwrap();
        let df =
            distributed_greedy_dataflow(&pipeline, &graph, &objective, &ground(60), 12, &config)
                .unwrap();
        assert_eq!(df.selection.len(), 12);
        let ratio = df.selection.objective_value() / mem.selection.objective_value();
        assert!((0.8..=1.25).contains(&ratio), "quality ratio {ratio}");
    }
}
