//! The multi-round distributed greedy algorithm (paper §4.4),
//! engine-resident.
//!
//! Each round keys the surviving candidate pool across `m` machines with
//! a deterministic hash ([`crate::engine::MachineKeying`]); every machine
//! then runs the centralized priority-queue greedy over its partition
//! (cross-partition edges are ignored — the information loss the
//! multi-round structure exists to repair) in **synchronized steps**: one
//! pop per machine per step, with the previous winners' neighbors
//! receiving Algorithm 2's priority decrease between steps. The union of
//! the machine selections is the next round's pool, so the pool shrinks
//! from `n` toward `k` along the [`DeltaSchedule`], and a machine holds
//! one round-1 partition — `n/m` points in expectation (the hash keying
//! balances binomially, not exactly) — the §2 systems contrast with
//! GreeDi's `m·k`-point merge.
//!
//! Both drivers run the identical round loop over a shared backend
//! (`MachineGreedyBackend`, the greedy counterpart of bounding's
//! `PassBackend`): the in-memory driver holds per-machine priority
//! queues (`O(pool)` driver bytes per round), while
//! [`distributed_greedy_dataflow`] keeps the scored pool inside the
//! engine and the driver only ever collects the `O(machines)` winner
//! rows of each step plus the Δ-schedule bookkeeping. Their selections
//! are **bitwise identical** at any thread count — the cross-driver
//! differential suite pins this.
//!
//! With [`DistGreedyConfig::adaptive`] the partition count drops as the
//! pool shrinks, so machines stay full and late rounds approach the
//! centralized algorithm — the §6.4 worst-case repair.
//!
//! [`DeltaSchedule`]: crate::DeltaSchedule

use crate::engine::{
    run_phase, DataflowGreedyBackend, InMemoryGreedyBackend, MachineGreedyBackend, MachineKeying,
};
use crate::{DistError, DistGreedyConfig};
use std::sync::Arc;
use submod_core::{greedy_select, NodeId, NodeSet, PairwiseObjective, Selection, SimilarityGraph};
use submod_dataflow::Pipeline;
use submod_journal::Record;

/// Per-round execution statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// 1-based round number.
    pub round: usize,
    /// Candidate-pool size entering the round.
    pub input_size: usize,
    /// The round's Δ pool target from the schedule.
    pub target: usize,
    /// Partitions actually used this round.
    pub partitions: usize,
    /// Candidate-pool size leaving the round.
    pub output_size: usize,
}

/// The result of a multi-round distributed greedy run.
#[derive(Clone, Debug)]
pub struct DistGreedyReport {
    /// The final `k`-point selection, scored on the *full* graph.
    pub selection: Selection,
    /// Per-round statistics, one entry per configured round.
    pub rounds: Vec<RoundStats>,
}

/// Driver-side memory accounting for one multi-round greedy run — the §5
/// larger-than-memory claim, greedy edition.
///
/// The *driver* is the process orchestrating the rounds. What
/// distinguishes the drivers is `peak_round_bytes`, the largest per-round
/// materialization: the in-memory driver keys the whole pool into
/// per-machine priority queues (`O(pool)` per round), while the
/// engine-resident dataflow driver only ever collects the per-step winner
/// rows (`O(machines)` per step, `O(candidates)` per round — `candidates`
/// being the round's selected points). Persistent driver state is the
/// round's winner set and order: `O(round output)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GreedyStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Synchronized argmax steps executed across all rounds.
    pub steps: usize,
    /// Peak bytes of per-round driver-side materializations (keyed pool
    /// and queues for the in-memory driver; collected winner rows alone
    /// for the dataflow driver).
    pub peak_round_bytes: u64,
    /// Largest single-step winner collection (bounded by the machine
    /// count).
    pub peak_step_winners: usize,
    /// Winner rows collected across the whole run.
    pub winners_collected: usize,
    /// Peak bytes of persistent driver state: the round's winner bitset,
    /// the ordered winner list, and the round statistics.
    pub peak_state_bytes: u64,
    /// Bytes replicated to workers as broadcast side-inputs (previous
    /// winners and survivor bitsets; 0 for the in-memory driver).
    pub bytes_broadcast: u64,
}

impl GreedyStats {
    fn observe_round(
        &mut self,
        round_bytes: u64,
        steps: usize,
        peak_step_winners: usize,
        winners: usize,
        state_bytes: u64,
    ) {
        self.rounds += 1;
        self.steps += steps;
        self.peak_round_bytes = self.peak_round_bytes.max(round_bytes);
        self.peak_step_winners = self.peak_step_winners.max(peak_step_winners);
        self.winners_collected += winners;
        self.peak_state_bytes = self.peak_state_bytes.max(state_bytes);
        // Mirror into the metrics registry — the workspace-wide source of
        // truth `--report-memory` reads; the struct keeps its exact
        // per-run semantics for the driver-contrast tests.
        submod_obs::counter!("greedy.rounds").incr();
        submod_obs::counter!("greedy.steps").add(steps as u64);
        submod_obs::counter!("greedy.winners_collected").add(winners as u64);
        submod_obs::gauge!("greedy.peak_round_bytes").fetch_max(round_bytes);
        submod_obs::gauge!("greedy.peak_step_winners").fetch_max(peak_step_winners as u64);
        submod_obs::gauge!("greedy.peak_state_bytes").fetch_max(state_bytes);
    }
}

fn validate(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
) -> Result<(), DistError> {
    if objective.num_nodes() != graph.num_nodes() {
        return Err(submod_core::CoreError::UtilityLengthMismatch {
            utilities: objective.num_nodes(),
            num_nodes: graph.num_nodes(),
        }
        .into());
    }
    if k > ground.len() {
        return Err(
            submod_core::CoreError::BudgetTooLarge { budget: k, available: ground.len() }.into()
        );
    }
    for &v in ground {
        if v.index() >= graph.num_nodes() {
            return Err(submod_core::CoreError::NodeOutOfBounds {
                node: v.raw(),
                num_nodes: graph.num_nodes(),
            }
            .into());
        }
    }
    Ok(())
}

/// Runs the local greedy of one machine: the induced subgraph of
/// `partition` (sorted ascending so tie-breaking matches the centralized
/// reference), local utilities, budget `quota`. Retained as the
/// driver-side merge/trim kernel (GreeDi's merge machine, the finalize
/// trim) — per-round machine selection now runs through the shared
/// backend instead.
pub(crate) fn machine_select(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    partition: &mut [NodeId],
    quota: usize,
) -> Result<Vec<NodeId>, DistError> {
    partition.sort_unstable();
    let quota = quota.min(partition.len());
    if quota == 0 {
        return Ok(Vec::new());
    }
    let local_graph = graph.induced_subgraph(partition);
    let local_utilities: Vec<f32> =
        partition.iter().map(|&v| objective.utility(v) as f32).collect();
    let local_objective =
        PairwiseObjective::new(objective.alpha(), objective.beta(), local_utilities)?;
    let local = greedy_select(&local_graph, &local_objective, quota)?;
    Ok(local.selected().iter().map(|&l| partition[l.index()]).collect())
}

/// How many partitions round `t` uses for a pool of `pool_len` points.
fn round_partitions(config: &DistGreedyConfig, pool_len: usize, capacity: usize) -> usize {
    if pool_len == 0 {
        return 1;
    }
    if config.adaptive {
        pool_len.div_ceil(capacity).clamp(1, config.machines)
    } else {
        config.machines.min(pool_len)
    }
}

/// Tops `chosen` up to `k` points with the best not-yet-chosen
/// candidates by utility (descending, id tie-break) — the shared safety
/// net for degenerate pools, used by both the round driver and the
/// pipeline completion.
pub(crate) fn fill_by_utility(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    chosen: &mut Vec<NodeId>,
    candidates: &[NodeId],
    k: usize,
) {
    if chosen.len() >= k {
        return;
    }
    let members = NodeSet::from_members(graph.num_nodes(), chosen.iter().copied());
    let mut spare: Vec<NodeId> =
        candidates.iter().copied().filter(|&v| !members.contains(v)).collect();
    spare.sort_by(|&a, &b| objective.utility(b).total_cmp(&objective.utility(a)).then(a.cmp(&b)));
    chosen.extend(spare.into_iter().take(k - chosen.len()));
}

/// Closes a run: trims an oversized pool with one greedy pass, tops up an
/// undersized one by utility, and scores the result on the full graph.
/// Runs on the driver over the final `O(k)`-sized pool — identical input
/// on both drivers, hence identical output.
fn finalize(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    mut pool: Vec<NodeId>,
    k: usize,
) -> Result<Selection, DistError> {
    if pool.len() > k {
        pool = machine_select(graph, objective, &mut pool, k)?;
    }
    // Degenerate partitions may have under-filled the budget.
    fill_by_utility(graph, objective, &mut pool, ground, k);
    let value = objective.evaluate(graph, &pool);
    Ok(Selection::new(pool, Vec::new(), value))
}

/// The shared round driver. The backend produces per-step winner rows;
/// everything downstream — the Δ-schedule targets, partition counts,
/// keying, winner accounting, and the final trim — is common code, which
/// is what guarantees in-memory/dataflow equality.
///
/// With a journal, every completed round is committed (append + fsync)
/// before the next begins, and rounds the journal already holds are
/// replayed instead of executed: the pool, cumulative stats, and
/// per-round bookkeeping are restored from the records, the backend's
/// pool is rebuilt at the replay→live transition, and the remaining
/// rounds run exactly as an uninterrupted run would.
fn run_multiround(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
    backend: &mut dyn MachineGreedyBackend,
    mut journal: Option<&mut crate::journal::RunJournal>,
) -> Result<(DistGreedyReport, GreedyStats), DistError> {
    let _span = submod_obs::span("greedy.run");
    let n = graph.num_nodes();
    let n0 = backend.pool_len();
    let capacity = n0.div_ceil(config.machines).max(1);
    let adversarial: Option<Arc<NodeSet>> = config
        .adversarial_first_round
        .as_ref()
        .map(|solution| Arc::new(NodeSet::from_members(n, solution.iter().copied())));

    let mut stats = GreedyStats::default();
    let mut pool_len = n0;
    let mut rounds = Vec::with_capacity(config.rounds);
    let mut final_pool: Vec<NodeId> = Vec::new();
    // While rounds replay from the journal the backend's pool is stale;
    // `replayed_pool` carries the journal's pool until the first live
    // round restores it into the backend. Broadcast bytes accumulated
    // before the crash live only in the journal, so the backend's delta
    // is offset by the last replayed snapshot.
    let mut replayed_pool: Option<Vec<u64>> = None;
    let mut broadcast_base = 0u64;

    for round in 1..=config.rounds {
        if let Some(j) = journal.as_deref_mut() {
            if let Some(Record::GreedyRound {
                input_size,
                target,
                partitions,
                stats: snapshot,
                selected,
                ..
            }) = j.take_greedy_round(round)
            {
                stats = crate::journal::restore_greedy(&snapshot);
                broadcast_base = snapshot.bytes_broadcast;
                rounds.push(RoundStats {
                    round,
                    input_size: input_size as usize,
                    target: target as usize,
                    partitions: partitions as usize,
                    output_size: selected.len(),
                });
                pool_len = selected.len();
                final_pool = selected.iter().map(|&v| NodeId::new(v)).collect();
                replayed_pool = Some(selected);
                continue;
            }
        }
        if let Some(pool) = replayed_pool.take() {
            backend.restore_pool(&pool)?;
        }
        let target = config.schedule.target(n0, k, round, config.rounds);
        let partitions = round_partitions(config, pool_len, capacity);
        let quota = target.div_ceil(partitions);
        let seed = config.seed ^ (round as u64) << 32;
        let keying = match (&adversarial, round) {
            (Some(forced), 1) => MachineKeying::HashForced {
                seed,
                machines: partitions as u64,
                forced: forced.clone(),
            },
            _ => MachineKeying::Hash { seed, machines: partitions as u64 },
        };
        let round_span = submod_obs::span("greedy.round");
        let phase_bytes = backend.begin_phase(keying, partitions)?;
        let outcome = run_phase(backend, n, quota)?;
        backend.end_phase(&outcome.members)?;
        drop(round_span);
        let state_bytes = (size_of_val(outcome.members.words())
            + outcome.selected.len() * size_of::<u64>()
            + (rounds.len() + 1) * size_of::<RoundStats>()) as u64;
        stats.observe_round(
            phase_bytes + outcome.driver_bytes,
            outcome.steps,
            outcome.peak_step_winners,
            outcome.selected.len(),
            state_bytes,
        );
        rounds.push(RoundStats {
            round,
            input_size: pool_len,
            target,
            partitions,
            output_size: outcome.selected.len(),
        });
        if let Some(j) = journal.as_deref_mut() {
            j.append_sync(&Record::GreedyRound {
                round: round as u64,
                input_size: pool_len as u64,
                target: target as u64,
                partitions: partitions as u64,
                seed,
                stats: crate::journal::snapshot_greedy(
                    &stats,
                    broadcast_base + backend.bytes_broadcast(),
                ),
                selected: outcome.selected.iter().map(|v| v.raw()).collect(),
            })?;
            // Only journaled runs host the injected crash: the abort is
            // specified to land right after a round's fsync, the state a
            // resume has to recover from.
            submod_obs::faults::maybe_crash_after_round(round as u64);
        }
        pool_len = outcome.selected.len();
        final_pool = outcome.selected;
    }
    stats.bytes_broadcast = broadcast_base + backend.bytes_broadcast();
    submod_obs::gauge!("greedy.bytes_broadcast").fetch_max(stats.bytes_broadcast);

    let selection = finalize(graph, objective, ground, final_pool, k)?;
    Ok((DistGreedyReport { selection, rounds }, stats))
}

/// Runs the multi-round distributed greedy algorithm over `ground`.
///
/// The returned selection always has exactly `k` distinct points; its
/// objective value is re-evaluated on the full graph (partition-local
/// accounting discards cross-partition edges and would overcount).
///
/// # Errors
///
/// Returns an error if the objective does not match the graph, `k`
/// exceeds the ground set, or a ground id is out of bounds.
pub fn distributed_greedy(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
) -> Result<DistGreedyReport, DistError> {
    distributed_greedy_with_stats(graph, objective, ground, k, config).map(|(report, _)| report)
}

/// [`distributed_greedy`] plus the driver-side memory accounting.
///
/// # Errors
///
/// Same conditions as [`distributed_greedy`].
pub fn distributed_greedy_with_stats(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
) -> Result<(DistGreedyReport, GreedyStats), DistError> {
    distributed_greedy_with_journal(graph, objective, ground, k, config, None)
}

/// [`distributed_greedy_with_stats`] with an optional run journal —
/// the crate-internal seam the journaled entry points thread through.
pub(crate) fn distributed_greedy_with_journal(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
    journal: Option<&mut crate::journal::RunJournal>,
) -> Result<(DistGreedyReport, GreedyStats), DistError> {
    validate(graph, objective, ground, k)?;
    let mut backend = InMemoryGreedyBackend::new(graph, objective, ground);
    run_multiround(graph, objective, ground, k, config, &mut backend, journal)
}

/// [`distributed_greedy`] on the dataflow engine: the scored pool lives
/// in a [`submod_dataflow::PCollection`], partition assignment is the
/// same deterministic keyed transform, per-machine argmax runs as
/// engine-side aggregations, and the driver only collects the
/// `O(machines)` winner rows of each step.
///
/// The outcome is **identical** to [`distributed_greedy`] by
/// construction: both drivers share the round loop, the keying, the
/// priority arithmetic, and the tie order.
///
/// # Errors
///
/// Same conditions as [`distributed_greedy`], plus spill I/O failures.
pub fn distributed_greedy_dataflow(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
) -> Result<DistGreedyReport, DistError> {
    distributed_greedy_dataflow_with_stats(pipeline, graph, objective, ground, k, config)
        .map(|(report, _)| report)
}

/// [`distributed_greedy_dataflow`] plus the driver-side memory
/// accounting that proves the pool stayed engine-resident:
/// `peak_round_bytes` covers only the collected winner rows.
///
/// # Errors
///
/// Same conditions as [`distributed_greedy_dataflow`].
pub fn distributed_greedy_dataflow_with_stats(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
) -> Result<(DistGreedyReport, GreedyStats), DistError> {
    distributed_greedy_dataflow_with_journal(pipeline, graph, objective, ground, k, config, None)
}

/// [`distributed_greedy_dataflow_with_stats`] with an optional run
/// journal — the crate-internal seam the journaled entry points thread
/// through.
pub(crate) fn distributed_greedy_dataflow_with_journal(
    pipeline: &Pipeline,
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    ground: &[NodeId],
    k: usize,
    config: &DistGreedyConfig,
    journal: Option<&mut crate::journal::RunJournal>,
) -> Result<(DistGreedyReport, GreedyStats), DistError> {
    validate(graph, objective, ground, k)?;
    let mut backend = DataflowGreedyBackend::new(pipeline, graph, objective, ground)
        .with_winner_batch(config.winner_batch);
    run_multiround(graph, objective, ground, k, config, &mut backend, journal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use submod_core::GraphBuilder;

    fn ring_instance(n: usize) -> (SimilarityGraph, PairwiseObjective) {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u64 {
            b.add_undirected(v, (v + 1) % n as u64, 0.6).unwrap();
        }
        let graph = b.build();
        let utilities: Vec<f32> = (0..n).map(|i| 1.0 - i as f32 * 0.5 / n as f32).collect();
        let objective = PairwiseObjective::from_alpha(0.8, utilities).unwrap();
        (graph, objective)
    }

    fn ground(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::from_index).collect()
    }

    #[test]
    fn single_partition_single_round_equals_centralized() {
        let (graph, objective) = ring_instance(40);
        let config = DistGreedyConfig::new(1, 1).unwrap().seed(9);
        let report = distributed_greedy(&graph, &objective, &ground(40), 10, &config).unwrap();
        let central = greedy_select(&graph, &objective, 10).unwrap();
        assert_eq!(report.selection.selected(), central.selected());
        assert!((report.selection.objective_value() - central.objective_value()).abs() < 1e-9);
    }

    #[test]
    fn returns_exactly_k_unique_points() {
        let (graph, objective) = ring_instance(60);
        for (machines, rounds) in [(3usize, 1usize), (4, 3), (8, 8), (60, 2)] {
            let config = DistGreedyConfig::new(machines, rounds).unwrap().seed(1);
            let report = distributed_greedy(&graph, &objective, &ground(60), 12, &config).unwrap();
            assert_eq!(report.selection.len(), 12, "{machines}x{rounds}");
            let mut ids: Vec<u64> = report.selection.selected().iter().map(|v| v.raw()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 12, "{machines}x{rounds} duplicates");
            assert_eq!(report.rounds.len(), rounds);
        }
    }

    #[test]
    fn round_stats_are_coherent() {
        let (graph, objective) = ring_instance(80);
        let config = DistGreedyConfig::new(4, 4).unwrap().seed(3);
        let report = distributed_greedy(&graph, &objective, &ground(80), 8, &config).unwrap();
        for (i, stats) in report.rounds.iter().enumerate() {
            assert_eq!(stats.round, i + 1);
            assert!(stats.partitions >= 1 && stats.partitions <= 4);
            assert!(stats.target >= 8);
            assert!(stats.output_size <= stats.input_size);
        }
        assert_eq!(report.rounds.last().unwrap().target, 8);
    }

    #[test]
    fn adaptive_uses_fewer_partitions_late() {
        let (graph, objective) = ring_instance(100);
        let config = DistGreedyConfig::new(10, 6).unwrap().adaptive(true).seed(2);
        let report = distributed_greedy(&graph, &objective, &ground(100), 10, &config).unwrap();
        let first = report.rounds.first().unwrap().partitions;
        let last = report.rounds.last().unwrap().partitions;
        assert!(last < first, "adaptive must shrink partitions ({first} -> {last})");
        // A pool that fits one machine uses exactly one partition.
        let config = DistGreedyConfig::new(10, 1).unwrap().adaptive(true);
        assert_eq!(super::round_partitions(&config, 10, 10), 1);
        assert_eq!(super::round_partitions(&config, 95, 10), 10);
        assert_eq!(super::round_partitions(&config, 35, 10), 4);
    }

    #[test]
    fn adversarial_first_round_concentrates_then_recovers() {
        let (graph, objective) = ring_instance(60);
        let central = greedy_select(&graph, &objective, 6).unwrap();
        let config = DistGreedyConfig::new(6, 6)
            .unwrap()
            .seed(4)
            .adversarial_first_round(central.selected().to_vec());
        let report = distributed_greedy(&graph, &objective, &ground(60), 6, &config).unwrap();
        assert_eq!(report.selection.len(), 6);
        assert!(
            report.selection.objective_value() > central.objective_value() * 0.8,
            "multi-round must recover most of the adversarial loss"
        );
    }

    #[test]
    fn seed_determinism() {
        let (graph, objective) = ring_instance(50);
        let config = DistGreedyConfig::new(5, 3).unwrap().seed(11);
        let a = distributed_greedy(&graph, &objective, &ground(50), 10, &config).unwrap();
        let b = distributed_greedy(&graph, &objective, &ground(50), 10, &config).unwrap();
        assert_eq!(a.selection.selected(), b.selection.selected());
    }

    #[test]
    fn validation_errors() {
        let (graph, objective) = ring_instance(10);
        let config = DistGreedyConfig::new(2, 1).unwrap();
        assert!(distributed_greedy(&graph, &objective, &ground(10), 11, &config).is_err());
        let bad = vec![NodeId::new(99)];
        assert!(distributed_greedy(&graph, &objective, &bad, 1, &config).is_err());
    }

    #[test]
    fn dataflow_variant_is_bitwise_identical() {
        let (graph, objective) = ring_instance(60);
        let config = DistGreedyConfig::new(4, 3).unwrap().seed(5);
        let mem = distributed_greedy(&graph, &objective, &ground(60), 12, &config).unwrap();
        let pipeline = Pipeline::new(3).unwrap();
        let df =
            distributed_greedy_dataflow(&pipeline, &graph, &objective, &ground(60), 12, &config)
                .unwrap();
        assert_eq!(df.selection.selected(), mem.selection.selected());
        assert_eq!(
            df.selection.objective_value().to_bits(),
            mem.selection.objective_value().to_bits()
        );
        assert_eq!(df.rounds, mem.rounds);
    }

    #[test]
    fn stats_contrast_the_two_drivers() {
        let (graph, objective) = ring_instance(80);
        let config = DistGreedyConfig::new(4, 3).unwrap().seed(7);
        let (mem, mem_stats) =
            distributed_greedy_with_stats(&graph, &objective, &ground(80), 10, &config).unwrap();
        let pipeline = Pipeline::new(3).unwrap();
        let (df, df_stats) = distributed_greedy_dataflow_with_stats(
            &pipeline,
            &graph,
            &objective,
            &ground(80),
            10,
            &config,
        )
        .unwrap();
        assert_eq!(df.selection.selected(), mem.selection.selected());
        assert_eq!(mem_stats.rounds, df_stats.rounds);
        assert_eq!(mem_stats.steps, df_stats.steps);
        assert_eq!(mem_stats.winners_collected, df_stats.winners_collected);
        // The in-memory driver pays for the keyed pool; the dataflow
        // driver only for winner rows.
        assert!(mem_stats.peak_round_bytes > df_stats.peak_round_bytes);
        let max_round_output =
            df.rounds.iter().map(|r| r.output_size).max().expect("at least one round");
        assert_eq!(
            df_stats.peak_round_bytes,
            (max_round_output * size_of::<(u64, u64, f64)>()) as u64,
            "dataflow round bytes must be winner rows only"
        );
        assert!(df_stats.bytes_broadcast > 0, "winners and survivors must broadcast");
        assert_eq!(mem_stats.bytes_broadcast, 0);
    }
}
