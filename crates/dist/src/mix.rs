//! The crate's deterministic mixer, delegating to the engine's canonical
//! splitmix64 ([`submod_dataflow::splitmix64`]) so the bounding sampling
//! coin, the dataflow `sample` operators, and the partition hash all share
//! one dispersion kernel.

/// Mixes a `(seed, node)` pair into 64 dispersed bits.
pub(crate) fn mix_seed_node(seed: u64, node: u64) -> u64 {
    submod_dataflow::mix_seed_key(seed, node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_is_deterministic_and_disperses() {
        assert_eq!(mix_seed_node(1, 2), mix_seed_node(1, 2));
        assert_ne!(mix_seed_node(1, 2), mix_seed_node(1, 3));
        assert_ne!(mix_seed_node(1, 2), mix_seed_node(2, 2));
        // Low-bit inputs must not produce low-bit-only outputs.
        let out = mix_seed_node(0, 1);
        assert!(out.count_ones() > 8, "poor dispersion: {out:#x}");
    }

    /// The delegation must not have changed the mixed bits: the partition
    /// assignments and sampling coins of recorded runs depend on them.
    #[test]
    fn matches_the_historical_splitmix64_values() {
        fn reference(state: u64) -> u64 {
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        for (seed, node) in [(0u64, 0u64), (1, 2), (17, 93), (u64::MAX, 12345)] {
            let expected = reference(seed ^ node.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            assert_eq!(mix_seed_node(seed, node), expected);
        }
    }
}
