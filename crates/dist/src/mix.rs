//! The crate's shared deterministic mixer: splitmix64. Both the bounding
//! sampling coin and the dataflow partition hash derive from it, so their
//! dispersion properties stay in lockstep.

/// splitmix64 finalizer over a pre-combined state: well-dispersed,
/// order-independent, and stable across platforms.
pub(crate) fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a `(seed, node)` pair into 64 dispersed bits.
pub(crate) fn mix_seed_node(seed: u64, node: u64) -> u64 {
    splitmix64(seed ^ node.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_is_deterministic_and_disperses() {
        assert_eq!(mix_seed_node(1, 2), mix_seed_node(1, 2));
        assert_ne!(mix_seed_node(1, 2), mix_seed_node(1, 3));
        assert_ne!(mix_seed_node(1, 2), mix_seed_node(2, 2));
        // Low-bit inputs must not produce low-bit-only outputs.
        let out = mix_seed_node(0, 1);
        assert!(out.count_ones() > 8, "poor dispersion: {out:#x}");
    }
}
