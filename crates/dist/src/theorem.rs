//! The paper's Theorem 4.6: a probabilistic quality guarantee for the
//! approximate-bounding pipeline as a function of the sampling
//! probability `p` and the instance's bound spread γ.

use crate::DistError;
use submod_core::{NodeId, PairwiseObjective, SimilarityGraph};

/// The instantiated Theorem 4.6 guarantee for one instance and one `p`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Theorem46Guarantee {
    /// The sampling probability the guarantee was instantiated for.
    pub p: f64,
    /// Bound spread `γ = max_v U_max(v) / min_v U_min(v)`; infinite when
    /// some minimum utility is non-positive (the "vacuous bound" regime —
    /// Appendix A's offset restores a finite γ).
    pub gamma: f64,
    /// Guaranteed fraction of the optimal objective:
    /// `(1 − 1/e) / (1 + (1 − p)·γ)`. Equals the classic `1 − 1/e` at
    /// `p = 1` (exact bounding) and degrades toward 0 as sampling thins
    /// or the spread grows.
    pub approximation_factor: f64,
    /// Probability the sampled thresholds were conservative everywhere:
    /// `1 − (1 − p)^(k_g + 1)` with `k_g` the minimum graph degree.
    pub success_probability: f64,
    /// The minimum degree `k_g` (the theorem's exponent).
    pub min_degree: usize,
}

impl Theorem46Guarantee {
    /// Checks the bound against an observed run: `achieved` must reach
    /// `approximation_factor · reference` (up to floating-point slack).
    /// Returns `false` when the observed quality violates the guarantee —
    /// which for `p < 1` is a legitimate low-probability event, and for
    /// exact bounding (`p = 1`) indicates a broken implementation.
    pub fn holds(&self, achieved: f64, reference: f64) -> bool {
        if reference <= 0.0 {
            // Non-positive references make the multiplicative bound
            // vacuous; treat it as satisfied.
            return true;
        }
        achieved + 1e-9 * reference.abs() >= self.approximation_factor * reference
    }
}

/// Instantiates Theorem 4.6 for `graph`/`objective` at sampling
/// probability `p`.
///
/// # Errors
///
/// Returns an error unless `p ∈ (0, 1]` or if the objective does not
/// match the graph.
pub fn theorem_4_6(
    graph: &SimilarityGraph,
    objective: &PairwiseObjective,
    p: f64,
) -> Result<Theorem46Guarantee, DistError> {
    if !(p.is_finite() && p > 0.0 && p <= 1.0) {
        return Err(DistError::config(format!("sampling probability must be in (0, 1], got {p}")));
    }
    if objective.num_nodes() != graph.num_nodes() {
        return Err(submod_core::CoreError::UtilityLengthMismatch {
            utilities: objective.num_nodes(),
            num_nodes: graph.num_nodes(),
        }
        .into());
    }

    let ratio = objective.ratio();
    let mut umax_max = f64::NEG_INFINITY;
    let mut umin_min = f64::INFINITY;
    for i in 0..graph.num_nodes() {
        let v = NodeId::from_index(i);
        let u = objective.utility(v);
        umax_max = umax_max.max(u);
        umin_min = umin_min.min(u - ratio * graph.weighted_degree(v));
    }
    let gamma = if graph.num_nodes() == 0 {
        1.0
    } else if umin_min > 0.0 {
        (umax_max / umin_min).max(1.0)
    } else {
        f64::INFINITY
    };

    let min_degree = graph.min_degree();
    let approximation_factor = if p >= 1.0 {
        1.0 - std::f64::consts::E.recip()
    } else if gamma.is_finite() {
        (1.0 - std::f64::consts::E.recip()) / (1.0 + (1.0 - p) * gamma)
    } else {
        0.0
    };
    let success_probability = 1.0 - (1.0 - p).powi(min_degree as i32 + 1);

    Ok(Theorem46Guarantee { p, gamma, approximation_factor, success_probability, min_degree })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{select_subset, BoundingConfig, DistGreedyConfig, PipelineConfig};
    use submod_core::{greedy_select, GraphBuilder};

    /// A monotone instance with strictly positive minimum utilities, so γ
    /// is finite.
    fn monotone_instance() -> (SimilarityGraph, PairwiseObjective) {
        let mut b = GraphBuilder::new(24);
        for v in 0..24u64 {
            b.add_undirected(v, (v + 1) % 24, 0.3).unwrap();
            b.add_undirected(v, (v + 6) % 24, 0.2).unwrap();
        }
        let graph = b.build();
        // α = 0.9 ⇒ ratio = 1/9; weighted degree = 1.0 ⇒ penalty ≈ 0.11,
        // so utilities ≥ 0.5 keep U_min > 0.
        let utilities: Vec<f32> = (0..24).map(|i| 0.5 + (i % 5) as f32 * 0.2).collect();
        (graph, PairwiseObjective::from_alpha(0.9, utilities).unwrap())
    }

    #[test]
    fn exact_bounding_factor_is_one_minus_inv_e() {
        let (graph, objective) = monotone_instance();
        let guarantee = theorem_4_6(&graph, &objective, 1.0).unwrap();
        assert!((guarantee.approximation_factor - (1.0 - 1.0 / std::f64::consts::E)).abs() < 1e-12);
        assert_eq!(guarantee.success_probability, 1.0);
        assert!(guarantee.gamma.is_finite() && guarantee.gamma >= 1.0);
        assert_eq!(guarantee.min_degree, graph.min_degree());
    }

    /// The ISSUE's contract: the bound must hold for the exact-bounding
    /// pipeline end to end.
    #[test]
    fn bound_holds_for_exact_bounding() {
        let (graph, objective) = monotone_instance();
        let k = 6;
        let central = greedy_select(&graph, &objective, k).unwrap().objective_value();
        let config = PipelineConfig::with_bounding(
            BoundingConfig::exact(),
            DistGreedyConfig::new(1, 1).unwrap().seed(1),
        );
        let achieved =
            select_subset(&graph, &objective, k, &config).unwrap().selection.objective_value();
        let guarantee = theorem_4_6(&graph, &objective, 1.0).unwrap();
        assert!(
            guarantee.holds(achieved, central),
            "exact bounding violated its own guarantee: {achieved} < {} × {central}",
            guarantee.approximation_factor
        );
    }

    /// The ISSUE's contract: a forced-bad run must be *reported* as a
    /// violation.
    #[test]
    fn violations_are_reported() {
        let (graph, objective) = monotone_instance();
        let k = 6;
        let central = greedy_select(&graph, &objective, k).unwrap().objective_value();
        let guarantee = theorem_4_6(&graph, &objective, 1.0).unwrap();
        assert!(guarantee.approximation_factor > 0.1);
        let forced_bad = central * 0.01;
        assert!(
            !guarantee.holds(forced_bad, central),
            "a 1 % score must violate a {:.2} guarantee",
            guarantee.approximation_factor
        );
    }

    #[test]
    fn factor_degrades_with_sparser_sampling() {
        let (graph, objective) = monotone_instance();
        let mut previous = f64::INFINITY;
        for p in [1.0, 0.9, 0.5, 0.1] {
            let g = theorem_4_6(&graph, &objective, p).unwrap();
            assert!(g.approximation_factor <= previous + 1e-12);
            assert!(g.approximation_factor > 0.0);
            assert!((0.0..=1.0).contains(&g.success_probability));
            previous = g.approximation_factor;
        }
    }

    #[test]
    fn vacuous_regime_reports_infinite_gamma() {
        let mut b = GraphBuilder::new(4);
        b.add_undirected(0, 1, 1.0).unwrap();
        let graph = b.build();
        // Low α makes U_min negative: the vacuous regime.
        let objective = PairwiseObjective::from_alpha(0.1, vec![0.1; 4]).unwrap();
        let g = theorem_4_6(&graph, &objective, 0.5).unwrap();
        assert!(g.gamma.is_infinite());
        assert_eq!(g.approximation_factor, 0.0);
        // Everything satisfies a vacuous factor-0 bound.
        assert!(g.holds(0.0, 1.0));
    }

    #[test]
    fn validation_errors() {
        let (graph, objective) = monotone_instance();
        assert!(theorem_4_6(&graph, &objective, 0.0).is_err());
        assert!(theorem_4_6(&graph, &objective, 1.1).is_err());
        assert!(theorem_4_6(&graph, &objective, f64::NAN).is_err());
    }
}
