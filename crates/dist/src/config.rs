use crate::DistError;
use submod_core::NodeId;

/// How the approximate bounding algorithm samples the points used for its
/// threshold estimates (paper §4.3: exact thresholds need a global sort,
/// so the distributed variant estimates `U^k` from a `p`-fraction sample).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Every point enters the sample independently with probability `p`.
    Uniform,
    /// Points enter with probability proportional to their utility
    /// (clamped to `[0, 1]`), biasing the estimate toward the
    /// high-utility region where the thresholds live.
    Weighted,
}

/// Configuration of the bounding phase (paper §4.1–§4.3).
#[derive(Clone, Debug, PartialEq)]
pub struct BoundingConfig {
    pub(crate) mode: BoundingMode,
    /// Safety cap on grow/shrink cycles.
    pub(crate) max_cycles: usize,
}

#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum BoundingMode {
    /// Thresholds are the true k-th largest bounds over all undecided
    /// points (Lemmas 4.3 / 4.4 verbatim).
    Exact,
    /// Thresholds estimated from a `p`-fraction sample (Theorem 4.6).
    Approximate {
        /// Sampling probability `p ∈ (0, 1]`.
        p: f64,
        /// How the sample is drawn.
        strategy: SamplingStrategy,
        /// Seed of the deterministic per-node sampling coins.
        seed: u64,
    },
}

impl BoundingConfig {
    /// Exact bounding: thresholds are true order statistics, so every
    /// decision is sound (included points are in every optimal completion,
    /// excluded points in none).
    pub fn exact() -> Self {
        BoundingConfig { mode: BoundingMode::Exact, max_cycles: 50 }
    }

    /// Approximate bounding with sampling probability `p`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `p ∈ (0, 1]`.
    pub fn approximate(p: f64, strategy: SamplingStrategy, seed: u64) -> Result<Self, DistError> {
        if !(p.is_finite() && p > 0.0 && p <= 1.0) {
            return Err(DistError::config(format!(
                "sampling probability must be in (0, 1], got {p}"
            )));
        }
        Ok(BoundingConfig { mode: BoundingMode::Approximate { p, strategy, seed }, max_cycles: 50 })
    }

    /// Returns `true` for the exact variant.
    pub fn is_exact(&self) -> bool {
        matches!(self.mode, BoundingMode::Exact)
    }

    /// The sampling probability (1.0 for exact bounding).
    pub fn sampling_probability(&self) -> f64 {
        match self.mode {
            BoundingMode::Exact => 1.0,
            BoundingMode::Approximate { p, .. } => p,
        }
    }
}

/// The Δ-schedule: how the multi-round algorithm's per-round pool target
/// interpolates from the ground-set size `n` down to the budget `k`
/// (paper §4.4 and the Appendix E γ ablation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DeltaSchedule {
    /// Power-law interpolation `k + (n − k)·((r − t)/r)^(1/γ)`.
    ///
    /// `γ = 1` is a straight line; smaller γ shrinks the pool harder in
    /// early rounds. The paper's default is `γ = 0.75`. Values outside
    /// `(0, 1]` are clamped into that range when targets are computed
    /// (the field is public, so construction cannot validate).
    Linear {
        /// Interpolation exponent factor `γ ∈ (0, 1]`; out-of-range
        /// values are clamped.
        gamma: f64,
    },
    /// Geometric interpolation `k·(n/k)^((r − t)/r)`: equal shrink
    /// *ratios* every round, the most aggressive early schedule.
    Geometric,
}

impl DeltaSchedule {
    /// The paper's default schedule.
    pub fn default_schedule() -> Self {
        DeltaSchedule::Linear { gamma: 0.75 }
    }

    /// Pool-size target after round `round` of `rounds` when shrinking
    /// from `n` candidates toward `k`.
    ///
    /// Targets are non-increasing in `round`, bounded by `[k, n]`, and
    /// exactly `k` at the final round.
    pub fn target(&self, n: usize, k: usize, round: usize, rounds: usize) -> usize {
        if round >= rounds || n <= k {
            return k;
        }
        let frac = (rounds - round) as f64 / rounds as f64;
        let target = match *self {
            DeltaSchedule::Linear { gamma } => {
                let exponent = 1.0 / gamma.clamp(1e-6, 1.0);
                k as f64 + (n - k) as f64 * frac.powf(exponent)
            }
            DeltaSchedule::Geometric => k as f64 * (n as f64 / k as f64).powf(frac),
        };
        (target.ceil() as usize).clamp(k, n)
    }
}

impl Default for DeltaSchedule {
    fn default() -> Self {
        DeltaSchedule::default_schedule()
    }
}

/// How the GreeDi baseline assigns points to machines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStyle {
    /// Contiguous id-order chunks — the "arbitrary partition" of the
    /// original GreeDi analysis.
    Arbitrary,
    /// A seeded random permutation split into balanced chunks
    /// (RandGreeDi).
    Random,
}

/// Configuration of the multi-round distributed greedy algorithm
/// (paper §4.4).
#[derive(Clone, Debug, PartialEq)]
pub struct DistGreedyConfig {
    pub(crate) machines: usize,
    pub(crate) rounds: usize,
    pub(crate) adaptive: bool,
    pub(crate) seed: u64,
    pub(crate) schedule: DeltaSchedule,
    pub(crate) adversarial_first_round: Option<Vec<NodeId>>,
    pub(crate) winner_batch: usize,
}

impl DistGreedyConfig {
    /// `machines` partitions processed over `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Returns an error if either count is zero.
    pub fn new(machines: usize, rounds: usize) -> Result<Self, DistError> {
        if machines == 0 {
            return Err(DistError::config("machine count must be at least 1"));
        }
        if rounds == 0 {
            return Err(DistError::config("round count must be at least 1"));
        }
        Ok(DistGreedyConfig {
            machines,
            rounds,
            adaptive: false,
            seed: 0,
            schedule: DeltaSchedule::default_schedule(),
            adversarial_first_round: None,
            winner_batch: 0,
        })
    }

    /// Enables adaptive partitioning: later rounds use fewer partitions so
    /// machines stay full (never above the round-1 partition size), which
    /// recovers cross-partition neighborhoods faster (§6.4, Table 3).
    pub fn adaptive(mut self, yes: bool) -> Self {
        self.adaptive = yes;
        self
    }

    /// Sets the partitioning seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the Δ-schedule.
    pub fn schedule(mut self, schedule: DeltaSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Worst-case ablation (§6.4, Table 3): in round 1 every listed point
    /// is forced into partition 0, concentrating the reference solution on
    /// one machine.
    pub fn adversarial_first_round(mut self, solution: Vec<NodeId>) -> Self {
        self.adversarial_first_round = Some(solution);
        self
    }

    /// Enables the dataflow driver's threshold-filtered multi-winner
    /// passes: each engine pass certifies up to `batch` winners at once
    /// instead of one per machine per pass, cutting the pass count by up
    /// to `batch / machines` while selecting the **identical** subset
    /// (invalidated pops fall back to further passes). `0` (the default)
    /// keeps the one-pop-per-step lockstep. The in-memory driver ignores
    /// the setting — its bulk path already runs machines to completion.
    pub fn winner_batch(mut self, batch: usize) -> Self {
        self.winner_batch = batch;
        self
    }

    /// The configured machine count.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// The configured round count.
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounding_config_validation() {
        assert!(BoundingConfig::approximate(0.3, SamplingStrategy::Uniform, 1).is_ok());
        assert!(BoundingConfig::approximate(1.0, SamplingStrategy::Weighted, 1).is_ok());
        assert!(BoundingConfig::approximate(0.0, SamplingStrategy::Uniform, 1).is_err());
        assert!(BoundingConfig::approximate(1.5, SamplingStrategy::Uniform, 1).is_err());
        assert!(BoundingConfig::approximate(f64::NAN, SamplingStrategy::Uniform, 1).is_err());
        assert!(BoundingConfig::exact().is_exact());
        assert_eq!(BoundingConfig::exact().sampling_probability(), 1.0);
    }

    #[test]
    fn greedy_config_validation() {
        assert!(DistGreedyConfig::new(0, 1).is_err());
        assert!(DistGreedyConfig::new(1, 0).is_err());
        let cfg = DistGreedyConfig::new(4, 2).unwrap().adaptive(true).seed(9);
        assert_eq!(cfg.machines(), 4);
        assert_eq!(cfg.rounds(), 2);
        assert!(cfg.adaptive);
        assert_eq!(cfg.seed, 9);
    }

    /// The ISSUE's schedule-monotonicity contract: targets never increase
    /// round over round, stay within `[k, n]`, and land exactly on `k`.
    #[test]
    fn schedules_are_monotone_and_anchored() {
        let (n, k) = (10_000, 250);
        for schedule in [
            DeltaSchedule::Linear { gamma: 1.0 },
            DeltaSchedule::Linear { gamma: 0.75 },
            DeltaSchedule::Linear { gamma: 0.25 },
            DeltaSchedule::Geometric,
        ] {
            for rounds in [1usize, 2, 5, 8, 32] {
                let mut previous = n;
                for round in 1..=rounds {
                    let target = schedule.target(n, k, round, rounds);
                    assert!(target <= previous, "{schedule:?} target rose at {round}/{rounds}");
                    assert!((k..=n).contains(&target), "{schedule:?} out of range");
                    previous = target;
                }
                assert_eq!(schedule.target(n, k, rounds, rounds), k, "{schedule:?} final");
            }
        }
    }

    #[test]
    fn geometric_shrinks_harder_than_default_linear_early() {
        let (n, k, rounds) = (10_000, 250, 8);
        let linear = DeltaSchedule::default_schedule();
        let geometric = DeltaSchedule::Geometric;
        assert!(
            geometric.target(n, k, 1, rounds) <= linear.target(n, k, 1, rounds),
            "geometric must be at least as aggressive in round 1"
        );
    }

    #[test]
    fn smaller_gamma_shrinks_harder() {
        let (n, k, rounds) = (5_000, 100, 4);
        let mut previous = usize::MAX;
        for gamma in [1.0, 0.75, 0.5, 0.25] {
            let target = DeltaSchedule::Linear { gamma }.target(n, k, 1, rounds);
            assert!(target <= previous, "γ = {gamma} must not loosen the round-1 target");
            previous = target;
        }
    }

    #[test]
    fn degenerate_schedule_inputs() {
        let s = DeltaSchedule::default_schedule();
        assert_eq!(s.target(100, 100, 1, 4), 100, "n == k pins the target");
        assert_eq!(s.target(50, 100, 1, 4), 100, "n < k yields k (caller validates)");
        assert_eq!(s.target(100, 10, 4, 4), 10, "final round is exactly k");
    }
}
