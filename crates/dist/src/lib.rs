//! Distributed larger-than-memory subset selection (paper §4–§5).
//!
//! This crate implements the distributed half of the MLSys 2025 paper
//! *"On Distributed Larger-Than-Memory Subset Selection With Pairwise
//! Submodular Functions"* (Böther et al.) on top of [`submod_core`]'s
//! centralized primitives and [`submod_dataflow`]'s Beam-style engine:
//!
//! - [`bound_in_memory`] / [`bound_dataflow`] — approximate α-bounding
//!   over the k-NN graph (§4.1–§4.3): decide as much of the subset as
//!   possible before any greedy work, exactly or from a `p`-fraction
//!   sample. The two drivers share their decision logic and produce
//!   identical outcomes; the dataflow driver never exceeds the
//!   pipeline's per-worker memory budget.
//! - [`distributed_greedy`] / [`distributed_greedy_dataflow`] — the
//!   multi-round partitioned greedy (§4.4) with [`DeltaSchedule`] pool
//!   targets and optional adaptive partitioning. Both drivers share one
//!   backend-parameterized round loop (partition assignment is a
//!   deterministic keyed transform, per-machine argmax runs as
//!   synchronized Algorithm-2 steps), so their selections are
//!   bitwise-identical; the dataflow driver keeps the scored pool
//!   engine-resident and only collects `O(machines)` winner rows per
//!   step, metered by [`GreedyStats`].
//! - [`greedi`] / [`greedi_dataflow`] — the GreeDi / RandGreeDi baseline
//!   whose merge machine must hold `m·k` points (§2's systems
//!   motivation), with the map phase on the same shared backend.
//! - [`score_in_memory`] / [`score_dataflow`] — subset scoring, including
//!   the §5 dataflow pipeline that joins the fanned-out neighbor graph
//!   against the subset.
//! - [`select_subset`] / [`complete_selection`] — the end-to-end
//!   pipeline: bounding → distributed greedy over the undecided points →
//!   completion, always returning exactly `k` distinct points.
//! - [`distributed_greedy_journaled`] / [`select_subset_journaled`] (and
//!   friends) — the same algorithms wrapped around a checksummed
//!   write-ahead journal ([`submod_journal`]): every round boundary is
//!   committed, and a rerun against the same journal path resumes from
//!   the last complete boundary with a **bitwise-identical** result.
//! - [`theorem_4_6`] — the paper's probabilistic quality guarantee for
//!   approximate bounding, with a [`Theorem46Guarantee::holds`] check.
//!
//! # Example
//!
//! ```
//! use submod_core::{greedy_select, GraphBuilder, PairwiseObjective};
//! use submod_dist::{select_subset, DistGreedyConfig, PipelineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = GraphBuilder::new(8);
//! for v in 0..8u64 {
//!     builder.add_undirected(v, (v + 1) % 8, 0.5)?;
//! }
//! let graph = builder.build();
//! let objective =
//!     PairwiseObjective::from_alpha(0.9, (0..8).map(|i| 1.0 - i as f32 * 0.1).collect())?;
//!
//! let config = PipelineConfig::greedy_only(DistGreedyConfig::new(2, 2)?.seed(1));
//! let outcome = select_subset(&graph, &objective, 3, &config)?;
//! assert_eq!(outcome.selection.len(), 3);
//!
//! let central = greedy_select(&graph, &objective, 3)?;
//! assert!(outcome.selection.objective_value() >= 0.9 * central.objective_value());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounding;
mod config;
mod engine;
mod error;
mod greedi;
mod journal;
mod mix;
mod multiround;
mod pipeline;
mod score;
mod theorem;

pub use bounding::{
    bound_dataflow, bound_dataflow_with_stats, bound_in_memory, bound_in_memory_with_stats,
    BoundingOutcome, BoundingStats,
};
pub use config::{
    BoundingConfig, DeltaSchedule, DistGreedyConfig, PartitionStyle, SamplingStrategy,
};
pub use error::DistError;
pub use greedi::{greedi, greedi_dataflow, GreediReport, MergeStats};
pub use journal::{
    distributed_greedy_dataflow_journaled, distributed_greedy_journaled, greedi_dataflow_journaled,
    greedi_journaled, select_subset_journaled,
};
pub use multiround::{
    distributed_greedy, distributed_greedy_dataflow, distributed_greedy_dataflow_with_stats,
    distributed_greedy_with_stats, DistGreedyReport, GreedyStats, RoundStats,
};
pub use pipeline::{complete_selection, select_subset, PipelineConfig, PipelineOutcome};
pub use score::{score_dataflow, score_in_memory};
pub use theorem::{theorem_4_6, Theorem46Guarantee};
