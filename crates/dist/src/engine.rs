//! The shared per-machine greedy execution backend (paper §4.4 made
//! engine-resident, the greedy counterpart of bounding's `PassBackend`).
//!
//! Partition assignment is a deterministic keyed transform
//! ([`MachineKeying`]): the machine of a node depends only on the keying
//! parameters and the node id, never on sharding, scheduling, or a
//! driver-side permutation. Per-machine selection then advances in
//! **synchronized Algorithm-2 steps**: each step every machine pops its
//! best remaining candidate, and between steps the previous winners'
//! still-unselected same-machine neighbors lose `(β/α)·s(winner, ·)`
//! priority — exactly the priority-queue greedy of `submod_core`, run one
//! pop per machine per step.
//!
//! Everything backend-specific hides behind [`MachineGreedyBackend`]:
//!
//! - [`InMemoryGreedyBackend`] keys the pool into per-machine
//!   [`AddressablePq`]s on the driver — the `O(pool)`-per-phase baseline.
//! - [`DataflowGreedyBackend`] keeps the scored pool inside the engine as
//!   a `(machine, (node, priority))` collection: winners come from the
//!   engine's per-key argmax aggregation
//!   (`PCollection::argmax_per_key`), the previous winners ride to
//!   workers as a broadcast side-input, and only `O(machines)` rows per
//!   step ever reach the driver.
//!
//! Both backends run the same arithmetic in the same order — priorities
//! seed from the utility, every decrease is the single subtraction
//! `p − (β/α)·s(winner, v)` (the graph stores each edge once per
//! direction, deduplicated), and ties resolve by the shared
//! [`submod_dataflow::argmax_prefers`] order, which is also the
//! addressable queue's pop order — so the drivers select **bitwise
//! identical** subsets.

use crate::DistError;
use std::sync::Arc;
use submod_core::{AddressablePq, NodeId, NodeSet, PairwiseObjective, SimilarityGraph};
use submod_dataflow::{PCollection, Pipeline};

/// Deterministic machine assignment — the keyed transform both drivers
/// share.
#[derive(Clone, Debug)]
pub(crate) enum MachineKeying {
    /// splitmix64 of `(seed, node)` modulo the machine count.
    Hash {
        /// Mixer seed (varies per round so draws are uncorrelated).
        seed: u64,
        /// Machine count the hash is reduced into.
        machines: u64,
    },
    /// [`MachineKeying::Hash`] with a forced set pinned to machine 0 —
    /// the §6.4 adversarial first round.
    HashForced {
        /// Mixer seed for the unforced nodes.
        seed: u64,
        /// Machine count the hash is reduced into.
        machines: u64,
        /// Nodes concentrated on machine 0.
        forced: Arc<NodeSet>,
    },
    /// Contiguous id chunks of `chunk` nodes — GreeDi's "arbitrary"
    /// partitions.
    Contiguous {
        /// Nodes per machine.
        chunk: u64,
    },
}

impl MachineKeying {
    /// The machine that owns node `v`.
    #[inline]
    pub(crate) fn machine_of(&self, v: u64) -> u64 {
        match self {
            MachineKeying::Hash { seed, machines } => {
                crate::mix::mix_seed_node(*seed, v) % *machines
            }
            MachineKeying::HashForced { seed, machines, forced } => {
                if forced.contains(NodeId::new(v)) {
                    0
                } else {
                    crate::mix::mix_seed_node(*seed, v) % *machines
                }
            }
            MachineKeying::Contiguous { chunk } => v / *chunk,
        }
    }
}

/// What a backend hands the driver after one synchronized step: at most
/// one `(machine, node, priority)` winner per machine, ascending by
/// machine, plus the driver bytes materialized to produce them.
pub(crate) struct StepWinners {
    /// The per-machine argmax rows, ascending by machine.
    pub winners: Vec<(u64, u64, f64)>,
    /// Driver-side bytes this step collected.
    pub driver_bytes: u64,
}

/// A per-machine greedy execution backend: everything that differs
/// between the in-memory reference and the dataflow engine. The round
/// loop, Δ-schedule bookkeeping, and winner accounting downstream are
/// shared, which is what guarantees identical outcomes.
pub(crate) trait MachineGreedyBackend {
    /// Nodes currently in the pool.
    fn pool_len(&self) -> usize;

    /// Keys the current pool into `machines` partitions and seeds every
    /// candidate's priority with its utility. Returns the driver bytes
    /// the keying materialized (the in-memory baseline pays `O(pool)`
    /// here; the engine-resident backend pays nothing).
    fn begin_phase(&mut self, keying: MachineKeying, machines: usize) -> Result<u64, DistError>;

    /// Applies the previous step's winners — each winner leaves its
    /// machine's pool, and its still-unselected same-machine neighbors
    /// lose `(β/α)·s` priority (Algorithm 2's decrease) — then returns
    /// the next per-machine argmax winners.
    fn step(&mut self, previous: &[(u64, u64)]) -> Result<StepWinners, DistError>;

    /// Optional fast path: run the whole phase (up to `quota` steps) in
    /// one shot and return the outcome, or `None` to have [`run_phase`]
    /// drive the step loop. An implementation must produce the *exact*
    /// outcome of the step loop — machines are independent within a
    /// phase, so free-running them and reassembling the step-major order
    /// is equivalent to the lockstep.
    fn phase_bulk(&mut self, _n: usize, _quota: usize) -> Result<Option<PhaseOutcome>, DistError> {
        Ok(None)
    }

    /// Ends the phase, restricting the pool to `survivors`.
    fn end_phase(&mut self, survivors: &NodeSet) -> Result<(), DistError>;

    /// Replaces the pool wholesale — the journal-resume entry point. The
    /// ids arrive in the journal's pop order; the backend canonicalizes
    /// (sorts and deduplicates) so the restored pool is exactly the pool
    /// an uninterrupted run would carry into the next round.
    fn restore_pool(&mut self, pool: &[u64]) -> Result<(), DistError>;

    /// Broadcast bytes shipped to workers so far (0 for the in-memory
    /// reference).
    fn bytes_broadcast(&self) -> u64;
}

/// The winners of one phase in selection order (step-major, ascending by
/// machine within a step) plus the step accounting.
pub(crate) struct PhaseOutcome {
    /// Winners in selection order. With one machine this is exactly the
    /// centralized Algorithm-2 pop order.
    pub selected: Vec<NodeId>,
    /// The same winners as a membership set.
    pub members: NodeSet,
    /// Steps that produced at least one winner.
    pub steps: usize,
    /// Largest single-step winner collection.
    pub peak_step_winners: usize,
    /// Driver bytes collected across the phase's steps.
    pub driver_bytes: u64,
}

/// Runs up to `quota` synchronized steps against `backend`. Every
/// machine with a surviving candidate contributes one winner per step,
/// so machine `m` ends the phase with `min(quota, |pool_m|)` selections —
/// the same count as a driver-side local greedy, in synchronized order.
pub(crate) fn run_phase(
    backend: &mut dyn MachineGreedyBackend,
    n: usize,
    quota: usize,
) -> Result<PhaseOutcome, DistError> {
    if let Some(outcome) = backend.phase_bulk(n, quota)? {
        return Ok(outcome);
    }
    let mut outcome = PhaseOutcome {
        selected: Vec::new(),
        members: NodeSet::new(n),
        steps: 0,
        peak_step_winners: 0,
        driver_bytes: 0,
    };
    let mut previous: Vec<(u64, u64)> = Vec::new();
    for _ in 0..quota {
        let step = backend.step(&previous)?;
        if step.winners.is_empty() {
            break;
        }
        outcome.steps += 1;
        outcome.peak_step_winners = outcome.peak_step_winners.max(step.winners.len());
        outcome.driver_bytes += step.driver_bytes;
        previous = step
            .winners
            .iter()
            .map(|&(machine, node, _)| {
                outcome.selected.push(NodeId::new(node));
                outcome.members.insert(NodeId::new(node));
                (machine, node)
            })
            .collect();
    }
    Ok(outcome)
}

/// Sorted, deduplicated raw ids — the canonical pool representation both
/// backends start from, so their candidate sets match element for
/// element.
fn canonical_pool(ground: &[NodeId]) -> Vec<u64> {
    let mut pool: Vec<u64> = ground.iter().map(|v| v.raw()).collect();
    pool.sort_unstable();
    pool.dedup();
    pool
}

/// The in-memory reference: buckets and per-machine priority queues live
/// on the driver (`O(pool)` per phase — the baseline the engine-resident
/// driver is measured against). Buckets are ascending by id, so the
/// queue's smaller-local-index tie-break is the smaller-node-id
/// tie-break of the engine argmax.
pub(crate) struct InMemoryGreedyBackend<'a> {
    graph: &'a SimilarityGraph,
    objective: &'a PairwiseObjective,
    pool: Vec<u64>,
    buckets: Vec<Vec<u64>>,
    queues: Vec<AddressablePq>,
}

impl<'a> InMemoryGreedyBackend<'a> {
    pub(crate) fn new(
        graph: &'a SimilarityGraph,
        objective: &'a PairwiseObjective,
        ground: &[NodeId],
    ) -> Self {
        InMemoryGreedyBackend {
            graph,
            objective,
            pool: canonical_pool(ground),
            buckets: Vec::new(),
            queues: Vec::new(),
        }
    }
}

impl MachineGreedyBackend for InMemoryGreedyBackend<'_> {
    fn pool_len(&self) -> usize {
        self.pool.len()
    }

    fn begin_phase(&mut self, keying: MachineKeying, machines: usize) -> Result<u64, DistError> {
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); machines];
        for &v in &self.pool {
            buckets[keying.machine_of(v) as usize].push(v);
        }
        let objective = self.objective;
        self.queues = buckets
            .iter()
            .map(|bucket| {
                AddressablePq::with_priorities(
                    bucket.iter().map(|&v| objective.utility(NodeId::new(v))).collect(),
                )
            })
            .collect();
        self.buckets = buckets;
        // Buckets (8 B/node) plus queue state (8 B priority + two 4 B
        // heap slots per node) — the O(pool) driver materialization.
        Ok((self.pool.len() * (size_of::<u64>() + size_of::<f64>() + 2 * size_of::<u32>())) as u64)
    }

    fn step(&mut self, previous: &[(u64, u64)]) -> Result<StepWinners, DistError> {
        // Algorithm 2's decrease wave: the previous winner of machine `m`
        // walks its adjacency; every still-enqueued same-bucket neighbor
        // loses `(β/α)·s`. Machines are disjoint, so waves never interact.
        let ratio = self.objective.ratio();
        for &(machine, winner) in previous {
            let bucket = &self.buckets[machine as usize];
            let queue = &mut self.queues[machine as usize];
            for (x, s) in self.graph.edges(NodeId::new(winner)) {
                if let Ok(local) = bucket.binary_search(&x.raw()) {
                    if queue.contains(local as u32) {
                        queue.decrease_by(local as u32, ratio * f64::from(s));
                    }
                }
            }
        }
        let mut winners = Vec::new();
        for (machine, queue) in self.queues.iter_mut().enumerate() {
            if let Some((local, priority)) = queue.pop_max() {
                winners.push((machine as u64, self.buckets[machine][local as usize], priority));
            }
        }
        let driver_bytes = (winners.len() * size_of::<(u64, u64, f64)>()) as u64;
        Ok(StepWinners { winners, driver_bytes })
    }

    fn phase_bulk(&mut self, n: usize, quota: usize) -> Result<Option<PhaseOutcome>, DistError> {
        // Machines never interact within a phase (disjoint buckets and
        // queues, decreases never cross a machine), so the lockstep of
        // [`run_phase`] is only an *accounting* order: each machine can
        // run its whole pop/decrease sequence independently. One
        // coarse-grained `parallel_map` region per phase — the PR 2
        // concurrency shape — and the step-major outcome is reassembled
        // exactly (machine `m`'s `t`-th pop *is* its step-`t` winner).
        let ratio = self.objective.ratio();
        let graph = self.graph;
        let machines: Vec<(&Vec<u64>, &mut AddressablePq)> =
            self.buckets.iter().zip(self.queues.iter_mut()).collect();
        let sequences: Vec<Vec<u64>> = submod_exec::parallel_map(machines, |(bucket, queue)| {
            let mut sequence = Vec::with_capacity(quota.min(bucket.len()));
            for _ in 0..quota {
                let Some((local, _priority)) = queue.pop_max() else { break };
                let winner = bucket[local as usize];
                sequence.push(winner);
                for (x, s) in graph.edges(NodeId::new(winner)) {
                    if let Ok(l) = bucket.binary_search(&x.raw()) {
                        if queue.contains(l as u32) {
                            queue.decrease_by(l as u32, ratio * f64::from(s));
                        }
                    }
                }
            }
            sequence
        });
        let mut outcome = PhaseOutcome {
            selected: Vec::new(),
            members: NodeSet::new(n),
            steps: 0,
            peak_step_winners: 0,
            driver_bytes: 0,
        };
        let longest = sequences.iter().map(Vec::len).max().unwrap_or(0);
        for step in 0..longest {
            let mut step_winners = 0usize;
            for sequence in &sequences {
                if let Some(&node) = sequence.get(step) {
                    outcome.selected.push(NodeId::new(node));
                    outcome.members.insert(NodeId::new(node));
                    step_winners += 1;
                }
            }
            outcome.steps += 1;
            outcome.peak_step_winners = outcome.peak_step_winners.max(step_winners);
            outcome.driver_bytes += (step_winners * size_of::<(u64, u64, f64)>()) as u64;
        }
        Ok(Some(outcome))
    }

    fn end_phase(&mut self, survivors: &NodeSet) -> Result<(), DistError> {
        self.pool.retain(|&v| survivors.contains(NodeId::new(v)));
        self.buckets.clear();
        self.queues.clear();
        Ok(())
    }

    fn restore_pool(&mut self, pool: &[u64]) -> Result<(), DistError> {
        let mut ids = pool.to_vec();
        ids.sort_unstable();
        ids.dedup();
        self.pool = ids;
        self.buckets.clear();
        self.queues.clear();
        Ok(())
    }

    fn bytes_broadcast(&self) -> u64 {
        0
    }
}

/// The engine-resident driver: the scored pool is born, lives, and dies
/// inside the dataflow engine as a `(machine, (node, priority))`
/// collection. Per step it broadcasts the previous winners as a
/// side-input, applies the decrease wave shard-locally, selects each
/// machine's argmax with the engine's per-key top-1 aggregation, and
/// collects **only the winner rows** — `O(machines)` driver bytes per
/// step, never `O(partition)`.
pub(crate) struct DataflowGreedyBackend<'a> {
    pipeline: &'a Pipeline,
    graph: &'a SimilarityGraph,
    objective: &'a PairwiseObjective,
    pool: PCollection<u64>,
    /// Driver-side pool length (maintained across phases so the round
    /// loop never counts the engine-resident collection).
    pool_len: usize,
    table: Option<PCollection<ScoredRow>>,
    broadcast_base: u64,
    /// Multi-winner batch size for [`Self::phase_bulk`]; 0 disables the
    /// batched mode and phases run the lockstep step loop.
    winner_batch: usize,
}

/// One scored-pool row: `(machine, (node, priority))`.
type ScoredRow = (u64, (u64, f64));

/// One winner shipped to workers by the batched update: the machine, the
/// popped node, and the winner's adjacency sorted by neighbor id (so the
/// discount lookup is a binary search, like the in-memory bucket walk).
type ShippedWinner = (u64, u64, Vec<(u64, f32)>);

/// Collects each winner's adjacency into the owned, sorted form the
/// engine-side update closure binary-searches. Owning the rows is what
/// makes the update `'static` (and hence fusable) — the graph itself
/// never crosses into the closure.
fn ship_winners(
    graph: &SimilarityGraph,
    winners: impl IntoIterator<Item = (u64, u64)>,
) -> Vec<ShippedWinner> {
    winners
        .into_iter()
        .map(|(machine, node)| {
            let mut adj: Vec<(u64, f32)> =
                graph.edges(NodeId::new(node)).map(|(x, s)| (x.raw(), s)).collect();
            adj.sort_unstable_by_key(|&(x, _)| x);
            (machine, node, adj)
        })
        .collect()
}

impl<'a> DataflowGreedyBackend<'a> {
    pub(crate) fn new(
        pipeline: &'a Pipeline,
        graph: &'a SimilarityGraph,
        objective: &'a PairwiseObjective,
        ground: &[NodeId],
    ) -> Self {
        let ids = canonical_pool(ground);
        let pool_len = ids.len();
        let pool = pipeline.from_vec(ids);
        let broadcast_base = pipeline.metrics().bytes_broadcast;
        DataflowGreedyBackend {
            pipeline,
            graph,
            objective,
            pool,
            pool_len,
            table: None,
            broadcast_base,
            winner_batch: 0,
        }
    }

    /// Enables the threshold-filtered multi-winner mode: each engine pass
    /// collects up to `batch` certified winners instead of one per
    /// machine. 0 (the default) keeps the one-pop-per-step lockstep.
    pub(crate) fn with_winner_batch(mut self, batch: usize) -> Self {
        self.winner_batch = batch;
        self
    }

    /// Applies one group of certified winners to the engine-resident
    /// table: every winner leaves its machine's pool, and each surviving
    /// same-machine candidate receives the winners' discounts **in pop
    /// order** — the same subtraction sequence, in the same order, as the
    /// per-step updates, so intermediate priorities stay bit-identical.
    fn apply_winners(
        &self,
        table: &PCollection<ScoredRow>,
        shipped: Vec<ShippedWinner>,
    ) -> Result<PCollection<ScoredRow>, DistError> {
        // Meter what a real deployment would broadcast: the winner rows.
        let _metered =
            self.pipeline.broadcast(shipped.iter().map(|&(m, v, _)| (m, v)).collect::<Vec<_>>());
        let shipped = std::sync::Arc::new(shipped);
        let ratio = self.objective.ratio();
        let table = table.flat_map(move |(machine, (v, p))| {
            let mut p = p;
            for &(m, winner, ref adj) in shipped.iter() {
                if m != machine {
                    continue;
                }
                if v == winner {
                    return None; // popped: the winner leaves the pool
                }
                if let Ok(e) = adj.binary_search_by_key(&v, |&(x, _)| x) {
                    p -= ratio * f64::from(adj[e].1);
                }
            }
            Some((machine, (v, p)))
        })?;
        Ok(table)
    }
}

impl MachineGreedyBackend for DataflowGreedyBackend<'_> {
    fn pool_len(&self) -> usize {
        self.pool_len
    }

    fn begin_phase(&mut self, keying: MachineKeying, _machines: usize) -> Result<u64, DistError> {
        let objective = self.objective;
        // Eager map: the phase-persistent table is materialized up front
        // anyway, and `objective` stays borrowed on the driver.
        let table = self
            .pool
            .map_eager(move |v| (keying.machine_of(v), (v, objective.utility(NodeId::new(v)))))?;
        self.table = Some(table);
        Ok(0)
    }

    fn step(&mut self, previous: &[(u64, u64)]) -> Result<StepWinners, DistError> {
        let mut table = self.table.clone().expect("step called outside a phase");
        if !previous.is_empty() {
            // Ship the winners with their adjacency and apply the
            // decrease wave shard-locally: the winner leaves its
            // machine's pool, and every surviving same-machine candidate
            // adjacent to it loses `(β/α)·s(winner, v)` — the same single
            // subtraction, with the winner-side edge weight, as the queue
            // update. The update fuses with the argmax scan below into
            // one pass over the table.
            table =
                self.apply_winners(&table, ship_winners(self.graph, previous.iter().copied()))?;
            self.table = Some(table.clone());
        }
        let mut winners: Vec<(u64, u64, f64)> = table
            .argmax_per_key()?
            .collect()?
            .into_iter()
            .map(|(machine, (node, priority))| (machine, node, priority))
            .collect();
        winners.sort_unstable_by_key(|&(machine, _, _)| machine);
        let driver_bytes = (winners.len() * size_of::<(u64, u64, f64)>()) as u64;
        Ok(StepWinners { winners, driver_bytes })
    }

    fn phase_bulk(&mut self, n: usize, quota: usize) -> Result<Option<PhaseOutcome>, DistError> {
        if self.winner_batch == 0 {
            return Ok(None);
        }
        let mut table = self.table.clone().expect("phase_bulk called outside a phase");
        let ratio = self.objective.ratio();
        // Per-machine pop sequences (machine id → winners in pop order),
        // reassembled step-major at the end: machine `m`'s `t`-th pop *is*
        // its step-`t` winner, exactly like the in-memory bulk path.
        let mut sequences: std::collections::BTreeMap<u64, Vec<u64>> =
            std::collections::BTreeMap::new();
        let mut done: Vec<u64> = Vec::new(); // machines at quota, sorted
        let mut driver_bytes = 0u64;
        if quota > 0 {
            loop {
                let remaining = table.count()?;
                if remaining == 0 {
                    break;
                }
                // τ = the batch_k-th largest priority across all live
                // machines: every row ≥ τ reaches the driver, everything
                // below τ stays engine-resident and can only decrease.
                let batch_k = (self.winner_batch as u64).min(remaining);
                let tau = table.map(|(_, (_, p))| p)?.kth_largest(batch_k)?;
                let mut candidates: Vec<(u64, u64, f64)> = table
                    .filter(move |&(_, (_, p))| p >= tau)?
                    .map(|(m, (v, p))| (m, v, p))?
                    .collect()?;
                driver_bytes += (candidates.len() * size_of::<(u64, u64, f64)>()) as u64;
                // When the whole table came back, the replay is complete:
                // no engine-side rows exist to invalidate a pop.
                let complete = candidates.len() as u64 == remaining;
                candidates.sort_unstable_by_key(|&(m, v, _)| (m, v));
                // Driver replay, machine by machine: pop the best
                // remaining candidate in the shared argmax order; a pop is
                // certified while its corrected priority stays ≥ τ (every
                // uncollected row started < τ and only decreases), and the
                // first pop of a machine is always certified. Discounts
                // apply sequentially in pop order — the same subtraction
                // sequence the engine-side update then replays.
                let mut batch_winners: Vec<(u64, u64)> = Vec::new();
                let mut newly_done: Vec<u64> = Vec::new();
                let mut slot = 0usize;
                while slot < candidates.len() {
                    let machine = candidates[slot].0;
                    let end = candidates[slot..]
                        .iter()
                        .position(|&(m, _, _)| m != machine)
                        .map_or(candidates.len(), |i| slot + i);
                    let mut local: Vec<(u64, f64)> =
                        candidates[slot..end].iter().map(|&(_, v, p)| (v, p)).collect();
                    slot = end;
                    let pops = sequences.entry(machine).or_default();
                    while pops.len() < quota && !local.is_empty() {
                        let mut best = 0usize;
                        for i in 1..local.len() {
                            if submod_dataflow::argmax_prefers(local[best], local[i]) {
                                best = i;
                            }
                        }
                        let (winner, priority) = local.swap_remove(best);
                        if !complete && priority < tau {
                            break; // invalidated: an engine-side row may now lead
                        }
                        pops.push(winner);
                        batch_winners.push((machine, winner));
                        for entry in &mut local {
                            if let Some(s) =
                                self.graph.edge_weight(NodeId::new(winner), NodeId::new(entry.0))
                            {
                                entry.1 -= ratio * f64::from(s);
                            }
                        }
                    }
                    if pops.len() == quota {
                        newly_done.push(machine);
                    }
                }
                if batch_winners.is_empty() {
                    // Defensive fallback: certify one true argmax per
                    // machine with a single per-key top-1 pass, so the
                    // loop always advances.
                    let mut rows: Vec<(u64, (u64, f64))> = table.argmax_per_key()?.collect()?;
                    rows.sort_unstable_by_key(|&(m, _)| m);
                    driver_bytes += (rows.len() * size_of::<(u64, u64, f64)>()) as u64;
                    for (machine, (node, _)) in rows {
                        let pops = sequences.entry(machine).or_default();
                        if pops.len() < quota {
                            pops.push(node);
                            batch_winners.push((machine, node));
                        }
                        if pops.len() == quota {
                            newly_done.push(machine);
                        }
                    }
                    if batch_winners.is_empty() {
                        break; // every machine with rows is at quota
                    }
                }
                // One engine pass applies the whole batch: winners leave,
                // survivors take the discounts in pop order
                // (`batch_winners` is built machine-ascending with pops in
                // order, matching the replay's subtraction sequence).
                table =
                    self.apply_winners(&table, ship_winners(self.graph, batch_winners.clone()))?;
                if !newly_done.is_empty() {
                    // Drop rows of machines that hit quota so they stop
                    // competing for τ. The machine list is broadcast-sized.
                    done.extend(newly_done);
                    done.sort_unstable();
                    let gone = done.clone();
                    table = table.filter(move |&(m, _)| gone.binary_search(&m).is_err())?;
                }
                self.table = Some(table.clone());
            }
        }
        // Step-major reassembly: step t collects the t-th pop of every
        // machine, ascending by machine — identical to the lockstep order.
        let mut outcome = PhaseOutcome {
            selected: Vec::new(),
            members: NodeSet::new(n),
            steps: 0,
            peak_step_winners: 0,
            driver_bytes,
        };
        let longest = sequences.values().map(Vec::len).max().unwrap_or(0);
        for step in 0..longest {
            let mut step_winners = 0usize;
            for pops in sequences.values() {
                if let Some(&node) = pops.get(step) {
                    outcome.selected.push(NodeId::new(node));
                    outcome.members.insert(NodeId::new(node));
                    step_winners += 1;
                }
            }
            outcome.steps += 1;
            outcome.peak_step_winners = outcome.peak_step_winners.max(step_winners);
        }
        Ok(Some(outcome))
    }

    fn end_phase(&mut self, survivors: &NodeSet) -> Result<(), DistError> {
        let keep =
            self.pipeline.broadcast_words(survivors.words().to_vec(), self.graph.num_nodes());
        self.pool = self.pool.filter(move |&v| keep.contains(v))?;
        self.pool_len = self.pool.count()? as usize;
        self.table = None;
        Ok(())
    }

    fn restore_pool(&mut self, pool: &[u64]) -> Result<(), DistError> {
        let mut ids = pool.to_vec();
        ids.sort_unstable();
        ids.dedup();
        self.pool_len = ids.len();
        self.pool = self.pipeline.from_vec(ids);
        self.table = None;
        Ok(())
    }

    fn bytes_broadcast(&self) -> u64 {
        self.pipeline.metrics().bytes_broadcast - self.broadcast_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use submod_core::GraphBuilder;

    fn instance(n: usize) -> (SimilarityGraph, PairwiseObjective) {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u64 {
            b.add_undirected(v, (v + 1) % n as u64, 0.4).unwrap();
            b.add_undirected(v, (v + 5) % n as u64, 0.2).unwrap();
        }
        let graph = b.build();
        let utilities: Vec<f32> = (0..n).map(|i| 0.2 + ((i * 7) % 31) as f32 / 31.0).collect();
        (graph, PairwiseObjective::from_alpha(0.85, utilities).unwrap())
    }

    fn ground(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId::from_index).collect()
    }

    #[test]
    fn keying_is_deterministic_and_in_range() {
        let forced = Arc::new(NodeSet::from_members(10, [NodeId::new(7)]));
        let keyings = [
            MachineKeying::Hash { seed: 3, machines: 4 },
            MachineKeying::HashForced { seed: 3, machines: 4, forced },
            MachineKeying::Contiguous { chunk: 3 },
        ];
        for keying in &keyings {
            for v in 0..10u64 {
                let m = keying.machine_of(v);
                assert_eq!(m, keying.machine_of(v));
                assert!(m < 4, "machine {m} out of range for node {v}");
            }
        }
        // The forced node lands on machine 0 regardless of its hash.
        assert_eq!(keyings[1].machine_of(7), 0);
        assert_eq!(keyings[2].machine_of(5), 1);
    }

    #[test]
    fn backends_agree_step_for_step() {
        let (graph, objective) = instance(24);
        let ground = ground(24);
        let pipeline = Pipeline::new(3).unwrap();
        let mut mem = InMemoryGreedyBackend::new(&graph, &objective, &ground);
        let mut df = DataflowGreedyBackend::new(&pipeline, &graph, &objective, &ground);
        for backend in [&mut mem as &mut dyn MachineGreedyBackend, &mut df] {
            backend.begin_phase(MachineKeying::Hash { seed: 11, machines: 3 }, 3).unwrap();
        }
        let mut prev_mem: Vec<(u64, u64)> = Vec::new();
        let mut prev_df: Vec<(u64, u64)> = Vec::new();
        for step in 0..8 {
            let a = mem.step(&prev_mem).unwrap();
            let b = df.step(&prev_df).unwrap();
            assert_eq!(a.winners.len(), b.winners.len(), "step {step}");
            for (x, y) in a.winners.iter().zip(&b.winners) {
                assert_eq!(x.0, y.0, "machine at step {step}");
                assert_eq!(x.1, y.1, "node at step {step}");
                assert_eq!(x.2.to_bits(), y.2.to_bits(), "priority bits at step {step}");
            }
            prev_mem = a.winners.iter().map(|&(m, v, _)| (m, v)).collect();
            prev_df = prev_mem.clone();
        }
    }

    #[test]
    fn bulk_phase_equals_step_loop_and_dataflow() {
        let (graph, objective) = instance(30);
        let ground = ground(30);
        let keying = || MachineKeying::Hash { seed: 7, machines: 4 };
        for quota in [0usize, 1, 3, 8, 50] {
            // In-memory via the bulk fast path (what run_phase dispatches).
            let mut bulk = InMemoryGreedyBackend::new(&graph, &objective, &ground);
            bulk.begin_phase(keying(), 4).unwrap();
            let via_bulk = run_phase(&mut bulk, 30, quota).unwrap();
            // In-memory forced through the generic step loop.
            let mut stepped = InMemoryGreedyBackend::new(&graph, &objective, &ground);
            stepped.begin_phase(keying(), 4).unwrap();
            let mut via_steps = PhaseOutcome {
                selected: Vec::new(),
                members: NodeSet::new(30),
                steps: 0,
                peak_step_winners: 0,
                driver_bytes: 0,
            };
            let mut previous: Vec<(u64, u64)> = Vec::new();
            for _ in 0..quota {
                let step = stepped.step(&previous).unwrap();
                if step.winners.is_empty() {
                    break;
                }
                via_steps.steps += 1;
                via_steps.peak_step_winners = via_steps.peak_step_winners.max(step.winners.len());
                via_steps.driver_bytes += step.driver_bytes;
                previous = step
                    .winners
                    .iter()
                    .map(|&(m, v, _)| {
                        via_steps.selected.push(NodeId::new(v));
                        via_steps.members.insert(NodeId::new(v));
                        (m, v)
                    })
                    .collect();
            }
            assert_eq!(via_bulk.selected, via_steps.selected, "quota {quota}");
            assert_eq!(via_bulk.steps, via_steps.steps, "quota {quota}");
            assert_eq!(via_bulk.peak_step_winners, via_steps.peak_step_winners);
            assert_eq!(via_bulk.driver_bytes, via_steps.driver_bytes);
            // And the dataflow backend (no bulk path) agrees too.
            let pipeline = Pipeline::new(3).unwrap();
            let mut df = DataflowGreedyBackend::new(&pipeline, &graph, &objective, &ground);
            df.begin_phase(keying(), 4).unwrap();
            let via_df = run_phase(&mut df, 30, quota).unwrap();
            assert_eq!(via_bulk.selected, via_df.selected, "quota {quota}");
            assert_eq!(via_bulk.steps, via_df.steps);
        }
    }

    #[test]
    fn batched_phase_matches_lockstep_exactly() {
        let (graph, objective) = instance(30);
        let ground = ground(30);
        let keying = || MachineKeying::Hash { seed: 7, machines: 4 };
        for (batch, quota) in [(1usize, 3usize), (2, 8), (3, 0), (8, 8), (64, 50)] {
            let pipeline = Pipeline::new(3).unwrap();
            let mut lock = DataflowGreedyBackend::new(&pipeline, &graph, &objective, &ground);
            lock.begin_phase(keying(), 4).unwrap();
            let via_steps = run_phase(&mut lock, 30, quota).unwrap();
            let pipeline = Pipeline::new(3).unwrap();
            let mut batched = DataflowGreedyBackend::new(&pipeline, &graph, &objective, &ground)
                .with_winner_batch(batch);
            batched.begin_phase(keying(), 4).unwrap();
            let via_batch = run_phase(&mut batched, 30, quota).unwrap();
            assert_eq!(via_batch.selected, via_steps.selected, "batch {batch} quota {quota}");
            assert_eq!(via_batch.steps, via_steps.steps, "batch {batch} quota {quota}");
            assert_eq!(via_batch.peak_step_winners, via_steps.peak_step_winners);
        }
    }

    #[test]
    fn phase_exhausts_small_buckets() {
        let (graph, objective) = instance(9);
        let ground = ground(9);
        let mut mem = InMemoryGreedyBackend::new(&graph, &objective, &ground);
        mem.begin_phase(MachineKeying::Contiguous { chunk: 3 }, 3).unwrap();
        let outcome = run_phase(&mut mem, 9, 100).unwrap();
        // Quota far above the bucket size: every machine empties after 3
        // steps and the phase stops.
        assert_eq!(outcome.steps, 3);
        assert_eq!(outcome.selected.len(), 9);
        assert_eq!(outcome.members.len(), 9);
    }
}
