//! Property-based tests for the data layer: generator determinism and
//! virtual perturbed-dataset invariants under arbitrary parameters.

use proptest::prelude::*;
use submod_data::{
    build_instance, center_utilities, ClusteredDataset, DatasetConfig, PerturbedDataset,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation is deterministic per seed and produces the configured
    /// shape with class-balanced labels.
    #[test]
    fn clustered_dataset_shape_and_determinism(
        classes in 2usize..8,
        per_class in 2usize..20,
        dim in 2usize..12,
        seed in any::<u64>(),
    ) {
        let a = ClusteredDataset::generate(classes, per_class, dim, 0.2, seed).unwrap();
        let b = ClusteredDataset::generate(classes, per_class, dim, 0.2, seed).unwrap();
        prop_assert_eq!(a.embeddings(), b.embeddings());
        prop_assert_eq!(a.len(), classes * per_class);
        for c in 0..classes as u32 {
            prop_assert_eq!(a.labels().iter().filter(|&&l| l == c).count(), per_class);
        }
    }

    /// Centering always zeroes the minimum and preserves differences.
    #[test]
    fn centering_is_a_shift(values in proptest::collection::vec(-100.0f32..100.0, 1..50)) {
        let centered = center_utilities(values.clone());
        let min = values.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert_eq!(centered.len(), values.len());
        let new_min = centered.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert!(new_min.abs() < 1e-4);
        for (c, v) in centered.iter().zip(&values) {
            prop_assert!((c - (v - min)).abs() < 1e-4);
        }
    }

    /// Virtual perturbed points are deterministic, stay near their base
    /// point, and have symmetric neighbor lists.
    #[test]
    fn perturbed_dataset_invariants(factor in 2u64..30, probe in any::<u64>(), sigma in 0.001f32..0.05) {
        let base = build_instance(
            &DatasetConfig::tiny().with_points_per_class(5).with_seed(3),
        )
        .unwrap();
        let perturbed = PerturbedDataset::new(&base, factor, sigma, 9).unwrap();
        let i = probe % perturbed.total_points();
        // Determinism.
        prop_assert_eq!(perturbed.embedding(i), perturbed.embedding(i));
        prop_assert_eq!(perturbed.utility(i), perturbed.utility(i));
        // Non-negative utility.
        prop_assert!(perturbed.utility(i) >= 0.0);
        // Symmetric neighbors.
        for (nb, w) in perturbed.neighbors(i) {
            let back = perturbed.neighbors(nb);
            let found = back.iter().find(|&&(id, _)| id == i);
            prop_assert!(found.is_some(), "missing reverse edge {} -> {}", nb, i);
            prop_assert!((found.unwrap().1 - w).abs() < 1e-6);
        }
        // Index arithmetic is consistent.
        prop_assert_eq!(perturbed.base_of(i) * factor + perturbed.variant_of(i), i);
    }

    /// Instances built from any tiny config are internally consistent.
    #[test]
    fn instances_are_consistent(per_class in 3usize..12, seed in 0u64..1000) {
        let config = DatasetConfig::tiny().with_points_per_class(per_class).with_seed(seed);
        let instance = build_instance(&config).unwrap();
        prop_assert_eq!(instance.len(), 20 * per_class);
        prop_assert_eq!(instance.graph.num_nodes(), instance.len());
        prop_assert!(instance.graph.is_symmetric());
        prop_assert!(instance.utilities.iter().all(|u| u.is_finite() && *u >= 0.0));
        let min = instance.utilities.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert!(min.abs() < 1e-6, "utilities must be centered, min = {}", min);
    }
}
