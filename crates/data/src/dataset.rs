use crate::DataError;

/// Configuration of a synthetic selection dataset.
///
/// The presets mirror the paper's evaluation datasets (§6) at configurable
/// scale: CIFAR-100-like (100 classes × 500 points, 64-d embeddings) and
/// ImageNet-like (1000 classes, 64-d here for tractability — the paper
/// uses 2048-d ResNet features, but graph topology, not raw
/// dimensionality, is what the selection algorithms consume).
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetConfig {
    name: String,
    num_classes: usize,
    points_per_class: usize,
    dim: usize,
    cluster_std: f32,
    knn_k: usize,
    seed: u64,
}

impl DatasetConfig {
    /// A custom configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if any size parameter is zero.
    pub fn new(
        name: impl Into<String>,
        num_classes: usize,
        points_per_class: usize,
        dim: usize,
    ) -> Result<Self, DataError> {
        if num_classes == 0 || points_per_class == 0 || dim == 0 {
            return Err(DataError::config("all size parameters must be positive"));
        }
        Ok(DatasetConfig {
            name: name.into(),
            num_classes,
            points_per_class,
            dim,
            cluster_std: 0.25,
            knn_k: 10,
            seed: 0x5EED,
        })
    }

    /// CIFAR-100-like: 100 classes × 500 points, 64-d (the paper's 50 k
    /// dataset).
    pub fn cifar100_like() -> Self {
        DatasetConfig {
            name: "cifar100-like".into(),
            num_classes: 100,
            points_per_class: 500,
            dim: 64,
            cluster_std: 0.25,
            knn_k: 10,
            seed: 0xC1FA,
        }
    }

    /// ImageNet-like: 1000 classes, scaled-down default of 200 points per
    /// class (200 k total); use [`Self::with_points_per_class`] to grow it
    /// toward the paper's 1.2 M.
    pub fn imagenet_like() -> Self {
        DatasetConfig {
            name: "imagenet-like".into(),
            num_classes: 1000,
            points_per_class: 200,
            dim: 64,
            cluster_std: 0.25,
            knn_k: 10,
            seed: 0x11A6,
        }
    }

    /// A tiny instance for unit tests and examples (20 classes × 50).
    pub fn tiny() -> Self {
        DatasetConfig {
            name: "tiny".into(),
            num_classes: 20,
            points_per_class: 50,
            dim: 16,
            cluster_std: 0.2,
            knn_k: 5,
            seed: 0x717,
        }
    }

    /// Overrides the points per class (scaling the dataset).
    pub fn with_points_per_class(mut self, points: usize) -> Self {
        self.points_per_class = points.max(1);
        self
    }

    /// Overrides the number of nearest neighbors for the graph.
    pub fn with_knn_k(mut self, k: usize) -> Self {
        self.knn_k = k.max(1);
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Scales the per-class point count by `factor` (at least 1 point).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.points_per_class = ((self.points_per_class as f64 * factor).round() as usize).max(1);
        self
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Points generated per class.
    pub fn points_per_class(&self) -> usize {
        self.points_per_class
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Intra-class standard deviation.
    pub fn cluster_std(&self) -> f32 {
        self.cluster_std
    }

    /// Nearest neighbors per point in the similarity graph.
    pub fn knn_k(&self) -> usize {
        self.knn_k
    }

    /// RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total number of points.
    pub fn total_points(&self) -> usize {
        self.num_classes * self.points_per_class
    }

    /// A filesystem-safe cache key encoding every generation parameter.
    pub fn cache_key(&self) -> String {
        format!(
            "{}-c{}-p{}-d{}-s{}-k{}-seed{:x}",
            self.name,
            self.num_classes,
            self.points_per_class,
            self.dim,
            (self.cluster_std * 1000.0) as u32,
            self.knn_k,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_shapes() {
        let cifar = DatasetConfig::cifar100_like();
        assert_eq!(cifar.total_points(), 50_000);
        assert_eq!(cifar.dim(), 64);
        assert_eq!(cifar.knn_k(), 10);
        let imagenet = DatasetConfig::imagenet_like();
        assert_eq!(imagenet.num_classes(), 1000);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = DatasetConfig::tiny().with_points_per_class(7).with_knn_k(3).with_seed(1);
        assert_eq!(cfg.points_per_class(), 7);
        assert_eq!(cfg.knn_k(), 3);
        assert_eq!(cfg.seed(), 1);
    }

    #[test]
    fn scaling_changes_cache_key() {
        let a = DatasetConfig::cifar100_like();
        let b = a.clone().scaled(0.1);
        assert_eq!(b.points_per_class(), 50);
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn custom_config_validation() {
        assert!(DatasetConfig::new("x", 0, 1, 1).is_err());
        assert!(DatasetConfig::new("x", 1, 0, 1).is_err());
        assert!(DatasetConfig::new("x", 1, 1, 0).is_err());
        assert!(DatasetConfig::new("x", 2, 3, 4).is_ok());
    }

    #[test]
    fn scaled_never_hits_zero() {
        let cfg = DatasetConfig::tiny().scaled(0.0001);
        assert_eq!(cfg.points_per_class(), 1);
    }
}
