//! Synthetic datasets, utilities, and virtual billion-scale data for the
//! subset-selection reproduction.
//!
//! The paper's evaluation (§6) uses CIFAR-100 / ImageNet embeddings from a
//! coarsely-trained ResNet-56 and a 13 B-point "Perturbed-ImageNet" blowup.
//! Neither the images nor the trained model are available here, and §6
//! notes that *"the exact choice of similarity and utility scores … does
//! not impact the comparison of the algorithms, as long as they are
//! consistently used"* — so this crate substitutes statistically similar
//! synthetic instances (see DESIGN.md for the substitution argument):
//!
//! - [`ClusteredDataset`] — Gaussian-mixture embeddings with class
//!   structure ([`DatasetConfig::cifar100_like`],
//!   [`DatasetConfig::imagenet_like`]).
//! - [`CoarseClassifier`] — a nearest-centroid softmax classifier fit on a
//!   10 % sample, standing in for the coarsely-trained ResNet; it produces
//!   the margin-based uncertainty utilities of Scheffer et al. (§6).
//! - [`PerturbedDataset`] — the Perturbed-ImageNet analogue: every base
//!   point lazily expands into `factor` noisy copies with a deterministic
//!   per-index RNG, so billions of points exist *virtually* without being
//!   materialized.
//! - [`SelectionInstance`] — a ready-to-optimize bundle (graph, utilities,
//!   objective parameters) built end-to-end by [`build_instance`].
//! - [`pca_2d`] / [`rasterize`] — the 2-D projection behind the Figure 5
//!   subset visualization (PCA substitutes for t-SNE; the figure's claim is
//!   about spatial spread, which a linear projection preserves).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod dataset;
mod error;
mod instance;
mod pca;
mod perturb;
mod synthetic;
mod utility;

pub use classifier::CoarseClassifier;
pub use dataset::DatasetConfig;
pub use error::DataError;
pub use instance::{build_instance, SelectionInstance};
pub use pca::{pca_2d, rasterize, RasterGrid};
pub use perturb::PerturbedDataset;
pub use synthetic::ClusteredDataset;
pub use utility::{center_utilities, margin_utilities};
