use std::error::Error;
use std::fmt;

/// Errors produced while generating datasets and utilities.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum DataError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the violated constraint.
        detail: String,
    },
    /// Embedding or index construction failed in the k-NN layer.
    Knn(submod_knn::KnnError),
    /// Objective construction failed in the core layer.
    Core(submod_core::CoreError),
}

impl DataError {
    pub(crate) fn config(detail: impl Into<String>) -> Self {
        DataError::InvalidConfig { detail: detail.into() }
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig { detail } => write!(f, "invalid dataset config: {detail}"),
            DataError::Knn(inner) => write!(f, "k-nn failure: {inner}"),
            DataError::Core(inner) => write!(f, "core failure: {inner}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Knn(inner) => Some(inner),
            DataError::Core(inner) => Some(inner),
            _ => None,
        }
    }
}

impl From<submod_knn::KnnError> for DataError {
    fn from(err: submod_knn::KnnError) -> Self {
        DataError::Knn(err)
    }
}

impl From<submod_core::CoreError> for DataError {
    fn from(err: submod_core::CoreError) -> Self {
        DataError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let err: DataError = submod_core::CoreError::SelfLoop { node: 1 }.into();
        assert!(err.source().is_some());
        let err: DataError = submod_knn::KnnError::EmptyParameter { name: "k" }.into();
        assert!(err.source().is_some());
        assert!(DataError::config("bad").source().is_none());
    }

    #[test]
    fn display_is_informative() {
        assert!(DataError::config("zero classes").to_string().contains("zero classes"));
    }
}
