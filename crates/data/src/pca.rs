//! 2-D projection and rasterization for the subset visualization
//! (paper Appendix C / Figure 5).
//!
//! The paper projects CIFAR-100 embeddings with t-SNE and rasterizes the
//! chosen subset; the figure's claim is that *fewer partitions spread the
//! selected points more uniformly across the plane*. PCA preserves exactly
//! that spread-vs-clumping contrast at a fraction of the cost, so the
//! reproduction substitutes it (documented in DESIGN.md).

use crate::DataError;
use rayon::prelude::*;
use submod_knn::Embeddings;

/// Projects embeddings onto their top two principal components via power
/// iteration with deflation.
///
/// Deterministic (fixed internal start vectors). Returns one `(x, y)` pair
/// per row.
///
/// # Errors
///
/// Returns an error if the matrix has fewer than 2 rows or dimensions.
pub fn pca_2d(embeddings: &Embeddings) -> Result<Vec<(f32, f32)>, DataError> {
    let n = embeddings.len();
    let d = embeddings.dim();
    if n < 2 || d < 2 {
        return Err(DataError::config("PCA needs at least 2 points and 2 dimensions"));
    }

    // Column means.
    let mut mean = vec![0.0f64; d];
    for (_, row) in embeddings.iter() {
        for (j, &x) in row.iter().enumerate() {
            mean[j] += f64::from(x);
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }

    let component = |deflate: Option<&[f64]>, start_phase: f64| -> Vec<f64> {
        // Deterministic pseudo-random start vector.
        let mut v: Vec<f64> = (0..d).map(|j| ((j as f64 + start_phase) * 12.9898).sin()).collect();
        normalize(&mut v);
        for _ in 0..60 {
            // w = Cov · v, computed as Σ (x−μ)((x−μ)·v) / n without forming Cov.
            let w: Vec<f64> = embeddings
                .as_flat()
                .par_chunks(d)
                .fold(
                    || vec![0.0f64; d],
                    |mut acc, row| {
                        let mut proj = 0.0f64;
                        for j in 0..d {
                            proj += (f64::from(row[j]) - mean[j]) * v[j];
                        }
                        for j in 0..d {
                            acc[j] += (f64::from(row[j]) - mean[j]) * proj;
                        }
                        acc
                    },
                )
                .reduce(
                    || vec![0.0f64; d],
                    |mut a, b| {
                        for j in 0..d {
                            a[j] += b[j];
                        }
                        a
                    },
                );
            let mut w: Vec<f64> = w.into_iter().map(|x| x / n as f64).collect();
            if let Some(first) = deflate {
                let dot: f64 = w.iter().zip(first).map(|(a, b)| a * b).sum();
                for (wj, fj) in w.iter_mut().zip(first) {
                    *wj -= dot * fj;
                }
            }
            normalize(&mut w);
            v = w;
        }
        v
    };

    let pc1 = component(None, 0.5);
    let pc2 = component(Some(&pc1), 1.7);

    Ok(embeddings
        .iter()
        .map(|(_, row)| {
            let mut x = 0.0f64;
            let mut y = 0.0f64;
            for (j, &val) in row.iter().enumerate() {
                let centered = f64::from(val) - mean[j];
                x += centered * pc1[j];
                y += centered * pc2[j];
            }
            (x as f32, y as f32)
        })
        .collect())
}

fn normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
    for x in v {
        *x /= norm;
    }
}

/// An occupancy grid over a 2-D projection: how many points (and how many
/// *selected* points) land in each cell — the quantitative form of the
/// paper's Figure 5 rasterization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RasterGrid {
    width: usize,
    height: usize,
    counts: Vec<u32>,
    selected: Vec<u32>,
}

impl RasterGrid {
    /// Grid width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total points in cell `(x, y)`.
    pub fn count(&self, x: usize, y: usize) -> u32 {
        self.counts[y * self.width + x]
    }

    /// Selected points in cell `(x, y)`.
    pub fn selected(&self, x: usize, y: usize) -> u32 {
        self.selected[y * self.width + x]
    }

    /// Fraction of *occupied* cells that contain at least one selected
    /// point — the "spread" statistic behind Figure 5: centralized
    /// selection covers more of the occupied plane than heavily
    /// partitioned selection, which clumps.
    pub fn selected_cell_coverage(&self) -> f64 {
        let mut occupied = 0usize;
        let mut covered = 0usize;
        for i in 0..self.counts.len() {
            if self.counts[i] > 0 {
                occupied += 1;
                covered += usize::from(self.selected[i] > 0);
            }
        }
        if occupied == 0 {
            return 0.0;
        }
        covered as f64 / occupied as f64
    }

    /// Renders the grid as CSV rows `x,y,count,selected` (occupied cells
    /// only), for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y,count,selected\n");
        for y in 0..self.height {
            for x in 0..self.width {
                let c = self.count(x, y);
                if c > 0 {
                    out.push_str(&format!("{x},{y},{c},{}\n", self.selected(x, y)));
                }
            }
        }
        out
    }
}

/// Rasterizes projected points into a `width × height` occupancy grid.
/// `selected_mask[i]` marks whether point `i` is in the chosen subset.
///
/// # Errors
///
/// Returns an error if the grid is degenerate or the mask length differs
/// from the point count.
pub fn rasterize(
    points: &[(f32, f32)],
    selected_mask: &[bool],
    width: usize,
    height: usize,
) -> Result<RasterGrid, DataError> {
    if width == 0 || height == 0 {
        return Err(DataError::config("raster grid must have positive dimensions"));
    }
    if points.len() != selected_mask.len() {
        return Err(DataError::config("selected mask must align with points"));
    }
    let (mut min_x, mut max_x) = (f32::INFINITY, f32::NEG_INFINITY);
    let (mut min_y, mut max_y) = (f32::INFINITY, f32::NEG_INFINITY);
    for &(x, y) in points {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let span_x = (max_x - min_x).max(f32::MIN_POSITIVE);
    let span_y = (max_y - min_y).max(f32::MIN_POSITIVE);

    let mut grid = RasterGrid {
        width,
        height,
        counts: vec![0; width * height],
        selected: vec![0; width * height],
    };
    for (i, &(x, y)) in points.iter().enumerate() {
        let cx = (((x - min_x) / span_x) * (width as f32 - 1.0)).round() as usize;
        let cy = (((y - min_y) / span_y) * (height as f32 - 1.0)).round() as usize;
        let cell = cy.min(height - 1) * width + cx.min(width - 1);
        grid.counts[cell] += 1;
        grid.selected[cell] += u32::from(selected_mask[i]);
    }
    Ok(grid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusteredDataset;

    #[test]
    fn pca_separates_clusters() {
        let data = ClusteredDataset::generate(2, 100, 16, 0.05, 8).unwrap();
        let projected = pca_2d(data.embeddings()).unwrap();
        // The two classes must separate along some direction in the plane.
        let class0: Vec<(f32, f32)> = (0..100).map(|i| projected[i]).collect();
        let class1: Vec<(f32, f32)> = (100..200).map(|i| projected[i]).collect();
        let mean = |pts: &[(f32, f32)]| {
            let n = pts.len() as f32;
            (pts.iter().map(|p| p.0).sum::<f32>() / n, pts.iter().map(|p| p.1).sum::<f32>() / n)
        };
        let (m0x, m0y) = mean(&class0);
        let (m1x, m1y) = mean(&class1);
        let centroid_dist = ((m0x - m1x).powi(2) + (m0y - m1y).powi(2)).sqrt();
        assert!(centroid_dist > 0.5, "PCA failed to separate clusters: {centroid_dist}");
    }

    #[test]
    fn pca_is_deterministic() {
        let data = ClusteredDataset::generate(3, 30, 8, 0.2, 1).unwrap();
        assert_eq!(pca_2d(data.embeddings()).unwrap(), pca_2d(data.embeddings()).unwrap());
    }

    #[test]
    fn pca_rejects_degenerate_input() {
        let single = submod_knn::Embeddings::from_rows(4, &[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        assert!(pca_2d(&single).is_err());
    }

    #[test]
    fn rasterize_counts_points_and_selection() {
        let points = vec![(0.0, 0.0), (1.0, 1.0), (1.0, 1.0), (0.5, 0.5)];
        let mask = vec![true, false, true, false];
        let grid = rasterize(&points, &mask, 3, 3).unwrap();
        assert_eq!(grid.count(0, 0), 1);
        assert_eq!(grid.selected(0, 0), 1);
        assert_eq!(grid.count(2, 2), 2);
        assert_eq!(grid.selected(2, 2), 1);
        assert_eq!(grid.count(1, 1), 1);
        let grid_ref = &grid;
        let total: u32 = (0..3).flat_map(|y| (0..3).map(move |x| grid_ref.count(x, y))).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn coverage_statistic() {
        let points = vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)];
        let grid = rasterize(&points, &[true, false, false, false], 2, 2).unwrap();
        assert!((grid.selected_cell_coverage() - 0.25).abs() < 1e-9);
        let all = rasterize(&points, &[true; 4], 2, 2).unwrap();
        assert_eq!(all.selected_cell_coverage(), 1.0);
    }

    #[test]
    fn csv_lists_occupied_cells() {
        let points = vec![(0.0, 0.0), (1.0, 1.0)];
        let grid = rasterize(&points, &[true, false], 2, 2).unwrap();
        let csv = grid.to_csv();
        assert!(csv.starts_with("x,y,count,selected\n"));
        assert_eq!(csv.lines().count(), 3, "header + 2 occupied cells");
    }

    #[test]
    fn rasterize_validation() {
        assert!(rasterize(&[(0.0, 0.0)], &[true], 0, 2).is_err());
        assert!(rasterize(&[(0.0, 0.0)], &[true, false], 2, 2).is_err());
    }
}
