use crate::synthetic::StandardNormalish;
use crate::{ClusteredDataset, DataError};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use submod_knn::Embeddings;

/// A simulated *coarsely-trained* classifier.
///
/// The paper (§6) trains a ResNet-56 on a random 10 % subset and uses its
/// softmax probabilities to compute margin-based uncertainty utilities.
/// This stand-in fits per-class centroids on a random sample of the data
/// (adding estimation noise to mimic the undertrained model) and predicts
/// class probabilities with a temperature-scaled softmax over negative
/// squared distances — points near decision boundaries get nearly-tied
/// top-2 probabilities, exactly the uncertainty structure margin utility
/// rewards.
#[derive(Clone, Debug)]
pub struct CoarseClassifier {
    centroids: Embeddings,
    temperature: f32,
}

impl CoarseClassifier {
    /// Fits the classifier on a random `sample_fraction` of `data` (the
    /// paper uses 10 %). `noise` perturbs the fitted centroids to simulate
    /// coarseness; `temperature` scales the softmax sharpness.
    ///
    /// # Errors
    ///
    /// Returns an error if `sample_fraction ∉ (0, 1]`, `temperature ≤ 0`,
    /// or a class has no sampled points *and* no fallback (empty dataset).
    pub fn fit(
        data: &ClusteredDataset,
        sample_fraction: f64,
        noise: f32,
        temperature: f32,
        seed: u64,
    ) -> Result<Self, DataError> {
        if !(sample_fraction > 0.0 && sample_fraction <= 1.0) {
            return Err(DataError::config("sample_fraction must be in (0, 1]"));
        }
        if !(temperature > 0.0 && temperature.is_finite()) {
            return Err(DataError::config("temperature must be positive"));
        }
        if data.is_empty() {
            return Err(DataError::config("cannot fit a classifier on an empty dataset"));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = data.len();
        let dim = data.embeddings().dim();
        let classes = data.num_classes();

        let mut ids: Vec<usize> = (0..n).collect();
        ids.shuffle(&mut rng);
        let sample_len = ((n as f64 * sample_fraction).ceil() as usize).clamp(1, n);
        let sample = &ids[..sample_len];

        let mut sums = vec![0.0f64; classes * dim];
        let mut counts = vec![0u64; classes];
        for &i in sample {
            let label = data.labels()[i] as usize;
            counts[label] += 1;
            let row = data.embeddings().row(i);
            for (d, &x) in row.iter().enumerate() {
                sums[label * dim + d] += f64::from(x);
            }
        }

        let normal = StandardNormalish::new();
        let mut centroids = vec![0.0f32; classes * dim];
        for c in 0..classes {
            if counts[c] == 0 {
                // Unseen class (tiny samples): noisy global mean fallback.
                for d in 0..dim {
                    let global: f64 =
                        (0..classes).map(|k| sums[k * dim + d]).sum::<f64>() / sample_len as f64;
                    centroids[c * dim + d] = global as f32 + noise * normal.sample(&mut rng);
                }
            } else {
                for d in 0..dim {
                    centroids[c * dim + d] = (sums[c * dim + d] / counts[c] as f64) as f32
                        + noise * normal.sample(&mut rng);
                }
            }
        }
        Ok(CoarseClassifier { centroids: Embeddings::from_flat(dim, centroids)?, temperature })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.centroids.len()
    }

    /// Class-probability vector for one embedding (softmax over negative
    /// squared centroid distances / temperature).
    ///
    /// # Panics
    ///
    /// Panics if `embedding` has the wrong dimension.
    pub fn predict_proba(&self, embedding: &[f32]) -> Vec<f32> {
        let classes = self.num_classes();
        let mut logits = Vec::with_capacity(classes);
        for c in 0..classes {
            let d = submod_knn::l2_distance_squared(self.centroids.row(c), embedding);
            logits.push(-d / self.temperature);
        }
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for l in &mut logits {
            *l = (*l - max).exp();
            sum += *l;
        }
        for l in &mut logits {
            *l /= sum;
        }
        logits
    }

    /// The top-2 probabilities `(P(top | x), P(second | x))`.
    ///
    /// # Panics
    ///
    /// Panics if `embedding` has the wrong dimension or there are fewer
    /// than two classes.
    pub fn top2(&self, embedding: &[f32]) -> (f32, f32) {
        let probs = self.predict_proba(embedding);
        assert!(probs.len() >= 2, "margin needs at least two classes");
        let mut top = f32::NEG_INFINITY;
        let mut second = f32::NEG_INFINITY;
        for &p in &probs {
            if p > top {
                second = top;
                top = p;
            } else if p > second {
                second = p;
            }
        }
        (top, second)
    }

    /// Margin uncertainty `u(x) = 1 − (P(top|x) − P(second|x))` for every
    /// row of `embeddings` (Scheffer et al., as used in §6).
    pub fn margin_utilities(&self, embeddings: &Embeddings) -> Vec<f32> {
        (0..embeddings.len())
            .into_par_iter()
            .map(|i| {
                let (top, second) = self.top2(embeddings.row(i));
                1.0 - (top - second)
            })
            .collect()
    }

    /// Fraction of points whose predicted class matches the label —
    /// deliberately mediocre for a *coarse* model.
    pub fn accuracy(&self, data: &ClusteredDataset) -> f64 {
        let correct: usize = (0..data.len())
            .into_par_iter()
            .map(|i| {
                let probs = self.predict_proba(data.embeddings().row(i));
                assert!(probs.iter().all(|p| !p.is_nan()), "class probabilities must not be NaN");
                // Total order plus reversed index tie-break: equal
                // probabilities predict the smallest class id.
                let pred = probs
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
                    .map(|(c, _)| c as u32)
                    .unwrap_or(0);
                usize::from(pred == data.labels()[i])
            })
            .sum();
        correct as f64 / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> ClusteredDataset {
        ClusteredDataset::generate(8, 60, 16, 0.12, 5).unwrap()
    }

    #[test]
    fn probabilities_are_a_distribution() {
        let data = dataset();
        let clf = CoarseClassifier::fit(&data, 0.1, 0.02, 0.5, 1).unwrap();
        let probs = clf.predict_proba(data.embeddings().row(0));
        assert_eq!(probs.len(), 8);
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn coarse_model_beats_chance_but_not_perfect() {
        let data = dataset();
        let clf = CoarseClassifier::fit(&data, 0.1, 0.05, 0.5, 1).unwrap();
        let acc = clf.accuracy(&data);
        assert!(acc > 0.5, "accuracy {acc} worse than heavily-noised chance");
    }

    #[test]
    fn margin_utilities_lie_in_unit_interval() {
        let data = dataset();
        let clf = CoarseClassifier::fit(&data, 0.1, 0.02, 0.5, 2).unwrap();
        let utils = clf.margin_utilities(data.embeddings());
        assert_eq!(utils.len(), data.len());
        assert!(utils.iter().all(|&u| (0.0..=1.0).contains(&u)));
        // Utilities must have spread — identical values would make the
        // selection degenerate.
        let min = utils.iter().copied().fold(f32::INFINITY, f32::min);
        let max = utils.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 0.05, "margin utilities have no spread: [{min}, {max}]");
    }

    #[test]
    fn boundary_points_have_higher_utility_than_centers() {
        let data = dataset();
        let clf = CoarseClassifier::fit(&data, 0.2, 0.0, 0.5, 3).unwrap();
        // A point exactly at a class center is confident (low utility);
        // the midpoint between two centers is uncertain (high utility).
        let c0 = data.class_centers().row(0);
        let c1 = data.class_centers().row(1);
        let mid: Vec<f32> = c0.iter().zip(c1).map(|(a, b)| (a + b) / 2.0).collect();
        let (t_mid, s_mid) = clf.top2(&mid);
        let (t_c, s_c) = clf.top2(c0);
        let u_mid = 1.0 - (t_mid - s_mid);
        let u_center = 1.0 - (t_c - s_c);
        assert!(u_mid > u_center, "midpoint utility {u_mid} <= center utility {u_center}");
    }

    #[test]
    fn fit_validates_arguments() {
        let data = dataset();
        assert!(CoarseClassifier::fit(&data, 0.0, 0.1, 0.5, 0).is_err());
        assert!(CoarseClassifier::fit(&data, 1.5, 0.1, 0.5, 0).is_err());
        assert!(CoarseClassifier::fit(&data, 0.1, 0.1, 0.0, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let data = dataset();
        let a = CoarseClassifier::fit(&data, 0.1, 0.05, 0.5, 11).unwrap();
        let b = CoarseClassifier::fit(&data, 0.1, 0.05, 0.5, 11).unwrap();
        assert_eq!(a.margin_utilities(data.embeddings()), b.margin_utilities(data.embeddings()));
    }
}
