//! Utility-vector helpers.

use crate::{CoarseClassifier, DataError};
use submod_knn::Embeddings;

/// Computes margin-based uncertainty utilities for every embedding row and
/// centers them (paper §6: *"We center the utilities by subtracting the
/// minimum utility from all values"*).
///
/// # Errors
///
/// Returns an error if the embedding dimension does not match the
/// classifier.
pub fn margin_utilities(
    classifier: &CoarseClassifier,
    embeddings: &Embeddings,
) -> Result<Vec<f32>, DataError> {
    if embeddings.is_empty() {
        return Ok(Vec::new());
    }
    let raw = classifier.margin_utilities(embeddings);
    Ok(center_utilities(raw))
}

/// Shifts utilities so the minimum becomes exactly 0.
///
/// ```
/// let centered = submod_data::center_utilities(vec![0.25, 0.5, 1.0]);
/// assert_eq!(centered, vec![0.0, 0.25, 0.75]);
/// ```
pub fn center_utilities(mut utilities: Vec<f32>) -> Vec<f32> {
    let min = utilities.iter().copied().fold(f32::INFINITY, f32::min);
    if min.is_finite() {
        for u in &mut utilities {
            *u -= min;
        }
    }
    utilities
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusteredDataset;

    #[test]
    fn centering_zeroes_the_minimum() {
        let centered = center_utilities(vec![2.0, 5.0, 3.5]);
        assert_eq!(centered[0], 0.0);
        assert_eq!(centered[1], 3.0);
        assert!(center_utilities(vec![]).is_empty());
    }

    #[test]
    fn centering_is_idempotent() {
        let once = center_utilities(vec![1.0, 2.0]);
        let twice = center_utilities(once.clone());
        assert_eq!(once, twice);
    }

    #[test]
    fn pipeline_produces_centered_utilities() {
        let data = ClusteredDataset::generate(5, 30, 8, 0.1, 7).unwrap();
        let clf = CoarseClassifier::fit(&data, 0.1, 0.02, 0.5, 7).unwrap();
        let utils = margin_utilities(&clf, data.embeddings()).unwrap();
        assert_eq!(utils.len(), data.len());
        let min = utils.iter().copied().fold(f32::INFINITY, f32::min);
        assert_eq!(min, 0.0);
    }
}
