use crate::{margin_utilities, ClusteredDataset, CoarseClassifier, DataError, DatasetConfig};
use submod_core::{PairwiseObjective, SimilarityGraph};
use submod_knn::{build_knn_graph, cache, Embeddings, KnnBackend};

/// A ready-to-optimize subset-selection instance: the symmetrized k-NN
/// similarity graph, centered margin utilities, and the raw embeddings /
/// labels they came from.
///
/// Built by [`build_instance`], which runs the paper's full §6 data
/// pipeline: generate embeddings → fit a coarse classifier on a 10 %
/// sample → margin utilities (centered) → 10-NN cosine graph
/// (symmetrized).
#[derive(Clone, Debug)]
pub struct SelectionInstance {
    /// The symmetrized similarity graph.
    pub graph: SimilarityGraph,
    /// Centered margin utilities, aligned with graph nodes.
    pub utilities: Vec<f32>,
    /// The embedding matrix the graph was built from.
    pub embeddings: Embeddings,
    /// Ground-truth class labels (diagnostics only).
    pub labels: Vec<u32>,
}

impl SelectionInstance {
    /// Number of points in the ground set.
    pub fn len(&self) -> usize {
        self.utilities.len()
    }

    /// Returns `true` if the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.utilities.is_empty()
    }

    /// The pairwise objective with the paper's convention `β = 1 − α`.
    ///
    /// # Errors
    ///
    /// Returns an error if `α ∉ (0, 1]`.
    pub fn objective(&self, alpha: f64) -> Result<PairwiseObjective, DataError> {
        Ok(PairwiseObjective::from_alpha(alpha, self.utilities.clone())?)
    }
}

/// Builds a [`SelectionInstance`] from a [`DatasetConfig`], caching the
/// expensive k-NN graph on disk keyed by the config.
///
/// # Errors
///
/// Returns an error if generation, classification, or graph construction
/// fails.
///
/// ```
/// use submod_data::{build_instance, DatasetConfig};
///
/// # fn main() -> Result<(), submod_data::DataError> {
/// let instance = build_instance(&DatasetConfig::tiny().with_points_per_class(10))?;
/// assert_eq!(instance.len(), 200);
/// assert!(instance.graph.is_symmetric());
/// # Ok(())
/// # }
/// ```
pub fn build_instance(config: &DatasetConfig) -> Result<SelectionInstance, DataError> {
    let _span = submod_obs::span("data.build_instance");
    let dataset = ClusteredDataset::generate(
        config.num_classes(),
        config.points_per_class(),
        config.dim(),
        config.cluster_std(),
        config.seed(),
    )?;
    let classifier = CoarseClassifier::fit(&dataset, 0.10, 0.05, 0.5, config.seed() ^ 0xA11CE)?;
    let utilities = margin_utilities(&classifier, dataset.embeddings())?;

    let cache_path = cache::default_cache_dir().join(format!("{}.graph", config.cache_key()));
    let backend = KnnBackend::auto(dataset.len());
    let embeddings = dataset.embeddings().clone();
    let utilities_for_cache = utilities.clone();
    let (graph, utilities) = cache::load_or_build(&cache_path, move || {
        let graph = build_knn_graph(&embeddings, config.knn_k(), &backend, config.seed())?;
        Ok((graph, utilities_for_cache))
    })?;

    Ok(SelectionInstance {
        graph,
        utilities,
        embeddings: dataset.embeddings().clone(),
        labels: dataset.labels().to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance() -> SelectionInstance {
        build_instance(&DatasetConfig::tiny().with_points_per_class(20).with_seed(42)).unwrap()
    }

    #[test]
    fn instance_is_internally_consistent() {
        let inst = tiny_instance();
        assert_eq!(inst.len(), 400);
        assert_eq!(inst.graph.num_nodes(), 400);
        assert_eq!(inst.labels.len(), 400);
        assert_eq!(inst.embeddings.len(), 400);
        assert!(inst.graph.is_symmetric());
        assert!(inst.graph.min_degree() >= 4, "min degree {}", inst.graph.min_degree());
    }

    #[test]
    fn utilities_are_centered_and_finite() {
        let inst = tiny_instance();
        let min = inst.utilities.iter().copied().fold(f32::INFINITY, f32::min);
        assert_eq!(min, 0.0);
        assert!(inst.utilities.iter().all(|u| u.is_finite()));
    }

    #[test]
    fn objective_uses_alpha_convention() {
        let inst = tiny_instance();
        let obj = inst.objective(0.9).unwrap();
        assert!((obj.alpha() - 0.9).abs() < 1e-12);
        assert!((obj.beta() - 0.1).abs() < 1e-12);
        assert!(inst.objective(1.5).is_err());
    }

    #[test]
    fn cache_makes_rebuilds_identical() {
        let cfg = DatasetConfig::tiny().with_points_per_class(15).with_seed(77);
        let a = build_instance(&cfg).unwrap();
        let b = build_instance(&cfg).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.utilities, b.utilities);
    }
}
