use crate::{DataError, SelectionInstance};
use submod_core::{GraphBuilder, NodeId, SimilarityGraph};
use submod_knn::Embeddings;

/// A *virtual* perturbed dataset: every base point expands into `factor`
/// noisy copies whose embeddings, utilities, and neighbor lists are
/// computed on demand from a deterministic per-index RNG.
///
/// This reproduces the paper's Perturbed-ImageNet construction (§6:
/// *"We obtain Perturbed-ImageNet by perturbing each point of ImageNet in
/// embedding space into 10 k vectors, leading to 13 B embedding vectors"*)
/// without materializing the blowup: a `PerturbedDataset` over 1.2 M base
/// points with `factor = 10_000` *is* a 12 B-point dataset, accessed one
/// point at a time.
///
/// The virtual neighbor structure substitutes for a global ANN search
/// (which would itself need a cluster): each copy links to (a) a ring of
/// `sibling_degree` copies of the same base point with lazily-computed
/// cosine weights, and (b) the same-variant copies of the base point's
/// graph neighbors with the base edge weight. Both rules are symmetric by
/// construction, preserving the bounded-degree symmetric-graph contract
/// the algorithms require (§5). DESIGN.md records this substitution.
#[derive(Clone, Debug)]
pub struct PerturbedDataset {
    base_embeddings: Embeddings,
    base_graph: SimilarityGraph,
    base_utilities: Vec<f32>,
    factor: u64,
    sigma: f32,
    utility_sigma: f32,
    sibling_degree: u64,
    seed: u64,
}

impl PerturbedDataset {
    /// Wraps a base instance, expanding each point into `factor` virtual
    /// copies with embedding noise `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error if `factor == 0` or the base instance is empty.
    pub fn new(
        base: &SelectionInstance,
        factor: u64,
        sigma: f32,
        seed: u64,
    ) -> Result<Self, DataError> {
        if factor == 0 {
            return Err(DataError::config("perturbation factor must be at least 1"));
        }
        if base.is_empty() {
            return Err(DataError::config("base instance must be non-empty"));
        }
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(DataError::config("sigma must be a finite non-negative number"));
        }
        Ok(PerturbedDataset {
            base_embeddings: base.embeddings.clone(),
            base_graph: base.graph.clone(),
            base_utilities: base.utilities.clone(),
            factor,
            sigma,
            utility_sigma: 0.01,
            sibling_degree: 4.min(factor.saturating_sub(1)),
            seed,
        })
    }

    /// Total number of virtual points (`base × factor`).
    pub fn total_points(&self) -> u64 {
        self.base_embeddings.len() as u64 * self.factor
    }

    /// Number of base points.
    pub fn base_len(&self) -> usize {
        self.base_embeddings.len()
    }

    /// The expansion factor.
    pub fn factor(&self) -> u64 {
        self.factor
    }

    /// Base point index of virtual point `i`.
    #[inline]
    pub fn base_of(&self, i: u64) -> u64 {
        i / self.factor
    }

    /// Variant index (`0..factor`) of virtual point `i`.
    #[inline]
    pub fn variant_of(&self, i: u64) -> u64 {
        i % self.factor
    }

    /// The embedding of virtual point `i`, generated deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `i >= total_points()`.
    pub fn embedding(&self, i: u64) -> Vec<f32> {
        assert!(i < self.total_points(), "virtual index {i} out of range");
        let base = self.base_embeddings.row(self.base_of(i) as usize);
        let mut rng = DetRng::for_index(self.seed, i);
        base.iter().map(|&x| x + self.sigma * rng.normal()).collect()
    }

    /// The utility of virtual point `i`: the base utility plus small
    /// deterministic noise, clamped non-negative (utilities stay centered).
    pub fn utility(&self, i: u64) -> f32 {
        assert!(i < self.total_points(), "virtual index {i} out of range");
        let base = self.base_utilities[self.base_of(i) as usize];
        let mut rng = DetRng::for_index(self.seed ^ 0x5EED_CAFE, i);
        (base + self.utility_sigma * rng.normal()).max(0.0)
    }

    /// The virtual neighbor list of point `i`: `(neighbor id, similarity)`.
    ///
    /// Symmetric by construction: sibling-ring edges use offsets `±d`
    /// within the family, cross-family edges mirror the (symmetric) base
    /// graph.
    pub fn neighbors(&self, i: u64) -> Vec<(u64, f32)> {
        assert!(i < self.total_points(), "virtual index {i} out of range");
        let b = self.base_of(i);
        let j = self.variant_of(i);
        let mut out = Vec::new();

        // Sibling ring within the family.
        let half = self.sibling_degree / 2;
        let emb_i = self.embedding(i);
        for d in 1..=half.max(if self.sibling_degree > 0 { 1 } else { 0 }) {
            if d > half && self.sibling_degree.is_multiple_of(2) {
                break;
            }
            for dir in [1i64, -1i64] {
                let sibling_variant =
                    (j as i64 + dir * d as i64).rem_euclid(self.factor as i64) as u64;
                if sibling_variant == j {
                    continue;
                }
                let sibling = b * self.factor + sibling_variant;
                let emb_s = self.embedding(sibling);
                let sim = submod_knn::cosine_similarity(&emb_i, &emb_s).max(0.0);
                if sim > 0.0 {
                    out.push((sibling, sim));
                }
            }
        }

        // Cross-family edges: same variant of each base neighbor.
        for (nb, w) in self.base_graph.edges(NodeId::new(b)) {
            out.push((nb.raw() * self.factor + j, w));
        }
        out.sort_by_key(|&(id, _)| id);
        out.dedup_by_key(|e| e.0);
        out
    }

    /// Materializes the first `factor_limit` variants of every base point
    /// into a concrete [`SelectionInstance`]-style graph + utilities, for
    /// running the in-memory algorithms at a scaled-down size.
    ///
    /// # Errors
    ///
    /// Returns an error if `factor_limit` is 0 or exceeds the factor.
    pub fn materialize(&self, factor_limit: u64) -> Result<(SimilarityGraph, Vec<f32>), DataError> {
        if factor_limit == 0 || factor_limit > self.factor {
            return Err(DataError::config(format!(
                "factor_limit must be in 1..={}, got {factor_limit}",
                self.factor
            )));
        }
        let scaled = PerturbedDataset {
            base_embeddings: self.base_embeddings.clone(),
            base_graph: self.base_graph.clone(),
            base_utilities: self.base_utilities.clone(),
            factor: factor_limit,
            sigma: self.sigma,
            utility_sigma: self.utility_sigma,
            sibling_degree: self.sibling_degree.min(factor_limit.saturating_sub(1)),
            seed: self.seed,
        };
        let n = scaled.total_points();
        let mut builder = GraphBuilder::new(n as usize);
        let mut utilities = Vec::with_capacity(n as usize);
        for i in 0..n {
            utilities.push(scaled.utility(i));
            for (nb, w) in scaled.neighbors(i) {
                if w > 0.0 {
                    builder.add_directed(i, nb, w)?;
                }
            }
        }
        Ok((builder.build().symmetrized(), utilities))
    }
}

/// A tiny deterministic per-index RNG (splitmix64-seeded xorshift with
/// Box–Muller normals) — every virtual point regenerates identically on
/// every machine and every pass, which is what makes the dataset virtual.
struct DetRng {
    state: u64,
}

impl DetRng {
    fn for_index(seed: u64, index: u64) -> Self {
        // splitmix64 of (seed ⊕ index) gives well-mixed nonzero state.
        let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DetRng { state: z | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn uniform(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    fn normal(&mut self) -> f32 {
        let u1 = self.uniform().max(f32::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_instance, DatasetConfig};

    fn base() -> SelectionInstance {
        build_instance(&DatasetConfig::tiny().with_points_per_class(10).with_seed(3)).unwrap()
    }

    fn perturbed(factor: u64) -> PerturbedDataset {
        PerturbedDataset::new(&base(), factor, 0.02, 99).unwrap()
    }

    #[test]
    fn virtual_size_is_base_times_factor() {
        let p = perturbed(100);
        assert_eq!(p.total_points(), 200 * 100);
        assert_eq!(p.base_len(), 200);
        assert_eq!(p.factor(), 100);
        assert_eq!(p.base_of(250), 2);
        assert_eq!(p.variant_of(250), 50);
    }

    #[test]
    fn embeddings_are_deterministic_and_near_base() {
        let p = perturbed(50);
        let a = p.embedding(777);
        let b = p.embedding(777);
        assert_eq!(a, b);
        let base_row = p.base_embeddings.row(p.base_of(777) as usize);
        let d = submod_knn::l2_distance_squared(&a, base_row).sqrt();
        assert!(d < 0.02 * 10.0 * (a.len() as f32).sqrt(), "perturbation too large: {d}");
    }

    #[test]
    fn utilities_are_deterministic_and_nonnegative() {
        let p = perturbed(50);
        assert_eq!(p.utility(123), p.utility(123));
        for i in (0..p.total_points()).step_by(997) {
            assert!(p.utility(i) >= 0.0);
        }
    }

    #[test]
    fn virtual_neighbors_are_symmetric() {
        let p = perturbed(20);
        for i in (0..p.total_points()).step_by(271) {
            for (nb, w) in p.neighbors(i) {
                let back = p.neighbors(nb);
                let found = back.iter().find(|&&(id, _)| id == i);
                assert!(found.is_some(), "edge {i} -> {nb} missing reverse");
                let (_, bw) = *found.unwrap();
                assert!((bw - w).abs() < 1e-6, "asymmetric weight {w} vs {bw}");
            }
        }
    }

    #[test]
    fn neighbors_respect_family_structure() {
        let p = perturbed(20);
        let i = 5 * 20 + 7; // base 5, variant 7
        let nbs = p.neighbors(i);
        assert!(!nbs.is_empty());
        // Each neighbor is either a sibling (same base) or the same variant
        // of a base-graph neighbor.
        for (nb, _) in nbs {
            let same_family = p.base_of(nb) == 5;
            let same_variant = p.variant_of(nb) == 7;
            assert!(same_family || same_variant, "neighbor {nb} violates structure");
        }
    }

    #[test]
    fn materialize_builds_consistent_graph() {
        let p = perturbed(50);
        let (graph, utilities) = p.materialize(3).unwrap();
        assert_eq!(graph.num_nodes(), 200 * 3);
        assert_eq!(utilities.len(), 200 * 3);
        assert!(graph.is_symmetric());
        assert!(graph.min_degree() >= 2);
    }

    #[test]
    fn factor_one_has_no_siblings() {
        let p = perturbed(1);
        let nbs = p.neighbors(0);
        for (nb, _) in nbs {
            assert_ne!(p.base_of(nb), 0, "factor-1 dataset cannot have siblings");
        }
    }

    #[test]
    fn validation_errors() {
        let b = base();
        assert!(PerturbedDataset::new(&b, 0, 0.1, 0).is_err());
        assert!(PerturbedDataset::new(&b, 2, f32::NAN, 0).is_err());
        let p = perturbed(10);
        assert!(p.materialize(0).is_err());
        assert!(p.materialize(11).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let p = perturbed(2);
        p.embedding(p.total_points());
    }
}
