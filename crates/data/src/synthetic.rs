use crate::DataError;
use rand::{Rng, SeedableRng};
use submod_knn::Embeddings;

/// A labeled Gaussian-mixture embedding dataset.
///
/// Class centers are drawn uniformly on a hypersphere shell and points are
/// scattered around their center with isotropic Gaussian noise — the
/// standard synthetic stand-in for penultimate-layer features of an image
/// classifier (tight per-class clusters with inter-class separation).
#[derive(Clone, Debug)]
pub struct ClusteredDataset {
    embeddings: Embeddings,
    labels: Vec<u32>,
    class_centers: Embeddings,
}

impl ClusteredDataset {
    /// Generates a dataset with `num_classes` classes of
    /// `points_per_class` points each in `dim` dimensions.
    ///
    /// `cluster_std` controls intra-class spread relative to the unit
    /// inter-class scale. Deterministic for a fixed `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if any size parameter is zero.
    ///
    /// ```
    /// use submod_data::ClusteredDataset;
    ///
    /// # fn main() -> Result<(), submod_data::DataError> {
    /// let data = ClusteredDataset::generate(10, 50, 16, 0.15, 42)?;
    /// assert_eq!(data.len(), 500);
    /// assert_eq!(data.embeddings().dim(), 16);
    /// assert_eq!(data.labels().iter().filter(|&&l| l == 3).count(), 50);
    /// # Ok(())
    /// # }
    /// ```
    pub fn generate(
        num_classes: usize,
        points_per_class: usize,
        dim: usize,
        cluster_std: f32,
        seed: u64,
    ) -> Result<Self, DataError> {
        if num_classes == 0 || points_per_class == 0 || dim == 0 {
            return Err(DataError::config(
                "num_classes, points_per_class, and dim must all be positive",
            ));
        }
        if !(cluster_std.is_finite() && cluster_std >= 0.0) {
            return Err(DataError::config("cluster_std must be a finite non-negative number"));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let normal = StandardNormalish::new();

        // Class centers: Gaussian directions normalized onto a radius-1 shell
        // (keeps inter-class distances comparable across dimensions).
        let mut centers = Vec::with_capacity(num_classes * dim);
        for _ in 0..num_classes {
            let raw: Vec<f32> = (0..dim).map(|_| normal.sample(&mut rng)).collect();
            let norm = raw.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            centers.extend(raw.iter().map(|x| x / norm));
        }

        let mut flat = Vec::with_capacity(num_classes * points_per_class * dim);
        let mut labels = Vec::with_capacity(num_classes * points_per_class);
        for c in 0..num_classes {
            let center = &centers[c * dim..(c + 1) * dim];
            for _ in 0..points_per_class {
                for &cx in center {
                    flat.push(cx + cluster_std * normal.sample(&mut rng));
                }
                labels.push(c as u32);
            }
        }
        Ok(ClusteredDataset {
            embeddings: Embeddings::from_flat(dim, flat)?,
            labels,
            class_centers: Embeddings::from_flat(dim, centers)?,
        })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The embedding matrix.
    pub fn embeddings(&self) -> &Embeddings {
        &self.embeddings
    }

    /// Per-point class labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_centers.len()
    }

    /// The true class centers (useful for diagnostics; the coarse
    /// classifier deliberately does *not* see these).
    pub fn class_centers(&self) -> &Embeddings {
        &self.class_centers
    }
}

/// A tiny internal standard-normal sampler (Box–Muller) so the crate does
/// not need `rand_distr`.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct StandardNormalish;

impl StandardNormalish {
    pub(crate) fn new() -> Self {
        StandardNormalish
    }

    /// One standard-normal sample via Box–Muller.
    pub(crate) fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
        let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let data = ClusteredDataset::generate(7, 13, 8, 0.1, 1).unwrap();
        assert_eq!(data.len(), 91);
        assert_eq!(data.embeddings().len(), 91);
        assert_eq!(data.num_classes(), 7);
        assert!(!data.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ClusteredDataset::generate(3, 10, 4, 0.2, 9).unwrap();
        let b = ClusteredDataset::generate(3, 10, 4, 0.2, 9).unwrap();
        assert_eq!(a.embeddings(), b.embeddings());
        let c = ClusteredDataset::generate(3, 10, 4, 0.2, 10).unwrap();
        assert_ne!(a.embeddings(), c.embeddings());
    }

    #[test]
    fn clusters_are_tighter_than_class_separation() {
        let data = ClusteredDataset::generate(5, 40, 16, 0.1, 3).unwrap();
        // Average distance to own center vs to other centers.
        let mut own = 0.0f64;
        let mut other = 0.0f64;
        let mut other_count = 0u64;
        for i in 0..data.len() {
            let label = data.labels()[i] as usize;
            for c in 0..data.num_classes() {
                let d = submod_knn::l2_distance_squared(
                    data.embeddings().row(i),
                    data.class_centers().row(c),
                ) as f64;
                if c == label {
                    own += d;
                } else {
                    other += d;
                    other_count += 1;
                }
            }
        }
        let own_avg = own / data.len() as f64;
        let other_avg = other / other_count as f64;
        assert!(own_avg * 4.0 < other_avg, "clusters not separated: {own_avg} vs {other_avg}");
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(ClusteredDataset::generate(0, 10, 4, 0.1, 0).is_err());
        assert!(ClusteredDataset::generate(3, 0, 4, 0.1, 0).is_err());
        assert!(ClusteredDataset::generate(3, 10, 0, 0.1, 0).is_err());
        assert!(ClusteredDataset::generate(3, 10, 4, f32::NAN, 0).is_err());
        assert!(ClusteredDataset::generate(3, 10, 4, -1.0, 0).is_err());
    }

    #[test]
    fn normal_sampler_is_roughly_standard() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let normal = StandardNormalish::new();
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
