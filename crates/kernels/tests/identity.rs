//! The determinism contract, property-tested: whatever backend the
//! process dispatched to (AVX2 here on x86_64 CI, NEON on aarch64,
//! scalar under `SUBMOD_KERNELS=scalar`), every kernel must return
//! **bitwise-identical** `f32`s to the scalar reference — across lengths
//! 0–257, misaligned slice starts, and denormal/extreme magnitudes.

use proptest::prelude::*;
use submod_kernels::{batch_top_k, dot, dot4, l2_4, l2_distance_squared, scalar, TopK};

/// Values spanning the nasty corners: denormals, huge magnitudes that
/// overflow products to ±inf, zeros, and ordinary mid-range floats.
fn arb_element() -> impl Strategy<Value = f32> {
    (0u8..13, -100.0f32..100.0).prop_map(|(corner, ordinary)| match corner {
        0 => 0.0,
        1 => -0.0,
        2 => f32::MIN_POSITIVE,           // smallest normal
        3 => f32::MIN_POSITIVE / 64.0,    // denormal
        4 => -f32::MIN_POSITIVE / 1024.0, // tiny negative denormal
        5 => 3.0e38,                      // near f32::MAX
        6 => -2.9e38,
        7 => 1.0e-38,
        _ => ordinary,
    })
}

/// A pair of equal-length vectors (length 0–257) plus a misalignment
/// offset 0–7: the kernels see `&buf[offset..offset + len]`, so the
/// SIMD loads start at every possible 4-byte (mis)alignment.
fn arb_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, usize)> {
    (0usize..=257, 0usize..8).prop_flat_map(|(len, offset)| {
        (
            proptest::collection::vec(arb_element(), len + offset),
            proptest::collection::vec(arb_element(), len + offset),
            Just(offset),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Dispatched `dot` == scalar reference, bit for bit.
    #[test]
    fn dot_is_bitwise_identical_to_scalar((a, b, offset) in arb_pair()) {
        let (a, b) = (&a[offset..], &b[offset..]);
        prop_assert_eq!(dot(a, b).to_bits(), scalar::dot(a, b).to_bits());
    }

    /// Dispatched `l2_distance_squared` == scalar reference, bit for bit.
    #[test]
    fn l2_is_bitwise_identical_to_scalar((a, b, offset) in arb_pair()) {
        let (a, b) = (&a[offset..], &b[offset..]);
        prop_assert_eq!(
            l2_distance_squared(a, b).to_bits(),
            scalar::l2(a, b).to_bits()
        );
    }

    /// The 4-row micro-kernels equal four single-row calls, bit for bit.
    #[test]
    fn blocked_kernels_are_bitwise_identical(
        (q, rows_flat, offset) in (0usize..=129, 0usize..8).prop_flat_map(|(len, offset)| {
            (
                proptest::collection::vec(arb_element(), len + offset),
                proptest::collection::vec(arb_element(), len * 4),
                Just(offset),
            )
        })
    ) {
        let q = &q[offset..];
        let len = q.len();
        let quad = [
            &rows_flat[..len],
            &rows_flat[len..2 * len],
            &rows_flat[2 * len..3 * len],
            &rows_flat[3 * len..4 * len],
        ];
        let d = dot4(q, quad);
        let l = l2_4(q, quad);
        for j in 0..4 {
            prop_assert_eq!(d[j].to_bits(), scalar::dot(q, quad[j]).to_bits());
            prop_assert_eq!(l[j].to_bits(), scalar::l2(q, quad[j]).to_bits());
        }
    }

    /// `batch_top_k` over any matrix equals a per-query scalar scan:
    /// same ids, same similarities, same bits, regardless of how the
    /// query count and row count land on the block/tile boundaries.
    #[test]
    fn batch_top_k_is_bitwise_identical_to_scalar_scans(
        dim in 1usize..33,
        nq in 1usize..20,
        n in 1usize..40,
        k in 0usize..8,
        seed in 0u64..1024,
    ) {
        // Deterministic pseudo-random matrices (keeps the strategy small).
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        };
        let queries: Vec<f32> = (0..nq * dim).map(|_| next()).collect();
        let rows: Vec<f32> = (0..n * dim).map(|_| next()).collect();
        let norms: Vec<f32> = rows.chunks_exact(dim).map(|r| scalar::dot(r, r).sqrt()).collect();
        let excludes: Vec<u32> = (0..nq as u32).collect();

        let batch = batch_top_k(&queries, &rows, &norms, dim, k, &excludes);
        for qi in 0..nq {
            let q = &queries[qi * dim..(qi + 1) * dim];
            let qn = scalar::dot(q, q).sqrt();
            let mut heap = TopK::new(k);
            for r in 0..n {
                if r as u32 == excludes[qi] {
                    continue;
                }
                let denom = norms[r] * qn;
                let sim = if denom <= f32::MIN_POSITIVE {
                    0.0
                } else {
                    scalar::dot(q, &rows[r * dim..(r + 1) * dim]) / denom
                };
                heap.offer(r as u32, sim);
            }
            let expect = heap.into_sorted();
            prop_assert_eq!(batch[qi].len(), expect.len());
            for (got, want) in batch[qi].iter().zip(&expect) {
                prop_assert_eq!(got.0, want.0, "query {} ids diverge", qi);
                prop_assert_eq!(got.1.to_bits(), want.1.to_bits(), "query {} sims diverge", qi);
            }
        }
    }
}
