//! Portable reference kernels in the fixed 8-lane reduction order.
//!
//! These are both the fallback backend and the ground truth the SIMD
//! paths are tested against: every other backend must return bitwise
//! the same `f32` for the same inputs. Lane `l` accumulates elements
//! `l, l+8, l+16, …`; lane sums combine left to right; remainder
//! elements append sequentially. No FMA anywhere — multiply and add stay
//! separate IEEE operations so vector and scalar hardware round
//! identically.

/// Width of the fixed reduction: one 256-bit AVX2 register, two NEON
/// quads, or eight scalar accumulators.
pub(crate) const LANES: usize = 8;

/// Combines eight lane partial sums (left to right) and appends the
/// elementwise-product tail `a[done..] · b[done..]`.
#[inline]
pub(crate) fn reduce_dot_tail(lanes: [f32; LANES], a: &[f32], b: &[f32], done: usize) -> f32 {
    let mut sum = lanes[0];
    for &l in &lanes[1..] {
        sum += l;
    }
    for i in done..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Combines eight lane partial sums (left to right) and appends the
/// squared-difference tail.
#[inline]
pub(crate) fn reduce_l2_tail(lanes: [f32; LANES], a: &[f32], b: &[f32], done: usize) -> f32 {
    let mut sum = lanes[0];
    for &l in &lanes[1..] {
        sum += l;
    }
    for i in done..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Reference dot product.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / LANES;
    let mut lanes = [0.0f32; LANES];
    for i in 0..chunks {
        let off = i * LANES;
        for l in 0..LANES {
            lanes[l] += a[off + l] * b[off + l];
        }
    }
    reduce_dot_tail(lanes, a, b, chunks * LANES)
}

/// Reference squared L2 distance.
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    let chunks = a.len() / LANES;
    let mut lanes = [0.0f32; LANES];
    for i in 0..chunks {
        let off = i * LANES;
        for l in 0..LANES {
            let d = a[off + l] - b[off + l];
            lanes[l] += d * d;
        }
    }
    reduce_l2_tail(lanes, a, b, chunks * LANES)
}

/// Reference 4-row blocked dot product: four independent accumulator
/// sets over one pass of `query`, each row reduced exactly like [`dot`].
#[inline]
pub fn dot4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    let chunks = query.len() / LANES;
    let mut lanes = [[0.0f32; LANES]; 4];
    for i in 0..chunks {
        let off = i * LANES;
        for (r, row) in rows.iter().enumerate() {
            for l in 0..LANES {
                lanes[r][l] += query[off + l] * row[off + l];
            }
        }
    }
    let done = chunks * LANES;
    [
        reduce_dot_tail(lanes[0], query, rows[0], done),
        reduce_dot_tail(lanes[1], query, rows[1], done),
        reduce_dot_tail(lanes[2], query, rows[2], done),
        reduce_dot_tail(lanes[3], query, rows[3], done),
    ]
}

/// Reference 4-row blocked squared L2 distance.
#[inline]
pub fn l2_4(query: &[f32], rows: [&[f32]; 4]) -> [f32; 4] {
    let chunks = query.len() / LANES;
    let mut lanes = [[0.0f32; LANES]; 4];
    for i in 0..chunks {
        let off = i * LANES;
        for (r, row) in rows.iter().enumerate() {
            for l in 0..LANES {
                let d = query[off + l] - row[off + l];
                lanes[r][l] += d * d;
            }
        }
    }
    let done = chunks * LANES;
    [
        reduce_l2_tail(lanes[0], query, rows[0], done),
        reduce_l2_tail(lanes[1], query, rows[1], done),
        reduce_l2_tail(lanes[2], query, rows[2], done),
        reduce_l2_tail(lanes[3], query, rows[3], done),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_l2_basic_values() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let b = [9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&a, &b), 165.0);
        // Σ (a-b)² = 64+36+16+4+0+4+16+36+64 = 240
        assert_eq!(l2(&a, &b), 240.0);
    }

    #[test]
    fn blocked_matches_single() {
        let q: Vec<f32> = (0..23).map(|i| i as f32 * 0.5 - 3.0).collect();
        let rows: Vec<Vec<f32>> =
            (0..4).map(|r| (0..23).map(|i| (i * (r + 1)) as f32 * 0.25 - 1.0).collect()).collect();
        let quad = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
        let d = dot4(&q, quad);
        let l = l2_4(&q, quad);
        for j in 0..4 {
            assert_eq!(d[j].to_bits(), dot(&q, &rows[j]).to_bits());
            assert_eq!(l[j].to_bits(), l2(&q, &rows[j]).to_bits());
        }
    }
}
