//! Register-blocked batch drivers over the per-backend micro-kernels.
//!
//! The tiling scheme: queries advance in blocks of [`Q_BLOCK`], rows in
//! tiles of 4. For each row tile the inner loop walks every query of the
//! block, so one tile's worth of row data is loaded from memory once and
//! reused `Q_BLOCK` times from cache — the row matrix streams once per
//! query *block* instead of once per query. Within a query, rows are
//! visited in strictly ascending index order (full tiles first, then the
//! sub-tile remainder, which also runs ascending), which together with
//! the shared [`TopK`] makes every batch result bitwise-identical to the
//! corresponding one-query scan.

use crate::topk::TopK;
use crate::{backend, scalar, Backend, Scored};

/// Queries per block: large enough to amortize streaming the row matrix,
/// small enough that a block of 2048-d queries still fits in L2.
const Q_BLOCK: usize = 16;

type DotFn = fn(&[f32], &[f32]) -> f32;
type QuadFn = fn(&[f32], [&[f32]; 4]) -> [f32; 4];

fn dot_fn() -> DotFn {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => crate::x86::dot,
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => crate::neon::dot,
        _ => scalar::dot,
    }
}

fn dot4_fn() -> QuadFn {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => crate::x86::dot4,
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => crate::neon::dot4,
        _ => scalar::dot4,
    }
}

fn l2_fn() -> DotFn {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => crate::x86::l2,
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => crate::neon::l2,
        _ => scalar::l2,
    }
}

fn l2_4_fn() -> QuadFn {
    match backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => crate::x86::l2_4,
        #[cfg(target_arch = "aarch64")]
        Backend::Neon => crate::neon::l2_4,
        _ => scalar::l2_4,
    }
}

/// Cosine similarity from a precomputed dot product and norm product;
/// zero-norm pairs score 0 (the convention every search path shares).
#[inline]
fn cosine(dot: f32, denom: f32) -> f32 {
    if denom <= f32::MIN_POSITIVE {
        0.0
    } else {
        dot / denom
    }
}

/// Top-`k` rows by cosine similarity for a whole block of queries.
///
/// `queries` is `nq × dim` row-major, `rows` is `n × dim` row-major with
/// `row_norms[i] == norm(rows[i])` precomputed. `excludes` is either
/// empty (no exclusions) or one row id per query to skip (`u32::MAX` for
/// none). Each returned list is sorted by descending similarity with
/// ties toward the smaller index and is bitwise-identical to the
/// one-query scan over the same data.
///
/// # Panics
///
/// Panics if `dim == 0`, either matrix length is not a multiple of
/// `dim`, `row_norms` disagrees with the row count, or `excludes` is
/// non-empty with the wrong length.
pub fn batch_top_k(
    queries: &[f32],
    rows: &[f32],
    row_norms: &[f32],
    dim: usize,
    k: usize,
    excludes: &[u32],
) -> Vec<Vec<Scored>> {
    assert!(dim > 0, "batch_top_k with dim == 0");
    assert_eq!(queries.len() % dim, 0, "queries not a multiple of dim");
    assert_eq!(rows.len() % dim, 0, "rows not a multiple of dim");
    let nq = queries.len() / dim;
    let n = rows.len() / dim;
    assert_eq!(row_norms.len(), n, "row_norms length mismatch");
    assert!(excludes.is_empty() || excludes.len() == nq, "excludes length mismatch");
    if k == 0 || nq == 0 {
        return vec![Vec::new(); nq];
    }
    // Dispatch tally at batch granularity: one registry touch per call,
    // never per row or per query.
    submod_obs::counter!("kernels.batch_top_k.calls").incr();
    submod_obs::counter!("kernels.batch_top_k.row_scans").add((nq * n) as u64);
    let dot1 = dot_fn();
    let dot4 = dot4_fn();
    let full = n / 4 * 4;
    let mut out: Vec<Vec<Scored>> = Vec::with_capacity(nq);
    for qb in (0..nq).step_by(Q_BLOCK) {
        let qe = (qb + Q_BLOCK).min(nq);
        let mut heaps: Vec<TopK> = (qb..qe).map(|_| TopK::new(k)).collect();
        let qns: Vec<f32> = (qb..qe)
            .map(|qi| {
                let q = &queries[qi * dim..(qi + 1) * dim];
                dot1(q, q).sqrt()
            })
            .collect();
        for r in (0..full).step_by(4) {
            let quad = [
                &rows[r * dim..(r + 1) * dim],
                &rows[(r + 1) * dim..(r + 2) * dim],
                &rows[(r + 2) * dim..(r + 3) * dim],
                &rows[(r + 3) * dim..(r + 4) * dim],
            ];
            for (qo, qi) in (qb..qe).enumerate() {
                let q = &queries[qi * dim..(qi + 1) * dim];
                let d = dot4(q, quad);
                let exclude = excludes.get(qi).copied().unwrap_or(u32::MAX);
                for j in 0..4 {
                    let id = (r + j) as u32;
                    if id != exclude {
                        heaps[qo].offer(id, cosine(d[j], row_norms[r + j] * qns[qo]));
                    }
                }
            }
        }
        for r in full..n {
            let row = &rows[r * dim..(r + 1) * dim];
            for (qo, qi) in (qb..qe).enumerate() {
                let exclude = excludes.get(qi).copied().unwrap_or(u32::MAX);
                if r as u32 == exclude {
                    continue;
                }
                let q = &queries[qi * dim..(qi + 1) * dim];
                heaps[qo].offer(r as u32, cosine(dot1(q, row), row_norms[r] * qns[qo]));
            }
        }
        out.extend(heaps.into_iter().map(TopK::into_sorted));
    }
    out
}

/// Top-`k` of an explicit candidate list by cosine similarity to `query`
/// — the gather variant the IVF and LSH probes rank with. Candidates are
/// scored in list order (excluded ids skipped), four rows per
/// micro-kernel pass, with results bitwise-identical to scoring each
/// candidate individually.
///
/// # Panics
///
/// Panics if `query.len() != dim`, any id is out of range for `data`, or
/// `norms` disagrees with the row count of `data`.
pub fn cosine_top_k_gather(
    data: &[f32],
    norms: &[f32],
    dim: usize,
    ids: &[u32],
    query: &[f32],
    k: usize,
    exclude: u32,
) -> Vec<Scored> {
    assert!(dim > 0, "cosine_top_k_gather with dim == 0");
    assert_eq!(query.len(), dim, "query dimension mismatch");
    assert_eq!(norms.len(), data.len() / dim, "norms length mismatch");
    if k == 0 {
        return Vec::new();
    }
    submod_obs::counter!("kernels.gather_top_k.calls").incr();
    submod_obs::counter!("kernels.gather_top_k.candidates").add(ids.len() as u64);
    let dot1 = dot_fn();
    let dot4 = dot4_fn();
    let qn = dot1(query, query).sqrt();
    let mut heap = TopK::new(k);
    let mut pending = [0u32; 4];
    let mut fill = 0usize;
    for &id in ids {
        if id == exclude {
            continue;
        }
        pending[fill] = id;
        fill += 1;
        if fill == 4 {
            let quad = [
                &data[pending[0] as usize * dim..(pending[0] as usize + 1) * dim],
                &data[pending[1] as usize * dim..(pending[1] as usize + 1) * dim],
                &data[pending[2] as usize * dim..(pending[2] as usize + 1) * dim],
                &data[pending[3] as usize * dim..(pending[3] as usize + 1) * dim],
            ];
            let d = dot4(query, quad);
            for j in 0..4 {
                heap.offer(pending[j], cosine(d[j], norms[pending[j] as usize] * qn));
            }
            fill = 0;
        }
    }
    for &id in &pending[..fill] {
        let i = id as usize;
        let row = &data[i * dim..(i + 1) * dim];
        heap.offer(id, cosine(dot1(query, row), norms[i] * qn));
    }
    heap.into_sorted()
}

/// Index and squared distance of the row nearest to `query` (first
/// minimum wins ties) — the blocked centroid scan of the k-means
/// assignment step.
///
/// # Panics
///
/// Panics if `rows` is empty or not a multiple of `query.len()`, or if
/// `query` is empty.
pub fn l2_argmin(query: &[f32], rows: &[f32]) -> (u32, f32) {
    let dim = query.len();
    assert!(dim > 0, "l2_argmin with dim == 0");
    assert!(!rows.is_empty(), "l2_argmin over no rows");
    assert_eq!(rows.len() % dim, 0, "rows not a multiple of dim");
    let l21 = l2_fn();
    let l24 = l2_4_fn();
    let n = rows.len() / dim;
    let full = n / 4 * 4;
    let mut best = (0u32, f32::INFINITY);
    for r in (0..full).step_by(4) {
        let d = l24(
            query,
            [
                &rows[r * dim..(r + 1) * dim],
                &rows[(r + 1) * dim..(r + 2) * dim],
                &rows[(r + 2) * dim..(r + 3) * dim],
                &rows[(r + 3) * dim..(r + 4) * dim],
            ],
        );
        for j in 0..4 {
            if d[j] < best.1 {
                best = ((r + j) as u32, d[j]);
            }
        }
    }
    for r in full..n {
        let d = l21(query, &rows[r * dim..(r + 1) * dim]);
        if d < best.1 {
            best = (r as u32, d);
        }
    }
    best
}

/// Dot product of `query` against every row, four rows per micro-kernel
/// pass — the hoisted-norm scoring primitive `nearest_centroids` ranks
/// with. Each element is bitwise-identical to the single-row [`crate::dot`].
///
/// # Panics
///
/// Panics if `query` is empty or `rows` is not a multiple of its length.
pub fn dot_scores(query: &[f32], rows: &[f32]) -> Vec<f32> {
    let dim = query.len();
    assert!(dim > 0, "dot_scores with dim == 0");
    assert_eq!(rows.len() % dim, 0, "rows not a multiple of dim");
    let dot1 = dot_fn();
    let dot4 = dot4_fn();
    let n = rows.len() / dim;
    let full = n / 4 * 4;
    let mut out = Vec::with_capacity(n);
    for r in (0..full).step_by(4) {
        let d = dot4(
            query,
            [
                &rows[r * dim..(r + 1) * dim],
                &rows[(r + 1) * dim..(r + 2) * dim],
                &rows[(r + 2) * dim..(r + 3) * dim],
                &rows[(r + 3) * dim..(r + 4) * dim],
            ],
        );
        out.extend_from_slice(&d);
    }
    for r in full..n {
        out.push(dot1(query, &rows[r * dim..(r + 1) * dim]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(n: usize, dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut s = seed;
        let rows: Vec<f32> = (0..n * dim)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect();
        let norms: Vec<f32> = rows.chunks_exact(dim).map(|r| scalar::dot(r, r).sqrt()).collect();
        (rows, norms)
    }

    /// One-query reference scan in the exact order `batch_top_k` promises.
    fn reference_top_k(
        queries: &[f32],
        rows: &[f32],
        norms: &[f32],
        dim: usize,
        k: usize,
        exclude: u32,
        qi: usize,
    ) -> Vec<Scored> {
        let q = &queries[qi * dim..(qi + 1) * dim];
        let qn = scalar::dot(q, q).sqrt();
        let mut heap = TopK::new(k);
        for r in 0..rows.len() / dim {
            if r as u32 == exclude {
                continue;
            }
            let d = scalar::dot(q, &rows[r * dim..(r + 1) * dim]);
            heap.offer(r as u32, cosine(d, norms[r] * qn));
        }
        heap.into_sorted()
    }

    #[test]
    fn batch_matches_one_query_scans() {
        // 37 queries × 53 rows exercises partial query blocks and row tiles.
        let dim = 19;
        let (rows, norms) = matrix(53, dim, 5);
        let (queries, _) = matrix(37, dim, 11);
        let excludes: Vec<u32> = (0..37).map(|q| (q % 60) as u32).collect();
        let batch = batch_top_k(&queries, &rows, &norms, dim, 7, &excludes);
        for qi in 0..37 {
            let expect = reference_top_k(&queries, &rows, &norms, dim, 7, excludes[qi], qi);
            assert_eq!(batch[qi], expect, "query {qi}");
        }
    }

    #[test]
    fn batch_without_excludes_and_k_zero() {
        let dim = 8;
        let (rows, norms) = matrix(10, dim, 3);
        let (queries, _) = matrix(3, dim, 4);
        let res = batch_top_k(&queries, &rows, &norms, dim, 0, &[]);
        assert!(res.iter().all(Vec::is_empty));
        let res = batch_top_k(&queries, &rows, &norms, dim, 4, &[]);
        for qi in 0..3 {
            let expect = reference_top_k(&queries, &rows, &norms, dim, 4, u32::MAX, qi);
            assert_eq!(res[qi], expect);
        }
    }

    #[test]
    fn gather_matches_filtered_scan() {
        let dim = 6;
        let (rows, norms) = matrix(30, dim, 9);
        let query: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.9).sin()).collect();
        let ids: Vec<u32> = [4u32, 1, 17, 29, 2, 8, 4, 22, 11].to_vec();
        let got = cosine_top_k_gather(&rows, &norms, dim, &ids, &query, 3, 17);
        // Reference: score filtered candidates in order.
        let qn = scalar::dot(&query, &query).sqrt();
        let mut heap = TopK::new(3);
        for &id in ids.iter().filter(|&&id| id != 17) {
            let i = id as usize;
            let d = scalar::dot(&query, &rows[i * dim..(i + 1) * dim]);
            heap.offer(id, cosine(d, norms[i] * qn));
        }
        assert_eq!(got, heap.into_sorted());
    }

    #[test]
    fn l2_argmin_first_minimum_wins() {
        let rows = [1.0f32, 1.0, 5.0, 5.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0];
        let (idx, d) = l2_argmin(&[1.0, 1.0], &rows);
        assert_eq!((idx, d), (0, 0.0));
        let (idx, _) = l2_argmin(&[0.1, 0.1], &rows);
        assert_eq!(idx, 3);
    }

    #[test]
    fn dot_scores_cover_remainders() {
        let dim = 5;
        let (rows, _) = matrix(9, dim, 2);
        let query: Vec<f32> = (0..dim).map(|i| i as f32 - 2.0).collect();
        let scores = dot_scores(&query, &rows);
        assert_eq!(scores.len(), 9);
        for (r, &s) in scores.iter().enumerate() {
            assert_eq!(s.to_bits(), scalar::dot(&query, &rows[r * dim..(r + 1) * dim]).to_bits());
        }
    }
}
